//! E3 — Table 1 API conformance: the full Connections surface
//! (`Pop`/`PopNB`/`Push`/`PushNB` semantics across every channel kind,
//! polymorphic ports, packetizer/depacketizer network channels).

use craftflow::connections::{channel, ChannelKind, DePacketizer, Flit, Packetizer, StallInjector};
use craftflow::sim::{ClockSpec, Picoseconds, Simulator};

fn kinds() -> [ChannelKind; 4] {
    [
        ChannelKind::Combinational,
        ChannelKind::Bypass,
        ChannelKind::Pipeline,
        ChannelKind::Buffer(3),
    ]
}

/// The same component code works unmodified against every channel
/// kind — the paper's decoupled-ports property.
#[test]
fn polymorphic_ports_preserve_fifo_order() {
    for kind in kinds() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("c", Picoseconds::new(909)));
        let (mut tx, mut rx, h) = channel::<u32>("ch", kind);
        sim.add_sequential(clk, h.sequential());
        let mut sent = 0;
        let mut got = Vec::new();
        for _ in 0..200 {
            if sent < 50 && tx.push_nb(sent).is_ok() {
                sent += 1;
            }
            if let Some(v) = rx.pop_nb() {
                got.push(v);
            }
            sim.run_cycles(clk, 1);
        }
        assert_eq!(got, (0..50).collect::<Vec<_>>(), "kind {kind}");
        assert_eq!(h.stats().transfers, 50, "kind {kind}");
    }
}

/// Non-blocking push honors backpressure and hands the message back.
#[test]
fn push_nb_returns_message_on_backpressure() {
    let (mut tx, _rx, h) = channel::<String>("ch", ChannelKind::Buffer(1));
    assert!(tx.push_nb("first".into()).is_ok());
    h.sequential().borrow_mut().commit();
    let back = tx.push_nb("second".into());
    assert_eq!(back, Err("second".to_string()));
    assert_eq!(h.stats().push_backpressure, 1);
}

/// Non-blocking pop reports empty without blocking; peek never
/// consumes.
#[test]
fn pop_nb_and_peek_semantics() {
    let (mut tx, mut rx, h) = channel::<u8>("ch", ChannelKind::Buffer(2));
    assert_eq!(rx.pop_nb(), None);
    assert!(!rx.can_pop());
    tx.push_nb(9).expect("room");
    h.sequential().borrow_mut().commit();
    assert_eq!(rx.peek(), Some(9));
    assert_eq!(rx.peek(), Some(9), "peek must not consume");
    assert_eq!(rx.pop_nb(), Some(9));
    assert_eq!(rx.pop_nb(), None, "one pop per message");
}

/// Channel-kind timing signatures: combinational/bypass deliver in the
/// push cycle, pipeline/buffer a cycle later.
#[test]
fn kind_timing_signatures() {
    for (kind, same_cycle) in [
        (ChannelKind::Combinational, true),
        (ChannelKind::Bypass, true),
        (ChannelKind::Pipeline, false),
        (ChannelKind::Buffer(2), false),
    ] {
        let (mut tx, mut rx, _h) = channel::<u8>("ch", kind);
        tx.push_nb(1).expect("empty channel");
        assert_eq!(
            rx.pop_nb().is_some(),
            same_cycle,
            "kind {kind} same-cycle visibility"
        );
    }
}

/// Stall injection withholds valid without losing or reordering data,
/// and the stall statistics record it.
#[test]
fn stall_injection_is_transparent_to_function() {
    let mut sim = Simulator::new();
    let clk = sim.add_clock(ClockSpec::new("c", Picoseconds::new(909)));
    let (mut tx, mut rx, h) = channel::<u32>("ch", ChannelKind::Buffer(2));
    sim.add_sequential(clk, h.sequential());
    h.inject_stalls(StallInjector::bernoulli(0.4, 1234));
    let mut sent = 0;
    let mut got = Vec::new();
    for _ in 0..600 {
        if sent < 100 && tx.push_nb(sent).is_ok() {
            sent += 1;
        }
        if let Some(v) = rx.pop_nb() {
            got.push(v);
        }
        sim.run_cycles(clk, 1);
    }
    assert_eq!(got, (0..100).collect::<Vec<_>>());
    let stats = h.stats();
    assert!(stats.stall_cycles > 50, "stalls must actually fire");
}

/// Packetizer/DePacketizer carry arbitrary multi-word messages across
/// a flit channel (the network-channel row of Table 1).
#[test]
fn network_channels_round_trip() {
    let mut sim = Simulator::new();
    let clk = sim.add_clock(ClockSpec::new("c", Picoseconds::new(909)));
    let (mut msg_tx, msg_rx, h1) = channel::<[u64; 4]>("msgs", ChannelKind::Buffer(2));
    let (flit_tx, flit_rx, h2) = channel::<Flit>("flits", ChannelKind::Buffer(2));
    let (out_tx, mut out_rx, h3) = channel::<[u64; 4]>("out", ChannelKind::Buffer(2));
    for h in [h1.sequential(), h2.sequential(), h3.sequential()] {
        sim.add_sequential(clk, h);
    }
    sim.add_component(clk, Packetizer::new("pkt", msg_rx, flit_tx));
    sim.add_component(clk, DePacketizer::new("depkt", flit_rx, out_tx));

    let messages: Vec<[u64; 4]> = (0..10).map(|i| [i, i * 2, i * 3, u64::MAX - i]).collect();
    let mut sent = 0;
    let mut got = Vec::new();
    for _ in 0..500 {
        if sent < messages.len() && msg_tx.push_nb(messages[sent]).is_ok() {
            sent += 1;
        }
        sim.run_cycles(clk, 1);
        if let Some(m) = out_rx.pop_nb() {
            got.push(m);
        }
    }
    assert_eq!(got, messages);
}
