//! Whole-SoC integration: the Fig. 5/Fig. 6 system driven end to end —
//! RISC-V orchestration over AXI, NoC data movement, PE compute, both
//! fidelities and both clocking schemes.

use craftflow::soc::pe::Fidelity;
use craftflow::soc::workloads::{dot_product, kmeans_assign, run_workload, vec_mul};
use craftflow::soc::{ClockingMode, SocConfig};

#[test]
fn rtl_and_sim_accurate_agree_functionally_and_closely_in_cycles() {
    for wl in [vec_mul(), kmeans_assign()] {
        let (sim, ok1) = run_workload(SocConfig::default(), &wl, 8_000_000);
        let rtl_cfg = SocConfig {
            fidelity: Fidelity::Rtl,
            ..SocConfig::default()
        };
        let (rtl, ok2) = run_workload(rtl_cfg, &wl, 8_000_000);
        assert!(ok1 && ok2, "{}: functional mismatch", wl.name);
        assert!(
            rtl.cycles >= sim.cycles,
            "{}: RTL cannot be faster",
            wl.name
        );
        let err = (rtl.cycles - sim.cycles) as f64 / rtl.cycles as f64;
        assert!(
            err < 0.03,
            "{}: cycle error {err:.4} must be below the paper's 3%",
            wl.name
        );
    }
}

#[test]
fn gals_soc_is_functionally_transparent() {
    // The whole point of LI design + pausible crossings: moving every
    // partition to its own clock changes timing, never function.
    let wl = dot_product();
    for spread in [500u32, 2000, 8000] {
        let cfg = SocConfig {
            clocking: ClockingMode::Gals { spread_ppm: spread },
            ..SocConfig::default()
        };
        let (r, ok) = run_workload(cfg, &wl, 8_000_000);
        assert!(r.completed && ok, "spread {spread} ppm failed");
    }
}

#[test]
fn controller_traffic_is_visible_on_the_axi_bus() {
    let (r, ok) = run_workload(SocConfig::default(), &vec_mul(), 8_000_000);
    assert!(ok);
    // 4 commands x (3 table reads + 4 control writes) + barrier polls.
    assert!(
        r.ctrl.axi_ops > 20,
        "expected orchestration traffic, saw {} AXI ops",
        r.ctrl.axi_ops
    );
    assert!(r.ctrl.instret > 50, "controller must execute real code");
    assert!(
        r.ctrl.axi_stall_cycles > r.ctrl.axi_ops,
        "AXI round trips cost multiple cycles each"
    );
}

#[test]
fn workload_cycles_are_reproducible_bit_for_bit() {
    let wl = kmeans_assign();
    let runs: Vec<u64> = (0..3)
        .map(|_| run_workload(SocConfig::default(), &wl, 8_000_000).0.cycles)
        .collect();
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[1], runs[2]);
}
