//! E11 — §2.3 stall-injection verification: "we add an option to
//! inject random stalls into any channel by randomly withholding
//! valid ... Such testing assists in quickly covering complex corner
//! case scenarios that otherwise would require significant dedicated
//! test development effort."
//!
//! The scenario: a unit receives a header and its payload on two
//! separate LI channels. A *buggy* implementation assumes the payload
//! is always available in the same cycle as the header — true under
//! nominal timing, so directed tests pass. Stall injection on the
//! payload channel breaks the hidden timing assumption and exposes the
//! bug, while a correctly latency-insensitive implementation sails
//! through the same stalls.

use craftflow::connections::{channel, ChannelKind, In, Out, StallInjector};
use craftflow::sim::{ClockSpec, Component, Picoseconds, Simulator, TickCtx};
use std::cell::RefCell;
use std::rc::Rc;

struct Producer {
    header: Out<u32>,
    payload: Out<u32>,
    next: u32,
    limit: u32,
}

impl Component for Producer {
    fn name(&self) -> &str {
        "producer"
    }
    fn tick(&mut self, _ctx: &mut TickCtx<'_>) {
        if self.next >= self.limit {
            return;
        }
        // Payload first, header second: under nominal timing the
        // payload is never behind its header.
        if self.payload.can_push() && self.header.can_push() {
            self.payload.push_nb(self.next * 1000).expect("checked");
            self.header.push_nb(self.next).expect("checked");
            self.next += 1;
        }
    }
}

type Pairs = Rc<RefCell<Vec<(u32, u32)>>>;

/// BUGGY: assumes the payload arrives no later than its header.
struct BuggyConsumer {
    header: In<u32>,
    payload: In<u32>,
    seen: Pairs,
}

impl Component for BuggyConsumer {
    fn name(&self) -> &str {
        "buggy"
    }
    fn tick(&mut self, _ctx: &mut TickCtx<'_>) {
        if let Some(h) = self.header.pop_nb() {
            // Hidden timing assumption: payload must be here NOW.
            let p = self.payload.pop_nb().unwrap_or(0xDEAD);
            self.seen.borrow_mut().push((h, p));
        }
    }
}

/// CORRECT: holds the header until the payload arrives (fully
/// latency-insensitive).
struct CorrectConsumer {
    header: In<u32>,
    payload: In<u32>,
    pending: Option<u32>,
    seen: Pairs,
}

impl Component for CorrectConsumer {
    fn name(&self) -> &str {
        "correct"
    }
    fn tick(&mut self, _ctx: &mut TickCtx<'_>) {
        if self.pending.is_none() {
            self.pending = self.header.pop_nb();
        }
        if let Some(h) = self.pending {
            if let Some(p) = self.payload.pop_nb() {
                self.seen.borrow_mut().push((h, p));
                self.pending = None;
            }
        }
    }
}

fn run(buggy: bool, stall_payload: bool) -> Vec<(u32, u32)> {
    let mut sim = Simulator::new();
    let clk = sim.add_clock(ClockSpec::new("c", Picoseconds::new(909)));
    let (h_tx, h_rx, hh) = channel::<u32>("header", ChannelKind::Buffer(2));
    let (p_tx, p_rx, hp) = channel::<u32>("payload", ChannelKind::Buffer(2));
    sim.add_sequential(clk, hh.sequential());
    sim.add_sequential(clk, hp.sequential());
    if stall_payload {
        // No design or testbench change: just a hook on the channel.
        hp.inject_stalls(StallInjector::bernoulli(0.5, 99));
    }
    sim.add_component(
        clk,
        Producer {
            header: h_tx,
            payload: p_tx,
            next: 0,
            limit: 100,
        },
    );
    let seen: Pairs = Rc::new(RefCell::new(Vec::new()));
    if buggy {
        sim.add_component(
            clk,
            BuggyConsumer {
                header: h_rx,
                payload: p_rx,
                seen: Rc::clone(&seen),
            },
        );
    } else {
        sim.add_component(
            clk,
            CorrectConsumer {
                header: h_rx,
                payload: p_rx,
                pending: None,
                seen: Rc::clone(&seen),
            },
        );
    }
    sim.run_cycles(clk, 3_000);
    let out = seen.borrow().clone();
    out
}

fn mismatches(pairs: &[(u32, u32)]) -> usize {
    pairs.iter().filter(|(h, p)| *p != h * 1000).count()
}

/// Without stalls the bug is latent: every directed run passes.
#[test]
fn buggy_design_passes_nominal_timing() {
    let pairs = run(true, false);
    assert_eq!(pairs.len(), 100);
    assert_eq!(mismatches(&pairs), 0, "bug must be invisible nominally");
}

/// Stall injection exposes the hidden timing assumption immediately:
/// the buggy unit both corrupts pairings (0xDEAD substitutions, stale
/// payloads) and then wedges the system — its missed pops leave the
/// payload channel full, deadlocking the producer. Exactly the
/// "complex corner case scenarios" the paper says this technique
/// covers. (This mirrors the paper's own note that signal-level timing
/// perturbation "can at worst result in functional errors or
/// deadlocks" in non-LI code.)
#[test]
fn stall_injection_exposes_the_bug() {
    let pairs = run(true, true);
    let corrupted = mismatches(&pairs);
    let hung = pairs.len() < 100;
    assert!(
        corrupted > 0 && hung,
        "stalls must surface the bug: {} corrupted pairings, {} of 100 transactions completed",
        corrupted,
        pairs.len()
    );
}

/// A latency-insensitive design is immune to the same perturbation —
/// the LI guarantee stall injection relies on.
#[test]
fn correct_design_survives_stalls() {
    let pairs = run(false, true);
    assert_eq!(pairs.len(), 100, "all transactions complete under stalls");
    assert_eq!(mismatches(&pairs), 0);
}
