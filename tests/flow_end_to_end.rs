//! End-to-end flow integration (Fig. 1): architectural model ->
//! optimize -> schedule -> bind -> chip rollup, with functional
//! cosimulation between the untimed model and the scheduled design,
//! plus constraint-only design-space exploration.

use craftflow::core::{pareto_front, run_flow, sweep, Clocking, FlowSpec, UnitSpec};
use craftflow::hls::{compile, kernels, Constraints, KernelBuilder};
use craftflow::tech::TechLibrary;

/// The optimized kernel that binding consumed must be functionally
/// identical to the source model — the "verified SystemC models"
/// contract of Fig. 1.
#[test]
fn cosimulation_source_vs_compiled() {
    let lib = TechLibrary::n16();
    for lanes in [4usize, 8, 16] {
        let k = kernels::crossbar_dst_loop(lanes, 32);
        let out = compile(
            &k,
            &lib,
            &Constraints::at_clock(1100.0).with_mem_ports(lanes as u32 * 2),
        );
        // Drive both models with the same stimulus.
        for seed in 0..5i64 {
            let inputs: Vec<i64> = (0..2 * lanes as i64)
                .map(|i| {
                    if i < lanes as i64 {
                        i * 17 + seed
                    } else {
                        (i + seed).rem_euclid(lanes as i64)
                    }
                })
                .collect();
            assert_eq!(
                k.eval(&inputs, &[]).0,
                out.optimized.eval(&inputs, &[]).0,
                "lanes {lanes} seed {seed}"
            );
        }
    }
}

/// The full §2.4 headline through the public flow API.
#[test]
fn crossbar_penalty_through_flow() {
    let lib = TechLibrary::n16();
    let c = Constraints::at_clock(1100.0).with_mem_ports(64);
    let src = compile(&kernels::crossbar_src_loop(32, 32), &lib, &c);
    let dst = compile(&kernels::crossbar_dst_loop(32, 32), &lib, &c);
    let penalty = src.module.area_um2(&lib) / dst.module.area_um2(&lib) - 1.0;
    assert!(
        (0.15..0.40).contains(&penalty),
        "32x32 src-loop penalty {penalty:.3} should be near the paper's 25%"
    );
}

/// GALS clocking shrinks top-level clocking cost relative to a global
/// tree at testchip scale, and removes the skew margin entirely.
#[test]
fn chip_report_gals_vs_synchronous() {
    let lib = TechLibrary::n16();
    let units = vec![UnitSpec {
        name: "pe".into(),
        kernel: kernels::crossbar_dst_loop(8, 32),
        constraints: Constraints::at_clock(909.0).with_mem_ports(16),
        replicas: 15,
    }];
    let sync = run_flow(
        &FlowSpec {
            name: "sync".into(),
            units: units.clone(),
            partitions: 19,
            clocking: Clocking::GlobalSynchronous {
                die_span_um: 3000.0,
            },
        },
        &lib,
    );
    let gals = run_flow(
        &FlowSpec {
            name: "gals".into(),
            units,
            partitions: 19,
            clocking: Clocking::FineGrainedGals {
                interfaces_per_partition: 4,
                fifo_depth: 8,
                fifo_width: 64,
            },
        },
        &lib,
    );
    assert_eq!(gals.skew_margin_ps, 0.0);
    assert!(sync.skew_margin_ps > 50.0);
    assert!(
        (gals.logic_area_um2 - sync.logic_area_um2).abs() < 1e-6,
        "clocking choice must not change logic area"
    );
}

/// DSE sweeps constraints only; every point computes the same function.
#[test]
fn dse_points_all_functionally_identical() {
    let lib = TechLibrary::n16();
    let mut b = KernelBuilder::new("poly", 32);
    let x = b.input(0);
    let x2 = b.mul(x, x);
    let x3 = b.mul(x2, x);
    let three = b.constant(3);
    let t = b.mul(x2, three);
    let s = b.add(x3, t);
    b.output(0, s);
    let k = b.finish();

    let points = sweep(&k, &lib, &[900.0, 1400.0], &[None, Some(1)]);
    assert_eq!(points.len(), 4);
    let front = pareto_front(&points);
    assert!(!front.is_empty());
    // Constraint changes never touch semantics (x^3 + 3x^2 at x=5: 200).
    for p in &points {
        let out = compile(&k, &lib, &p.constraints);
        assert_eq!(out.optimized.eval(&[5], &[]).0[0], 200);
    }
}
