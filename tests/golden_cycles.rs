//! Golden cycle-count regression lock: the simulator is deterministic,
//! so these exact numbers ARE the reproduction (EXPERIMENTS.md quotes
//! them). A deliberate microarchitecture change must update both this
//! test and EXPERIMENTS.md together.

use craftflow::soc::pe::Fidelity;
use craftflow::soc::workloads::{run_workload, six_soc_tests};
use craftflow::soc::SocConfig;

#[test]
fn fig6_cycle_counts_are_locked() {
    let golden_sim = [
        ("vec_mul", 796u64),
        ("dot_product", 1383),
        ("reduction", 879),
        ("conv1d", 716),
        ("kmeans_assign", 436),
        ("matvec", 4324),
    ];
    let golden_rtl = [
        ("vec_mul", 804u64),
        ("dot_product", 1391),
        ("reduction", 895),
        ("conv1d", 716),
        ("kmeans_assign", 444),
        ("matvec", 4324),
    ];
    for (wl, (name, cycles)) in six_soc_tests().iter().zip(golden_sim) {
        assert_eq!(wl.name, name);
        let (r, ok) = run_workload(SocConfig::default(), wl, 8_000_000);
        assert!(ok, "{name} failed verification");
        assert_eq!(
            r.cycles, cycles,
            "{name} sim-accurate cycle count drifted — update EXPERIMENTS.md if intentional"
        );
    }
    let rtl_cfg = SocConfig {
        fidelity: Fidelity::Rtl,
        ..SocConfig::default()
    };
    for (wl, (name, cycles)) in six_soc_tests().iter().zip(golden_rtl) {
        let (r, ok) = run_workload(rtl_cfg, wl, 8_000_000);
        assert!(ok, "{name} failed verification");
        assert_eq!(
            r.cycles, cycles,
            "{name} RTL cycle count drifted — update EXPERIMENTS.md if intentional"
        );
    }
}
