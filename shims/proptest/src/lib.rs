//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this in-tree crate
//! provides the subset of proptest's API the workspace tests use:
//! `proptest!` (both `name in strategy` and `name: Type` argument
//! forms, with an optional `#![proptest_config(..)]` header),
//! `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`/`prop_assume!`,
//! `prop_oneof!`, `Strategy`/`Just`/`prop_map`, `any::<T>()`, and the
//! `collection`/`sample`/`option`/`array`/`num` strategy modules.
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! seeds: every test function draws its cases from a deterministic RNG
//! seeded from the test's module path and name, so failures reproduce
//! exactly across runs and machines.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Runner configuration and the deterministic case RNG.

    /// Mirror of `proptest::test_runner::Config` (cases only).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each `proptest!` function runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Marker for a rejected (assumed-away) case. Never constructed by
    /// the shim — `prop_assume!` simply ends the case early — but the
    /// closure each case runs in is typed `Result<(), Rejected>` so
    /// `return Ok(())` works.
    #[derive(Debug)]
    pub struct Rejected;

    /// Deterministic splitmix64 stream seeded from a test identifier.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from an arbitrary identifier string
        /// (FNV-1a hash), so each test gets its own fixed sequence.
        pub fn new(ident: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in ident.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 uniform random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform index in `[0, n)`. `n` must be nonzero.
        pub fn index(&mut self, n: usize) -> usize {
            debug_assert!(n > 0);
            (self.next_u64() % n as u64) as usize
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A boxed, type-erased strategy (what `prop_oneof!` stores).
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    /// Produces random values of `Self::Value`. The shim has no
    /// shrinking: `generate` is the whole contract.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy behind a `Box<dyn Strategy>`.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of one value (`proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over the given alternatives (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.index(self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }
    int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    float_ranges!(f32, f64);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` and the `Arbitrary` trait behind it.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical random distribution.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.unit_f64() * 2e6 - 1e6
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (rng.unit_f64() * 2e6 - 1e6) as f32
        }
    }

    impl<T: Arbitrary> Arbitrary for Option<T> {
        fn arbitrary(rng: &mut TestRng) -> Self {
            if rng.next_u64() & 1 == 1 {
                Some(T::arbitrary(rng))
            } else {
                None
            }
        }
    }

    impl<A: Arbitrary, B: Arbitrary> Arbitrary for (A, B) {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (A::arbitrary(rng), B::arbitrary(rng))
        }
    }

    impl<A: Arbitrary, B: Arbitrary, C: Arbitrary> Arbitrary for (A, B, C) {
        fn arbitrary(rng: &mut TestRng) -> Self {
            (A::arbitrary(rng), B::arbitrary(rng), C::arbitrary(rng))
        }
    }

    /// Strategy form of [`Arbitrary`], returned by [`any`].
    #[derive(Debug, Clone, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (`proptest::arbitrary::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Acceptable length arguments for [`fn@vec`]: a fixed length or a
    /// (half-open / inclusive) range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl SizeRange {
        pub(crate) fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.index(self.hi_inclusive - self.lo + 1)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `element` with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    //! Sampling strategies (`select`, `subsequence`).

    use crate::collection::SizeRange;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform choice from a fixed list ([`select`]).
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.items[rng.index(self.items.len())].clone()
        }
    }

    /// One element of `items`, uniformly.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select from empty list");
        Select { items }
    }

    /// Order-preserving subsequence of a fixed list ([`subsequence`]).
    #[derive(Debug, Clone)]
    pub struct Subsequence<T: Clone> {
        items: Vec<T>,
        size: SizeRange,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let want = self.size.pick(rng);
            // Choose `want` distinct indices, then emit in original order.
            let n = self.items.len();
            let mut picked = vec![false; n];
            let mut left = want;
            while left > 0 {
                let i = rng.index(n);
                if !picked[i] {
                    picked[i] = true;
                    left -= 1;
                }
            }
            (0..n)
                .filter(|&i| picked[i])
                .map(|i| self.items[i].clone())
                .collect()
        }
    }

    /// An order-preserving subsequence of `items` whose length is
    /// drawn from `size` (a fixed count or a range).
    pub fn subsequence<T: Clone>(items: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
        Subsequence {
            items,
            size: size.into(),
        }
    }
}

pub mod option {
    //! `proptest::option::of`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `Option<S::Value>` strategy, `None` half the time.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64() & 1 == 1 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// `Some(inner)` or `None`, each with probability one half.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `[S::Value; 3]` from one element strategy ([`uniform3`]).
    #[derive(Debug, Clone)]
    pub struct Uniform3<S> {
        element: S,
    }

    impl<S: Strategy> Strategy for Uniform3<S> {
        type Value = [S::Value; 3];
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            [
                self.element.generate(rng),
                self.element.generate(rng),
                self.element.generate(rng),
            ]
        }
    }

    /// Three independent draws from `element`.
    pub fn uniform3<S: Strategy>(element: S) -> Uniform3<S> {
        Uniform3 { element }
    }
}

pub mod num {
    //! Numeric distributions (`prop::num::f32::NORMAL` etc.).

    /// `f32` strategies.
    pub mod f32 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy over normal (non-zero, non-subnormal, finite)
        /// `f32` values, both signs.
        #[derive(Debug, Clone, Copy)]
        pub struct NormalF32;

        /// Uniform over bit patterns with exponent in `1..=254`.
        pub const NORMAL: NormalF32 = NormalF32;

        impl Strategy for NormalF32 {
            type Value = f32;
            fn generate(&self, rng: &mut TestRng) -> f32 {
                let sign = (rng.next_u64() & 1) as u32;
                let exp = 1 + rng.index(254) as u32; // 1..=254
                let mantissa = (rng.next_u64() as u32) & 0x007F_FFFF;
                f32::from_bits((sign << 31) | (exp << 23) | mantissa)
            }
        }
    }

    /// `f64` strategies.
    pub mod f64 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy over normal (non-zero, non-subnormal, finite)
        /// `f64` values, both signs.
        #[derive(Debug, Clone, Copy)]
        pub struct NormalF64;

        /// Uniform over bit patterns with exponent in `1..=2046`.
        pub const NORMAL: NormalF64 = NormalF64;

        impl Strategy for NormalF64 {
            type Value = f64;
            fn generate(&self, rng: &mut TestRng) -> f64 {
                let sign = rng.next_u64() & 1;
                let exp = 1 + rng.index(2046) as u64; // 1..=2046
                let mantissa = rng.next_u64() & 0x000F_FFFF_FFFF_FFFF;
                f64::from_bits((sign << 63) | (exp << 52) | mantissa)
            }
        }
    }
}

pub mod prelude {
    //! Mirror of `proptest::prelude` — glob-import in tests.

    /// The crate itself under proptest's conventional `prop` alias
    /// (`prop::sample::select`, `prop::num::f32::NORMAL`, ...).
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests. Supports an optional
/// `#![proptest_config(..)]` header, doc comments and attributes per
/// function, and both `name in strategy` and `name: Type` arguments
/// (mixed freely).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]: expands each `fn` in the
/// block into a plain test function running `cfg.cases` random cases.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::new(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cfg.cases {
                $crate::__proptest_bindings!(__rng, $($params)*);
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), $crate::test_runner::Rejected> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                let _ = __outcome;
            }
        }
        $crate::__proptest_fns!(($cfg) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]: one `let` per parameter.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bindings {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident, $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bindings!($rng, $($rest)*);
    };
    ($rng:ident, $name:ident : $ty:ty) => {
        let $name: $ty =
            $crate::strategy::Strategy::generate(&$crate::arbitrary::any::<$ty>(), &mut $rng);
    };
    ($rng:ident, $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name: $ty =
            $crate::strategy::Strategy::generate(&$crate::arbitrary::any::<$ty>(), &mut $rng);
        $crate::__proptest_bindings!($rng, $($rest)*);
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($t:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Kind {
        A,
        B(usize),
    }

    fn kind() -> impl Strategy<Value = Kind> {
        prop_oneof![Just(Kind::A), (1usize..6).prop_map(Kind::B)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Mixed arg forms, ranges, collections, assume, tuples.
        #[test]
        fn shim_surface_works(
            word: u64,
            small in 1u32..=64,
            v in prop::collection::vec(-50i64..50, 0..10),
            pair in (0usize..8, prop::option::of(any::<u64>())),
            pick in prop::sample::select(vec![10, 20, 30]),
            sub in prop::sample::subsequence((0..8usize).collect::<Vec<_>>(), 8),
            k in kind(),
            arr in prop::array::uniform3(-5i64..5),
            nf in prop::num::f32::NORMAL,
        ) {
            prop_assume!(word != u64::MAX);
            prop_assert!((1..=64).contains(&small));
            prop_assert!(v.len() < 10);
            prop_assert!(v.iter().all(|x| (-50..50).contains(x)));
            prop_assert!(pair.0 < 8);
            prop_assert!([10, 20, 30].contains(&pick));
            prop_assert_eq!(&sub, &(0..8).collect::<Vec<_>>());
            match k {
                Kind::A => {}
                Kind::B(n) => prop_assert!((1..6).contains(&n)),
            }
            prop_assert!(arr.iter().all(|x| (-5..5).contains(x)));
            prop_assert!(nf.is_normal());
            prop_assert_ne!(word, u64::MAX);
        }

        /// Typed-only arg form (as soc::bitrtl uses).
        #[test]
        fn typed_args(a: u64, b: u64) {
            let _ = a.wrapping_add(b);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut r1 = crate::test_runner::TestRng::new("x::y");
        let mut r2 = crate::test_runner::TestRng::new("x::y");
        for _ in 0..8 {
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
    }
}
