//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this in-tree crate
//! implements the slice of criterion's API the `craft-bench` benches
//! use: `Criterion`, `benchmark_group`/`sample_size`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple — a short warm-up, then
//! `sample_size` timed iterations reported as min/mean/median wall
//! clock per iteration on stdout. There is no statistical analysis,
//! plotting, or HTML report; the point is that `cargo bench` runs and
//! prints comparable numbers without external dependencies.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from const-folding a
/// benchmarked computation away. (`std::hint::black_box` re-export.)
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Times a closure over repeated iterations, mirroring
/// `criterion::Bencher`.
pub struct Bencher {
    samples: Vec<Duration>,
    n_samples: usize,
    warmup_iters: u32,
}

impl Bencher {
    /// Runs `f` repeatedly, recording one timing sample per batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run untimed so lazy init and caches settle outside
        // the measurement (skipped in cargo-test smoke mode).
        for _ in 0..self.warmup_iters {
            black_box(f());
        }
        for _ in 0..self.n_samples {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(group: &str, id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "{group}/{id}: min {min:?}  mean {mean:?}  median {median:?}  ({} samples)",
        sorted.len()
    );
}

/// A named set of related benchmarks, mirroring
/// `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    bench_mode: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timing samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run_one(&self, id: &str, f: impl FnOnce(&mut Bencher)) {
        // Under `cargo test` (no --bench flag) each benchmark runs
        // once as a smoke test, matching real criterion's behaviour.
        let (n_samples, warmup) = if self.bench_mode {
            (self.sample_size, 2)
        } else {
            (1, 0)
        };
        let mut b = Bencher {
            samples: Vec::with_capacity(n_samples),
            n_samples,
            warmup_iters: warmup,
        };
        f(&mut b);
        if self.bench_mode {
            report(&self.name, id, &b.samples);
        } else {
            println!("{}/{id}: ok (smoke)", self.name);
        }
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnOnce(&mut Bencher)) {
        self.run_one(&id.to_string(), f);
    }

    /// Benchmarks `f`, passing it a borrowed input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) {
        self.run_one(&id.to_string(), |b| f(b, input));
    }

    /// Ends the group (no-op in the shim; kept for API parity).
    pub fn finish(self) {}
}

/// The top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    bench_mode: bool,
}

impl Default for Criterion {
    /// Bench mode when cargo passed `--bench` (i.e. `cargo bench`);
    /// smoke-test mode otherwise (i.e. `cargo test` on a
    /// `harness = false` bench target).
    fn default() -> Self {
        Criterion {
            bench_mode: std::env::args().any(|a| a == "--bench"),
        }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            bench_mode: self.bench_mode,
            _criterion: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnOnce(&mut Bencher)) {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
    }
}

/// Collects benchmark functions into a runner, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main()` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim_selftest");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sum_n", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        g.finish();
    }

    criterion_group!(benches, sum_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
