//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `rand 0.8` API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`] and [`Rng::gen_bool`]. The generator is
//! xoshiro256** seeded through splitmix64 — deterministic across
//! platforms and runs, which is all the simulation layers require
//! (they never ask for cryptographic quality).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing random-value interface, mirroring `rand::Rng`.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of `T` from the "standard" distribution
    /// (uniform bits for integers, `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

/// Types samplable from uniform random bits (`rand`'s `Standard`
/// distribution, flattened into a trait the shim can implement).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 mantissa bits -> uniform in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                self.start + (unit_f64(rng.next_u64()) as $t) * (self.end - self.start)
            }
        }
    )*};
}
range_float!(f32, f64);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256** seeded via splitmix64 — the shim's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn unit_float_distribution_sane() {
        let mut r = StdRng::seed_from_u64(7);
        let mean: f64 = (0..10_000).map(|_| r.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
