#!/usr/bin/env bash
# Regenerates every table and figure of the paper in one go.
# See EXPERIMENTS.md for the expected (paper vs measured) values.
set -euo pipefail
cd "$(dirname "$0")"
for bin in fig3_crossbar_accuracy \
           table2_matchlib_inventory \
           crossbar_loop_style \
           qor_vs_handrtl \
           gals_overhead \
           fig6_soc_accuracy \
           productivity_report \
           backend_turnaround \
           pe_lanes_ablation; do
  echo "==================================================================="
  echo "== $bin"
  echo "==================================================================="
  cargo run --release -q -p craft-bench --bin "$bin"
  echo
done
