#!/usr/bin/env sh
# Repo CI gate: formatting, lints, the full test suite, benchmark
# compilation, and a release-mode kernel smoke run.
# Run from the repo root: ./scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "==> cargo bench --no-run (criterion harnesses compile)"
cargo bench --workspace --no-run

echo "==> cargo doc (workspace, no deps, warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> kernel smoke (release, vec_mul only; JSON baseline untouched)"
cargo run --release -p craft-bench --bin kernel_baseline -- --workload vec_mul

echo "==> compiled-schedule smoke (release, instant plan vs interpreted; cycle-identity asserted)"
cargo run --release -p craft-bench --bin kernel_baseline -- --workload smoke --compiled-schedule

echo "==> de-opt smoke (fault injection must fall back to the interpreted path)"
cargo run --release -p craft-bench --bin kernel_baseline -- --workload smoke --deopt-smoke

echo "==> parallel kernel smoke (release, vec_mul, 4 shards; cycle-identity asserted)"
cargo run --release -p craft-bench --bin kernel_baseline -- --workload vec_mul --threads 4

echo "==> degenerate-partition smoke (epoch machinery on, single shard)"
cargo run --release -p craft-bench --bin kernel_baseline -- --workload vec_mul --threads 1

echo "==> adaptive-partition smoke (release, asymmetric profile-guided cuts; sequential identity asserted)"
cargo run --release -p craft-bench --bin kernel_baseline -- --workload smoke --partition

echo "==> repartition-at-checkpoint smoke (release, 2 strips -> 3-shard cut mid-run; bit-identity asserted)"
cargo run --release -p craft-bench --bin kernel_baseline -- --workload smoke --repartition-smoke

echo "==> telemetry smoke (release, instrumented run + validated snapshot JSON)"
tel_snap="$(mktemp)"
cargo run --release -p craft-bench --bin kernel_baseline -- --workload vec_mul --telemetry "$tel_snap"
test -s "$tel_snap" || { echo "telemetry snapshot is empty" >&2; exit 1; }
rm -f "$tel_snap"

echo "==> fault-campaign smoke (release, reduced seeds; JSON baseline untouched)"
cargo run --release -p craft-bench --bin fault_campaign -- --smoke

echo "==> batched-lockstep campaign smoke (release, serial-identity asserted per seed)"
cargo run --release -p craft-bench --bin fault_campaign -- --batch --smoke

echo "==> batched-lockstep kernel smoke (release, lane 0 vs solo replay asserted)"
cargo run --release -p craft-bench --bin kernel_baseline -- --workload smoke --batch

echo "==> checkpoint smoke (release, round-trip identity + corruption/truncation/version rejection)"
cargo run --release -p craft-bench --bin fault_campaign -- --ckpt-smoke

echo "==> resumable-campaign smoke (release, journal + --resume; artifacts must be byte-identical)"
ckpt_dir="$(mktemp -d)"
ckpt_a="$(mktemp)"
ckpt_b="$(mktemp)"
cargo run --release -p craft-bench --bin fault_campaign -- --smoke --checkpoint-dir "$ckpt_dir" --out "$ckpt_a"
cargo run --release -p craft-bench --bin fault_campaign -- --smoke --checkpoint-dir "$ckpt_dir" --resume --out "$ckpt_b"
cmp "$ckpt_a" "$ckpt_b" || { echo "resumed artifact diverged from the journaling run" >&2; exit 1; }
rm -rf "$ckpt_dir" "$ckpt_a" "$ckpt_b"

echo "==> serve smoke (release: start sim_server, submit concurrent jobs, preempt + resume, validate streamed JSON)"
cargo build --release -p craft-serve --bin sim_server --example serve_client
serve_log="$(mktemp)"
target/release/sim_server --port 0 --workers 1 > "$serve_log" &
serve_pid=$!
serve_port=""
for _ in $(seq 1 50); do
    serve_port="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$serve_log")"
    [ -n "$serve_port" ] && break
    kill -0 "$serve_pid" 2>/dev/null || { echo "sim_server died:" >&2; cat "$serve_log" >&2; exit 1; }
    sleep 0.1
done
[ -n "$serve_port" ] || { echo "sim_server never reported its port" >&2; cat "$serve_log" >&2; exit 1; }
target/release/examples/serve_client --port "$serve_port" --preempt-demo --shutdown
wait "$serve_pid"
rm -f "$serve_log"

echo "CI OK"
