//! Satellite of the serving PR: N concurrent jobs with mixed engines
//! and deadlines on a 2-worker pool must each produce a report
//! identical to a solo (uncontended) run of the same spec — all in
//! deterministic scheduler mode, so no assertion depends on wall
//! clock or thread interleavings.

use craft_connections::FaultConfig;
use craft_serve::{DeterministicScheduler, JobError, JobSpec, ServeError, WorkloadId};
use craft_soc::{EngineKind, LaneSpec};
use craftflow_core::validate_json;

const CKPT: u64 = 300;

fn spec(workload: WorkloadId, engine: EngineKind) -> JobSpec {
    let mut s = JobSpec::new(workload, engine);
    s.cfg.checkpoint_every = Some(CKPT);
    if engine == EngineKind::Batch {
        s.faults = vec![
            LaneSpec::new("->", FaultConfig::bit_flip(0.01), 7),
            LaneSpec::new("->", FaultConfig::drop(0.02), 8),
        ];
    }
    s
}

/// Runs one spec alone (1 worker, empty queue — never preempted) and
/// returns its report rendering plus cycles.
fn solo(s: &JobSpec) -> (String, u64, bool) {
    let mut sched = DeterministicScheduler::new(1);
    let id = sched.submit(s.clone()).expect("accepted");
    sched.run_until_idle();
    let out = sched
        .outcome(id)
        .expect("finished")
        .as_ref()
        .expect("solo run succeeds");
    assert_eq!(out.preemptions, 0, "solo run must never be preempted");
    (out.report.to_json(), out.cycles, out.completed)
}

#[test]
fn mixed_engine_jobs_on_two_workers_match_solo_runs() {
    let specs = [
        spec(WorkloadId::VecMul, EngineKind::Soc),
        spec(WorkloadId::DotProduct, EngineKind::Parallel { threads: 2 }),
        spec(WorkloadId::Reduction, EngineKind::Batch),
        spec(WorkloadId::VecAddScale, EngineKind::Soc),
        spec(WorkloadId::Conv1d, EngineKind::Parallel { threads: 2 }),
        spec(WorkloadId::Matvec, EngineKind::Soc),
    ];
    let references: Vec<(String, u64, bool)> = specs.iter().map(solo).collect();

    let mut sched = DeterministicScheduler::new(2);
    let ids: Vec<u64> = specs
        .iter()
        .map(|s| sched.submit(s.clone()).expect("accepted"))
        .collect();
    sched.run_until_idle();

    let mut total_preempts = 0;
    for (i, id) in ids.iter().enumerate() {
        let out = sched
            .outcome(*id)
            .unwrap_or_else(|| panic!("job {i} never finished"))
            .as_ref()
            .unwrap_or_else(|e| panic!("job {i} failed: {e}"));
        let (ref_report, ref_cycles, ref_completed) = &references[i];
        assert_eq!(out.cycles, *ref_cycles, "job {i} cycles diverged");
        assert_eq!(out.completed, *ref_completed, "job {i} verdict diverged");
        assert_eq!(
            &out.report.to_json(),
            ref_report,
            "job {i} report diverged from its solo run"
        );
        total_preempts += out.preemptions;
    }
    assert!(
        total_preempts > 0,
        "6 jobs on 2 workers must contend at least once"
    );

    let stats = sched.stats();
    assert_eq!(stats.submitted, 6);
    assert_eq!(stats.done, 6);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.preemptions, total_preempts);
    validate_json(&stats.to_json()).expect("stats JSON");
}

#[test]
fn lifecycle_events_are_ordered_and_stream_valid_json() {
    let mut sched = DeterministicScheduler::new(1);
    let a = sched
        .submit(spec(WorkloadId::VecMul, EngineKind::Soc))
        .unwrap();
    let b = sched
        .submit(spec(WorkloadId::DotProduct, EngineKind::Soc))
        .unwrap();
    sched.run_until_idle();

    for id in [a, b] {
        let tags: Vec<&str> = sched.events(id).iter().map(|e| e.tag()).collect();
        assert_eq!(tags.first(), Some(&"queued"), "job {id}: {tags:?}");
        assert_eq!(tags.get(1), Some(&"running"), "job {id}: {tags:?}");
        assert_eq!(tags.last(), Some(&"done"), "job {id}: {tags:?}");
        // Strict alternation: every preempted is followed by resumed.
        for pair in tags.windows(2) {
            if pair[0] == "preempted" {
                assert_eq!(pair[1], "resumed", "job {id}: {tags:?}");
            }
        }
        let preempts = tags.iter().filter(|t| **t == "preempted").count();
        assert!(preempts > 0, "1-worker contention must preempt: {tags:?}");
        for line in sched.lines(id) {
            validate_json(line).unwrap_or_else(|e| panic!("{e} in {line}"));
        }
        // seq numbers are dense and ascending.
        for (i, line) in sched.lines(id).iter().enumerate() {
            assert!(
                line.contains(&format!("\"seq\": {i}")),
                "line {i} of job {id} has wrong seq: {line}"
            );
        }
    }
}

#[test]
fn tiny_deadline_fails_with_deadline_exceeded() {
    let mut sched = DeterministicScheduler::new(1);
    let mut s = spec(WorkloadId::Conv1dHeavy, EngineKind::Soc);
    s.deadline_segments = Some(2);
    let id = sched.submit(s).unwrap();
    // An undeadlined rival shares the worker and still finishes.
    let rival = sched
        .submit(spec(WorkloadId::VecMul, EngineKind::Soc))
        .unwrap();
    sched.run_until_idle();
    match sched.outcome(id) {
        Some(Err(JobError::DeadlineExceeded { deadline: 2 })) => {}
        other => panic!("expected deadline failure, got {other:?}"),
    }
    assert!(sched.outcome(rival).expect("rival finished").is_ok());
    let tags: Vec<&str> = sched.events(id).iter().map(|e| e.tag()).collect();
    assert_eq!(tags.last(), Some(&"failed"));
    let last = sched.lines(id).last().expect("failed line");
    assert!(last.contains("\"verdict\": \"deadline\""), "{last}");
}

#[test]
fn cancel_queued_and_running_jobs() {
    let mut sched = DeterministicScheduler::new(1);
    let run = sched
        .submit(spec(WorkloadId::VecMul, EngineKind::Soc))
        .unwrap();
    let queued = sched
        .submit(spec(WorkloadId::DotProduct, EngineKind::Soc))
        .unwrap();
    // Cancel before any scheduling: the queued job dies immediately.
    sched.cancel(queued).unwrap();
    assert!(matches!(
        sched.outcome(queued),
        Some(Err(JobError::Canceled))
    ));
    sched.run_until_idle();
    assert!(
        sched.outcome(run).expect("finished").is_ok(),
        "survivor must finish after its rival is canceled"
    );
    // Canceling a finished job is a no-op; unknown ids are typed.
    sched.cancel(run).unwrap();
    assert!(sched.outcome(run).expect("still finished").is_ok());
    assert_eq!(sched.cancel(999), Err(ServeError::UnknownJob(999)));
}

#[test]
fn rejected_submissions_never_enter_the_queue() {
    let mut sched = DeterministicScheduler::new(1);
    let bad = JobSpec::new(WorkloadId::VecMul, EngineKind::Parallel { threads: 5 });
    assert!(matches!(sched.submit(bad), Err(JobError::Rejected(_))));
    let mut zero = spec(WorkloadId::VecMul, EngineKind::Soc);
    zero.max_cycles = 0;
    assert!(matches!(sched.submit(zero), Err(JobError::BadLimits)));
    assert_eq!(sched.stats().submitted, 0);
}
