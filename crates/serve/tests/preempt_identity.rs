//! The serving contract, property-tested: a job preempted at
//! checkpoint boundaries and resumed under load (possibly many
//! times, each time from serialized snapshot bytes) finishes with a
//! [`craft_soc::SocReport`] **bit-identical** to an uninterrupted
//! run of the same submission — across engine × workload × fidelity
//! × checkpoint grain, with and without fault vectors.

use craft_connections::FaultConfig;
use craft_serve::{DeterministicScheduler, JobSpec, WorkloadId};
use craft_soc::{EngineKind, Fidelity, LaneSpec, PartitionSpec, SocConfig};
use proptest::prelude::*;

const MAX_CYCLES: u64 = 2_000_000;
const NO_PROGRESS: u64 = 50_000;

/// Uninterrupted reference run of `spec` straight through the
/// `SimEngine` facade — no scheduler, no preemption. Returns `None`
/// when the drawn fault fail-stops the run (a panic is that
/// contract, not a serving observable).
fn reference(spec: &JobSpec) -> Option<(u64, bool, String)> {
    std::panic::catch_unwind(|| {
        let mut eng = spec.build_engine().expect("engine builds");
        let res = eng
            .run_checked(spec.max_cycles, spec.no_progress_limit)
            .expect("no hang in reference");
        (res.cycles, res.completed, eng.report().to_json())
    })
    .ok()
}

proptest! {
    // Each case is one uninterrupted run plus a two-job contended
    // schedule in debug mode — keep the case count low; the axes
    // each get drawn within a few cases.
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn preempt_resume_is_bit_identical_to_uninterrupted(
        engine in prop::sample::select(vec![
            EngineKind::Soc,
            EngineKind::Parallel { threads: 2 },
            // Adaptive sharding: every preemption resumes on the
            // balanced seed cut and re-observes — the
            // resume-under-new-partition path.
            EngineKind::ParallelAuto { threads: 2 },
            // An asymmetric non-strip cut held across preemptions.
            EngineKind::ParallelSpec {
                spec: PartitionSpec::parse("0000000100110111")
                    .expect("valid asymmetric cut"),
            },
            EngineKind::Batch,
        ]),
        workload in prop::sample::select(vec![
            WorkloadId::VecMul,
            WorkloadId::DotProduct,
            WorkloadId::Reduction,
        ]),
        fidelity in prop::sample::select(vec![
            Fidelity::SimAccurate,
            Fidelity::RtlCompiled,
        ]),
        ckpt_every in 150u64..600,
        with_fault: bool,
        seed in 0u64..1_000_000,
    ) {
        let mut spec = JobSpec::new(workload, engine);
        spec.cfg = SocConfig {
            fidelity,
            checkpoint_every: Some(ckpt_every),
            ..SocConfig::default()
        };
        spec.max_cycles = MAX_CYCLES;
        spec.no_progress_limit = NO_PROGRESS;
        // The batch engine needs at least one lane; keep the fault
        // benign enough that runs usually survive (fail-stop draws
        // are skipped via the reference run).
        if with_fault || engine == EngineKind::Batch {
            spec.faults = vec![LaneSpec::new("->", FaultConfig::bit_flip(0.01), seed)];
        }

        let Some((ref_cycles, ref_completed, ref_report)) = reference(&spec) else {
            return Ok(()); // fail-stop draw
        };

        // Serve the same submission on a 1-worker scheduler with a
        // competitor job so every boundary preempts.
        let mut sched = DeterministicScheduler::new(1);
        let target = sched.submit(spec.clone()).expect("accepted");
        let mut rival = JobSpec::new(WorkloadId::VecMul, EngineKind::Soc);
        rival.cfg.checkpoint_every = Some(ckpt_every);
        rival.max_cycles = MAX_CYCLES;
        rival.no_progress_limit = NO_PROGRESS;
        let rival_id = sched.submit(rival).expect("accepted");
        sched.run_until_idle();

        let outcome = sched.outcome(target).expect("finished").as_ref()
            .expect("served run succeeds");
        prop_assert!(outcome.preemptions > 0,
            "contended 1-worker schedule must preempt (engine {engine:?})");
        prop_assert_eq!(outcome.cycles, ref_cycles, "cycle-identical");
        prop_assert_eq!(outcome.completed, ref_completed);
        prop_assert_eq!(&outcome.report.to_json(), &ref_report,
            "served SocReport must be bit-identical to the uninterrupted run");
        prop_assert!(sched.outcome(rival_id).expect("rival finished").is_ok());
    }
}

/// The same contract through the *threaded* pool: scheduling order is
/// nondeterministic there, which is exactly what must not leak into
/// any job's final report.
#[test]
fn threaded_pool_preserves_report_identity() {
    let mut spec = JobSpec::new(WorkloadId::DotProduct, EngineKind::Soc);
    spec.cfg.checkpoint_every = Some(250);
    spec.max_cycles = MAX_CYCLES;
    spec.no_progress_limit = NO_PROGRESS;
    spec.faults = vec![LaneSpec::new("l11p3->15", FaultConfig::bit_flip(0.01), 11)];
    let (ref_cycles, _, ref_report) =
        reference(&spec).expect("payload-bit fault on a data lane must not fail-stop");

    let pool = craft_serve::ServePool::new(2);
    let ids: Vec<u64> = (0..4)
        .map(|_| pool.submit(spec.clone()).expect("accepted"))
        .collect();
    for id in ids {
        let outcome = pool.wait(id).expect("known job").expect("job succeeds");
        assert_eq!(outcome.cycles, ref_cycles);
        assert_eq!(
            outcome.report.to_json(),
            ref_report,
            "threaded scheduling leaked into the report"
        );
    }
    pool.shutdown();
}
