//! The line-oriented wire protocol.
//!
//! Requests are single text lines (`submit key=value ...`,
//! `cancel <id>`, `stats`, `shutdown`); every response is one JSON
//! line in the PR 4 validated format — lifecycle events, then the
//! `report`/`telemetry` payloads, then the terminal `done`/`failed`
//! event. Submissions are deliberately *not* JSON (the repo has no
//! JSON parser by design — emission is hand-rolled and checked with
//! [`craftflow_core::validate_json`]); `key=value` keeps parsing
//! trivial and typed.
//!
//! Submission keys:
//!
//! | key | value | default |
//! |-----|-------|---------|
//! | `workload` | `vec_mul`, `dot_product`, ... | required |
//! | `engine` | `soc`, `parallel[:threads]`, `parallel:<threads>:auto`, `parallel:spec:<16 hex>`, `batch` | `soc` |
//! | `max_cycles` | u64 | 8,000,000 |
//! | `no_progress_limit` | u64 | 50,000 |
//! | `checkpoint_every` | u64 (also the preemption grain) | unset |
//! | `deadline` | u64 scheduler segments | unset |
//! | `telemetry` | `0`/`1` | `0` |
//! | `fidelity` | `rtl`, `rtl_compiled`, `sim_accurate` | config default |
//! | `clocking` | `sync` or `gals:<spread_ppm>` | config default |
//! | `fault` | `pattern:kind:param:seed`, repeatable | none |
//!
//! Fault kinds: `bit_flip`, `drop`, `duplicate` (param = probability),
//! `stuck_valid`, `stuck_ready` (param = from-cycle).

use crate::job::{JobSpec, ServeError, WorkloadId};
use craft_connections::FaultConfig;
use craft_soc::pe::Fidelity;
use craft_soc::{ClockingMode, EngineKind, LaneSpec};

fn bad(msg: impl Into<String>) -> ServeError {
    ServeError::BadRequest(msg.into())
}

fn parse_fault(v: &str) -> Result<LaneSpec, ServeError> {
    // pattern:kind:param:seed — pattern may itself contain ':' only
    // if escaped; channel names in this repo never do.
    let parts: Vec<&str> = v.split(':').collect();
    let [pattern, kind, param, seed] = parts[..] else {
        return Err(bad(format!(
            "fault must be pattern:kind:param:seed, got {v:?}"
        )));
    };
    let seed: u64 = seed
        .parse()
        .map_err(|_| bad(format!("bad fault seed {seed:?}")))?;
    let prob = || -> Result<f64, ServeError> {
        param
            .parse::<f64>()
            .ok()
            .filter(|p| (0.0..=1.0).contains(p))
            .ok_or_else(|| bad(format!("bad fault probability {param:?}")))
    };
    let from = || -> Result<u64, ServeError> {
        param
            .parse()
            .map_err(|_| bad(format!("bad fault from-cycle {param:?}")))
    };
    let cfg = match kind {
        "bit_flip" => FaultConfig::bit_flip(prob()?),
        "drop" => FaultConfig::drop(prob()?),
        "duplicate" => FaultConfig::duplicate(prob()?),
        "stuck_valid" => FaultConfig::stuck_valid(from()?),
        "stuck_ready" => FaultConfig::stuck_ready(from()?),
        _ => return Err(bad(format!("unknown fault kind {kind:?}"))),
    };
    Ok(LaneSpec::new(pattern, cfg, seed))
}

/// Parses the body of a `submit` request (everything after the verb)
/// into a typed [`JobSpec`].
pub fn parse_submit(body: &str) -> Result<JobSpec, ServeError> {
    let mut workload = None;
    let mut spec = JobSpec::new(WorkloadId::VecMul, EngineKind::Soc);
    for tok in body.split_whitespace() {
        let (key, value) = tok
            .split_once('=')
            .ok_or_else(|| bad(format!("expected key=value, got {tok:?}")))?;
        match key {
            "workload" => {
                workload = Some(
                    WorkloadId::parse(value)
                        .ok_or_else(|| bad(format!("unknown workload {value:?}")))?,
                );
            }
            "engine" => {
                spec.engine = EngineKind::parse(value).map_err(|e| bad(e.to_string()))?;
            }
            "max_cycles" => {
                spec.max_cycles = value
                    .parse()
                    .map_err(|_| bad(format!("bad max_cycles {value:?}")))?;
            }
            "no_progress_limit" => {
                spec.no_progress_limit = value
                    .parse()
                    .map_err(|_| bad(format!("bad no_progress_limit {value:?}")))?;
            }
            "checkpoint_every" => {
                let every = value
                    .parse()
                    .map_err(|_| bad(format!("bad checkpoint_every {value:?}")))?;
                spec.cfg.checkpoint_every = Some(every);
            }
            "deadline" => {
                let d = value
                    .parse()
                    .map_err(|_| bad(format!("bad deadline {value:?}")))?;
                spec.deadline_segments = Some(d);
            }
            "telemetry" => {
                spec.telemetry = match value {
                    "1" | "true" => true,
                    "0" | "false" => false,
                    _ => return Err(bad(format!("bad telemetry flag {value:?}"))),
                };
            }
            "fidelity" => {
                spec.cfg.fidelity = match value {
                    "rtl" => Fidelity::Rtl,
                    "rtl_compiled" => Fidelity::RtlCompiled,
                    "sim_accurate" => Fidelity::SimAccurate,
                    _ => return Err(bad(format!("unknown fidelity {value:?}"))),
                };
            }
            "clocking" => {
                spec.cfg.clocking = match value {
                    "sync" => ClockingMode::Synchronous,
                    _ => match value.strip_prefix("gals:").and_then(|p| p.parse().ok()) {
                        Some(spread_ppm) => ClockingMode::Gals { spread_ppm },
                        None => return Err(bad(format!("unknown clocking {value:?}"))),
                    },
                };
            }
            "fault" => spec.faults.push(parse_fault(value)?),
            _ => return Err(bad(format!("unknown key {key:?}"))),
        }
    }
    spec.workload = workload.ok_or_else(|| bad("missing workload="))?;
    Ok(spec)
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `submit key=value ...`
    Submit(JobSpec),
    /// `cancel <id>`
    Cancel(u64),
    /// `stats`
    Stats,
    /// `shutdown`
    Shutdown,
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, ServeError> {
    let line = line.trim();
    let (verb, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
    match verb {
        "submit" => Ok(Request::Submit(parse_submit(rest)?)),
        "cancel" => rest
            .trim()
            .parse()
            .map(Request::Cancel)
            .map_err(|_| bad(format!("bad job id {rest:?}"))),
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        _ => Err(bad(format!("unknown request {verb:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_lines_parse_to_typed_specs() {
        let spec = parse_submit(
            "workload=dot_product engine=parallel:4 max_cycles=1000000 \
             no_progress_limit=9000 checkpoint_every=300 deadline=40 telemetry=1 \
             fidelity=sim_accurate clocking=gals:500 \
             fault=l11p3->15:bit_flip:0.01:7 fault=hub:drop:0.5:9",
        )
        .expect("parses");
        assert_eq!(spec.workload, WorkloadId::DotProduct);
        assert_eq!(spec.engine, EngineKind::Parallel { threads: 4 });
        assert_eq!(spec.max_cycles, 1_000_000);
        assert_eq!(spec.no_progress_limit, 9_000);
        assert_eq!(spec.cfg.checkpoint_every, Some(300));
        assert_eq!(spec.deadline_segments, Some(40));
        assert!(spec.telemetry);
        assert_eq!(spec.cfg.fidelity, Fidelity::SimAccurate);
        assert_eq!(spec.cfg.clocking, ClockingMode::Gals { spread_ppm: 500 });
        assert_eq!(spec.faults.len(), 2);
        assert_eq!(spec.faults[0].pattern, "l11p3->15");
    }

    #[test]
    fn adaptive_and_explicit_cut_engines_parse_on_the_wire() {
        let auto = parse_submit("workload=vec_mul engine=parallel:3:auto").expect("parses");
        assert_eq!(auto.engine, EngineKind::ParallelAuto { threads: 3 });
        auto.validate().expect("valid submission");

        let spec =
            parse_submit("workload=vec_mul engine=parallel:spec:0000111122223333").expect("parses");
        assert_eq!(
            spec.engine,
            EngineKind::ParallelSpec {
                spec: craft_soc::PartitionSpec::parse("0000111122223333").unwrap()
            }
        );
        spec.validate().expect("valid submission");

        for bad_line in [
            "workload=vec_mul engine=parallel:0:auto",   // range
            "workload=vec_mul engine=parallel:17:auto",  // range
            "workload=vec_mul engine=parallel:4:bogus",  // suffix
            "workload=vec_mul engine=parallel:spec:000", // short spec
            "workload=vec_mul engine=parallel:spec:000011112222333z", // digit
            "workload=vec_mul engine=parallel:spec:0000000000000002", // gap
        ] {
            assert!(
                matches!(parse_submit(bad_line), Err(ServeError::BadRequest(_))),
                "{bad_line:?} should be rejected"
            );
        }
    }

    #[test]
    fn malformed_submissions_are_typed_rejections() {
        for bad_line in [
            "engine=soc",                              // missing workload
            "workload=nope",                           // unknown workload
            "workload=vec_mul engine=quantum",         // unknown engine
            "workload=vec_mul max_cycles=lots",        // bad number
            "workload=vec_mul fault=a:bit_flip:2.0:1", // probability > 1
            "workload=vec_mul colour=blue",            // unknown key
        ] {
            assert!(
                matches!(parse_submit(bad_line), Err(ServeError::BadRequest(_))),
                "{bad_line:?} should be rejected"
            );
        }
    }

    #[test]
    fn request_verbs_parse() {
        assert!(matches!(
            parse_request("submit workload=vec_mul"),
            Ok(Request::Submit(_))
        ));
        assert_eq!(parse_request("cancel 3").unwrap(), Request::Cancel(3));
        assert_eq!(parse_request("stats").unwrap(), Request::Stats);
        assert_eq!(parse_request("shutdown").unwrap(), Request::Shutdown);
        assert!(parse_request("frobnicate").is_err());
    }
}
