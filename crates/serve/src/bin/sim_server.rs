//! `sim_server` — the simulation-as-a-service front end.
//!
//! ```text
//! sim_server [--port N] [--workers N]
//! ```
//!
//! Binds `127.0.0.1:PORT` (`--port 0`, the default, picks an
//! ephemeral port), prints `sim_server listening on ADDR` so
//! harnesses can scrape the port, and serves line-oriented requests
//! (see `craft_serve::wire`) until a client sends `shutdown`.

use craft_serve::SimServer;
use std::process::ExitCode;

fn flag_value(args: &[String], flag: &str) -> Result<Option<u64>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .map(Some)
            .ok_or_else(|| format!("{flag} needs a numeric value")),
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    for a in &args {
        if a.starts_with("--") && !matches!(a.as_str(), "--port" | "--workers") {
            return Err(format!("unknown flag {a} (known: --port N, --workers N)"));
        }
    }
    let port = flag_value(&args, "--port")?.unwrap_or(0);
    let workers = flag_value(&args, "--workers")?.unwrap_or(2) as usize;
    let server = SimServer::bind(&format!("127.0.0.1:{port}"), workers)
        .map_err(|e| format!("bind failed: {e}"))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    println!("sim_server listening on {addr} ({workers} workers)");
    server.serve().map_err(|e| format!("serve failed: {e}"))
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sim_server: {e}");
            ExitCode::FAILURE
        }
    }
}
