//! The scheduling core: a job table + ready queue (plain `Send` data,
//! never engines) and the segment-granular service loop shared by the
//! deterministic in-process scheduler and the threaded worker pool.
//!
//! Engines are `Rc`-based and deliberately not [`Send`], so a job
//! never migrates as a live engine: a preemption serializes the PR 8
//! snapshot into the job record, the engine is dropped, and whichever
//! worker picks the job up next revives it with
//! [`craft_soc::restore_engine`] — deterministic replay guarantees
//! the resumed run is bit-identical to an uninterrupted one.
//!
//! [`DeterministicScheduler`] drives the same core single-threaded
//! with `W` virtual workers in strict round-robin (one segment per
//! worker per turn, preemption whenever other jobs wait). No wall
//! clock and no thread interleaving touch any decision, so tests
//! assert on exact event sequences.

use crate::job::{JobError, JobEvent, JobSpec, ServeError};
use craft_sim::TelemetrySnapshot;
use craft_soc::{restore_engine, SegmentStatus, SimEngine, SocReport};
use std::collections::VecDeque;

/// Final result of a successfully served job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Blended whole-run hub cycles (equals the uninterrupted run's).
    pub cycles: u64,
    /// Whether the halt predicate fired.
    pub completed: bool,
    /// Scheduler segments executed.
    pub segments: u64,
    /// Times the job was preempted and later resumed.
    pub preemptions: u64,
    /// The final typed report (bit-identical to an uninterrupted
    /// run's — the serving contract).
    pub report: SocReport,
    /// Final telemetry snapshot, when the spec asked for a sink.
    pub telemetry: Option<TelemetrySnapshot>,
    /// Lane summary for batch jobs.
    pub batch: Option<BatchSummary>,
}

/// Per-lane convergence summary of a served batch job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchSummary {
    /// Total fault lanes.
    pub lanes: usize,
    /// Lanes that de-opted to solo replays.
    pub deopt_lanes: usize,
    /// Lanes that stayed bit-identical to the golden run.
    pub converged_lanes: usize,
}

/// Aggregate server counters (one JSON object on the wire).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Jobs ever submitted.
    pub submitted: u64,
    /// Jobs finished cleanly.
    pub done: u64,
    /// Jobs finished with a typed failure.
    pub failed: u64,
    /// Preemptions across all jobs.
    pub preemptions: u64,
    /// Segments executed across all jobs.
    pub segments: u64,
}

impl ServeStats {
    /// Renders the counters as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"submitted\": {}, \"done\": {}, \"failed\": {}, \
             \"preemptions\": {}, \"segments\": {}}}",
            self.submitted, self.done, self.failed, self.preemptions, self.segments
        )
    }
}

/// Where one job currently is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Waiting in the ready queue, never run.
    Queued,
    /// Live on a worker.
    Running,
    /// Preempted; state lives only in the serialized snapshot.
    Preempted,
    /// Done or failed; see the outcome.
    Finished,
}

/// Collapses a hand-rolled multi-line JSON rendering onto one wire
/// line. Safe because the emitters never put raw control characters
/// inside string literals (enforced by `validate_json`).
fn one_line(json: &str) -> String {
    json.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Everything the server tracks about one job. Plain data — safe to
/// share behind a mutex across worker threads.
#[derive(Debug)]
pub(crate) struct JobRecord {
    pub id: u64,
    pub spec: JobSpec,
    pub phase: JobPhase,
    pub canceled: bool,
    /// Serialized engine state while preempted.
    pub snapshot: Option<Vec<u8>>,
    pub segments: u64,
    pub preemptions: u64,
    seq: u64,
    pub events: Vec<JobEvent>,
    /// The rendered JSON stream (events, then report/telemetry,
    /// then the final done/failed event).
    pub lines: Vec<String>,
    pub outcome: Option<Result<JobOutcome, JobError>>,
}

impl JobRecord {
    fn push_event(&mut self, ev: JobEvent) {
        self.lines.push(ev.to_json(self.id, self.seq));
        self.seq += 1;
        self.events.push(ev);
    }

    fn push_payload(&mut self, kind: &str, json: &str) {
        self.lines.push(format!(
            "{{\"job\": {}, \"seq\": {}, \"event\": \"{kind}\", \"payload\": {}}}",
            self.id,
            self.seq,
            one_line(json)
        ));
        self.seq += 1;
    }
}

/// Seals the record with its outcome, streaming the report /
/// telemetry payloads and the final lifecycle event.
pub(crate) fn finish(rec: &mut JobRecord, outcome: Result<JobOutcome, JobError>) {
    rec.phase = JobPhase::Finished;
    rec.snapshot = None;
    match &outcome {
        Ok(o) => {
            rec.push_payload("report", &o.report.to_json());
            if let Some(t) = &o.telemetry {
                rec.push_payload("telemetry", &t.to_json());
            }
            if let Some(b) = o.batch {
                rec.push_payload(
                    "batch",
                    &format!(
                        "{{\"lanes\": {}, \"deopt_lanes\": {}, \"converged_lanes\": {}}}",
                        b.lanes, b.deopt_lanes, b.converged_lanes
                    ),
                );
            }
            rec.push_event(JobEvent::Done {
                cycles: o.cycles,
                completed: o.completed,
                segments: o.segments,
                preemptions: o.preemptions,
            });
        }
        Err(e) => rec.push_event(JobEvent::Failed { error: e.clone() }),
    }
    rec.outcome = Some(outcome);
}

/// Picks up a queued or preempted job on worker `worker`: builds a
/// fresh engine (and opens its session) or revives the snapshot.
/// On failure the record is sealed with the typed error and `Err(())`
/// tells the caller to move on.
#[allow(clippy::result_unit_err)]
pub(crate) fn activate(rec: &mut JobRecord, worker: usize) -> Result<Box<dyn SimEngine>, ()> {
    if let Some(bytes) = rec.snapshot.take() {
        match restore_engine(rec.spec.engine, &bytes, rec.spec.telemetry) {
            Ok(engine) => {
                rec.phase = JobPhase::Running;
                rec.push_event(JobEvent::Resumed { worker });
                Ok(engine)
            }
            Err(e) => {
                finish(rec, Err(JobError::SnapshotCorrupt(e)));
                Err(())
            }
        }
    } else {
        match rec.spec.build_engine() {
            Ok(mut engine) => {
                rec.phase = JobPhase::Running;
                rec.push_event(JobEvent::Running { worker });
                engine.begin(rec.spec.max_cycles, rec.spec.no_progress_limit);
                Ok(engine)
            }
            Err(e) => {
                finish(rec, Err(JobError::Rejected(e)));
                Err(())
            }
        }
    }
}

/// Threaded-pool pickup: marks the record `Running`, emits the
/// `running`/`resumed` event, and hands back what engine
/// construction needs so the expensive build/replay can happen
/// outside the job-table lock.
pub(crate) fn pickup(rec: &mut JobRecord, worker: usize) -> (JobSpec, Option<Vec<u8>>) {
    let snapshot = rec.snapshot.take();
    rec.phase = JobPhase::Running;
    rec.push_event(if snapshot.is_some() {
        JobEvent::Resumed { worker }
    } else {
        JobEvent::Running { worker }
    });
    (rec.spec.clone(), snapshot)
}

/// What [`step_job`] tells the servicing worker to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StepResult {
    /// Keep stepping this job.
    Continue,
    /// Drop the engine: the record is now `Finished`, or `Preempted`
    /// (requeue it).
    Stop,
}

/// Runs exactly one supervised segment of `rec`'s live engine.
/// `contend` is whether other jobs are waiting — at a checkpoint
/// boundary under contention the job is snapshot-preempted. Deadline
/// and cancellation are checked at boundaries only, so the decision
/// points are identical whichever scheduler drives the job.
pub(crate) fn step_job(
    rec: &mut JobRecord,
    engine: &mut dyn SimEngine,
    contend: bool,
) -> StepResult {
    if rec.canceled {
        finish(rec, Err(JobError::Canceled));
        return StepResult::Stop;
    }
    let step = engine.step_segment();
    absorb_step(rec, engine, step, contend)
}

/// Records the outcome of one already-executed segment — split from
/// [`step_job`] so the threaded pool can run the (long) segment
/// outside the job-table lock and only take it for this bookkeeping.
pub(crate) fn absorb_step(
    rec: &mut JobRecord,
    engine: &mut dyn SimEngine,
    step: Result<SegmentStatus, craft_sim::SimError>,
    contend: bool,
) -> StepResult {
    match step {
        Err(e) => {
            rec.segments += 1;
            finish(rec, Err(JobError::from_sim(e)));
            StepResult::Stop
        }
        Ok(SegmentStatus::Done(r)) => {
            rec.segments += 1;
            let outcome = JobOutcome {
                cycles: r.cycles,
                completed: r.completed,
                segments: rec.segments,
                preemptions: rec.preemptions,
                report: engine.report(),
                telemetry: engine.telemetry_snapshot(),
                batch: engine.batch_report().map(|b| BatchSummary {
                    lanes: b.lanes.len(),
                    deopt_lanes: b.deopt_lanes,
                    converged_lanes: b.converged_lanes,
                }),
            };
            finish(rec, Ok(outcome));
            StepResult::Stop
        }
        Ok(SegmentStatus::Boundary) => {
            rec.segments += 1;
            if rec.canceled {
                finish(rec, Err(JobError::Canceled));
                return StepResult::Stop;
            }
            if let Some(deadline) = rec.spec.deadline_segments {
                if rec.segments >= deadline {
                    finish(rec, Err(JobError::DeadlineExceeded { deadline }));
                    return StepResult::Stop;
                }
            }
            if contend {
                let bytes = engine.snapshot_bytes();
                rec.preemptions += 1;
                rec.push_event(JobEvent::Preempted {
                    at_segment: rec.segments,
                    snapshot_bytes: bytes.len(),
                });
                rec.snapshot = Some(bytes);
                rec.phase = JobPhase::Preempted;
                StepResult::Stop
            } else {
                StepResult::Continue
            }
        }
    }
}

/// The shared job table: records plus the ready queue. Holds no
/// engine state, so the threaded pool can put it behind a mutex.
#[derive(Debug, Default)]
pub(crate) struct Core {
    pub jobs: Vec<JobRecord>,
    pub queue: VecDeque<usize>,
    pub draining: bool,
}

impl Core {
    pub fn submit(&mut self, spec: JobSpec) -> Result<u64, JobError> {
        spec.validate()?;
        let id = self.jobs.len() as u64;
        let mut rec = JobRecord {
            id,
            spec,
            phase: JobPhase::Queued,
            canceled: false,
            snapshot: None,
            segments: 0,
            preemptions: 0,
            seq: 0,
            events: Vec::new(),
            lines: Vec::new(),
            outcome: None,
        };
        rec.push_event(JobEvent::Queued);
        self.jobs.push(rec);
        self.queue.push_back(id as usize);
        Ok(id)
    }

    pub fn index(&self, id: u64) -> Result<usize, ServeError> {
        if (id as usize) < self.jobs.len() {
            Ok(id as usize)
        } else {
            Err(ServeError::UnknownJob(id))
        }
    }

    /// Requests cancellation: a queued/preempted job fails
    /// immediately; a running job fails at its next boundary; a
    /// finished job is left alone.
    pub fn cancel(&mut self, id: u64) -> Result<(), ServeError> {
        let idx = self.index(id)?;
        let rec = &mut self.jobs[idx];
        if rec.phase == JobPhase::Finished {
            return Ok(());
        }
        rec.canceled = true;
        if matches!(rec.phase, JobPhase::Queued | JobPhase::Preempted) {
            self.queue.retain(|&i| i != idx);
            finish(&mut self.jobs[idx], Err(JobError::Canceled));
        }
        Ok(())
    }

    pub fn stats(&self) -> ServeStats {
        let mut s = ServeStats {
            submitted: self.jobs.len() as u64,
            ..ServeStats::default()
        };
        for r in &self.jobs {
            s.segments += r.segments;
            s.preemptions += r.preemptions;
            match &r.outcome {
                Some(Ok(_)) => s.done += 1,
                Some(Err(_)) => s.failed += 1,
                None => {}
            }
        }
        s
    }
}

/// The deterministic in-process scheduler: same decisions as the
/// threaded pool, but single-threaded with `workers` virtual worker
/// slots driven in strict round-robin — one segment per slot per
/// turn. Used by the test suites so every assertion is about exact,
/// reproducible schedules (no wall clock anywhere).
pub struct DeterministicScheduler {
    core: Core,
    workers: usize,
}

impl DeterministicScheduler {
    /// A scheduler with `workers` virtual worker slots.
    ///
    /// # Panics
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> DeterministicScheduler {
        assert!(workers > 0, "need at least one worker slot");
        DeterministicScheduler {
            core: Core::default(),
            workers,
        }
    }

    /// Accepts a job into the queue (typed rejection on invalid
    /// shapes). Jobs run on the next [`DeterministicScheduler::run_until_idle`].
    pub fn submit(&mut self, spec: JobSpec) -> Result<u64, JobError> {
        self.core.submit(spec)
    }

    /// Requests cancellation of `id`.
    pub fn cancel(&mut self, id: u64) -> Result<(), ServeError> {
        self.core.cancel(id)
    }

    /// Drives every queued job to its outcome. Round-robin over the
    /// worker slots; a slot with no resident job activates the queue
    /// head (build or snapshot-restore), then every slot runs exactly
    /// one segment. At a boundary with other jobs waiting the
    /// resident job is preempted back to the queue tail.
    pub fn run_until_idle(&mut self) {
        let mut resident: Vec<Option<(usize, Box<dyn SimEngine>)>> =
            (0..self.workers).map(|_| None).collect();
        loop {
            let mut progress = false;
            for (w, slot) in resident.iter_mut().enumerate() {
                if slot.is_none() {
                    if let Some(idx) = self.core.queue.pop_front() {
                        progress = true;
                        let rec = &mut self.core.jobs[idx];
                        if let Ok(engine) = activate(rec, w) {
                            *slot = Some((idx, engine));
                        }
                    }
                }
                if let Some((idx, engine)) = slot {
                    progress = true;
                    let idx = *idx;
                    let contend = !self.core.queue.is_empty();
                    let rec = &mut self.core.jobs[idx];
                    if step_job(rec, engine.as_mut(), contend) == StepResult::Stop {
                        if rec.phase == JobPhase::Preempted {
                            self.core.queue.push_back(idx);
                        }
                        *slot = None;
                    }
                }
            }
            if !progress {
                break;
            }
        }
    }

    /// The job's outcome, if it has finished.
    pub fn outcome(&self, id: u64) -> Option<&Result<JobOutcome, JobError>> {
        self.core
            .index(id)
            .ok()
            .and_then(|i| self.core.jobs[i].outcome.as_ref())
    }

    /// The job's typed lifecycle events so far.
    pub fn events(&self, id: u64) -> &[JobEvent] {
        self.core
            .index(id)
            .map(|i| self.core.jobs[i].events.as_slice())
            .unwrap_or(&[])
    }

    /// The job's rendered JSON stream so far.
    pub fn lines(&self, id: u64) -> &[String] {
        self.core
            .index(id)
            .map(|i| self.core.jobs[i].lines.as_slice())
            .unwrap_or(&[])
    }

    /// Aggregate counters.
    pub fn stats(&self) -> ServeStats {
        self.core.stats()
    }
}
