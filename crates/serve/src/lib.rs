//! # craft-serve — simulation-as-a-service over the unified engine API
//!
//! ROADMAP item 3's payoff: the deterministic checkpoint/restore work
//! (PR 8) exists so the simulator can be a multi-tenant *service* —
//! many queued experiments sharing a bounded worker pool, long runs
//! preempted at [`craft_soc::SocConfig::checkpoint_every`] boundaries
//! and resumed under load, every result streamed back as validated
//! JSON. This crate is that server, built entirely on the
//! [`craft_soc::SimEngine`] seam so one scheduler serves all three
//! engines (sequential / GALS-sharded / batched-lockstep) without a
//! single per-engine match arm.
//!
//! Layers:
//!
//! * [`job`] — typed submissions ([`JobSpec`]), lifecycle events
//!   ([`JobEvent`]), and the [`JobError`]/[`ServeError`] taxonomy
//!   (rejection, cancellation, deadline, hang verdict, snapshot
//!   corruption).
//! * [`scheduler`] — the engine-free job table and the
//!   [`DeterministicScheduler`]: `W` virtual workers, strict
//!   round-robin, zero wall-clock — the mode every test asserts on.
//! * [`pool`] — [`ServePool`], the bounded thread pool with the same
//!   preemption policy (snapshot at a boundary whenever other jobs
//!   wait; the job migrates as bytes because engines are not `Send`).
//! * [`wire`] + [`server`] — the line protocol and the TCP front end
//!   behind the `sim_server` binary.
//!
//! The serving contract, pinned by proptests: a job that is
//! preempted and resumed any number of times produces a final
//! [`craft_soc::SocReport`] **bit-identical** to an uninterrupted run
//! of the same submission.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod job;
pub mod pool;
pub mod scheduler;
pub mod server;
pub mod wire;

pub use job::{JobError, JobEvent, JobSpec, ServeError, WorkloadId};
pub use pool::ServePool;
pub use scheduler::{BatchSummary, DeterministicScheduler, JobOutcome, JobPhase, ServeStats};
pub use server::SimServer;
pub use wire::{parse_request, parse_submit, Request};
