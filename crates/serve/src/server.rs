//! The TCP front end: one listener, one thread per connection,
//! requests and responses as single lines (see [`crate::wire`]).
//!
//! A `submit` request streams the job's full JSON event stream back
//! on the same connection — blocking tails of the job record's line
//! log — and leaves the connection open for the next request.
//! `shutdown` drains the pool and stops the accept loop.

use crate::job::ServeError;
use crate::pool::ServePool;
use crate::wire::{parse_request, Request};
use craftflow_core::json_escape;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A running simulation job server.
pub struct SimServer {
    listener: TcpListener,
    pool: Arc<ServePool>,
    stop: Arc<AtomicBool>,
}

fn error_line(e: &ServeError) -> String {
    format!(
        "{{\"event\": \"error\", \"detail\": \"{}\"}}",
        json_escape(&e.to_string())
    )
}

impl SimServer {
    /// Binds `addr` (port 0 picks an ephemeral port) and spawns a
    /// pool of `workers` worker threads.
    pub fn bind(addr: &str, workers: usize) -> Result<SimServer, ServeError> {
        let listener = TcpListener::bind(addr).map_err(|e| ServeError::Io(e.to_string()))?;
        Ok(SimServer {
            listener,
            pool: Arc::new(ServePool::new(workers)),
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (read the ephemeral port from here).
    pub fn local_addr(&self) -> Result<SocketAddr, ServeError> {
        self.listener
            .local_addr()
            .map_err(|e| ServeError::Io(e.to_string()))
    }

    /// Serves connections until a client sends `shutdown`; then
    /// drains the pool and returns.
    pub fn serve(self) -> Result<(), ServeError> {
        let addr = self.local_addr()?;
        let mut conns = Vec::new();
        for stream in self.listener.incoming() {
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let pool = Arc::clone(&self.pool);
            let stop = Arc::clone(&self.stop);
            conns.push(std::thread::spawn(move || {
                let _ = handle_conn(stream, &pool, &stop, addr);
            }));
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
        }
        for c in conns {
            let _ = c.join();
        }
        Ok(())
    }

    /// Signals the accept loop to stop (used by the `shutdown`
    /// request handler; a no-op connection unblocks `accept`).
    fn request_stop(stop: &AtomicBool, addr: SocketAddr) {
        stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(addr);
    }
}

fn handle_conn(
    stream: TcpStream,
    pool: &ServePool,
    stop: &AtomicBool,
    addr: SocketAddr,
) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match parse_request(&line) {
            Err(e) => writeln!(writer, "{}", error_line(&e))?,
            Ok(Request::Stats) => writeln!(writer, "{}", pool.stats().to_json())?,
            Ok(Request::Cancel(id)) => match pool.cancel(id) {
                Ok(()) => writeln!(writer, "{{\"event\": \"cancel_requested\", \"job\": {id}}}")?,
                Err(e) => writeln!(writer, "{}", error_line(&e))?,
            },
            Ok(Request::Shutdown) => {
                writeln!(writer, "{{\"event\": \"shutting_down\"}}")?;
                SimServer::request_stop(stop, addr);
                break;
            }
            Ok(Request::Submit(spec)) => match pool.submit(spec) {
                Err(e) => writeln!(writer, "{}", error_line(&e))?,
                Ok(id) => {
                    // Tail the job's line log until the stream seals.
                    let mut cursor = 0usize;
                    loop {
                        let (lines, finished) = match pool.lines_from(id, cursor) {
                            Ok(r) => r,
                            Err(e) => {
                                writeln!(writer, "{}", error_line(&e))?;
                                break;
                            }
                        };
                        cursor += lines.len();
                        for l in lines {
                            writeln!(writer, "{l}")?;
                        }
                        if finished {
                            break;
                        }
                    }
                }
            },
        }
        writer.flush()?;
    }
    Ok(())
}
