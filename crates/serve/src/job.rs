//! Typed job submissions, lifecycle events, and error taxonomy.
//!
//! A [`JobSpec`] is everything a client submits: which workload, the
//! [`SocConfig`], the fault vector(s), the engine choice, run limits
//! and an optional deadline (counted in scheduler segments, never
//! wall clock, so deterministic-mode tests stay clock-free). The
//! scheduler turns a spec into a live engine with
//! [`JobSpec::build_engine`]; everything it streams back to the
//! client is a [`JobEvent`] rendered as one validated JSON line.

use craft_sim::checkpoint::CheckpointError;
use craft_sim::SimError;
use craft_soc::workloads::{self, orchestrator_program, table_words, Workload};
use craft_soc::{build_engine, EngineError, EngineKind, LaneSpec, SimEngine, SocConfig};
use craftflow_core::json_escape;
use std::fmt;

/// The built-in workloads a job may request — the six Fig. 6 SoC
/// tests plus the two extended kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum WorkloadId {
    VecMul,
    DotProduct,
    Reduction,
    Conv1d,
    KmeansAssign,
    Matvec,
    Conv1dHeavy,
    VecAddScale,
}

impl WorkloadId {
    /// Every servable workload, in wire-name order.
    pub const ALL: [WorkloadId; 8] = [
        WorkloadId::VecMul,
        WorkloadId::DotProduct,
        WorkloadId::Reduction,
        WorkloadId::Conv1d,
        WorkloadId::KmeansAssign,
        WorkloadId::Matvec,
        WorkloadId::Conv1dHeavy,
        WorkloadId::VecAddScale,
    ];

    /// The stable wire name (`vec_mul`, `dot_product`, ...).
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadId::VecMul => "vec_mul",
            WorkloadId::DotProduct => "dot_product",
            WorkloadId::Reduction => "reduction",
            WorkloadId::Conv1d => "conv1d",
            WorkloadId::KmeansAssign => "kmeans_assign",
            WorkloadId::Matvec => "matvec",
            WorkloadId::Conv1dHeavy => "conv1d_heavy",
            WorkloadId::VecAddScale => "vec_add_scale",
        }
    }

    /// Parses the wire name.
    pub fn parse(s: &str) -> Option<WorkloadId> {
        WorkloadId::ALL.into_iter().find(|w| w.name() == s)
    }

    /// Materializes the workload (command table, memory images,
    /// expected results).
    pub fn workload(&self) -> Workload {
        match self {
            WorkloadId::VecMul => workloads::vec_mul(),
            WorkloadId::DotProduct => workloads::dot_product(),
            WorkloadId::Reduction => workloads::reduction(),
            WorkloadId::Conv1d => workloads::conv1d(),
            WorkloadId::KmeansAssign => workloads::kmeans_assign(),
            WorkloadId::Matvec => workloads::matvec(),
            WorkloadId::Conv1dHeavy => workloads::conv1d_heavy(),
            WorkloadId::VecAddScale => workloads::vec_add_scale(),
        }
    }
}

impl fmt::Display for WorkloadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One typed job submission. `Send`-safe by construction (plain data,
/// no engine state), so specs cross worker threads freely even though
/// the engines they build cannot.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Which workload to run.
    pub workload: WorkloadId,
    /// Full SoC configuration — [`SocConfig::checkpoint_every`] is
    /// also the preemption grain.
    pub cfg: SocConfig,
    /// Engine choice.
    pub engine: EngineKind,
    /// Fault vectors: injected into the one simulation for the
    /// sequential/parallel engines, one lockstep lane each for the
    /// batch engine.
    pub faults: Vec<LaneSpec>,
    /// Total hub-cycle budget.
    pub max_cycles: u64,
    /// Watchdog no-progress limit.
    pub no_progress_limit: u64,
    /// Deadline in scheduler segments (each at most
    /// `checkpoint_every` cycles): a job still unfinished after this
    /// many segments fails with [`JobError::DeadlineExceeded`].
    /// `None` = no deadline.
    pub deadline_segments: Option<u64>,
    /// Attach a telemetry sink and stream the final
    /// [`craft_sim::TelemetrySnapshot`].
    pub telemetry: bool,
}

impl JobSpec {
    /// A minimal spec: `workload` on `engine` with the default
    /// config, no faults, generous limits, no deadline.
    pub fn new(workload: WorkloadId, engine: EngineKind) -> JobSpec {
        JobSpec {
            workload,
            cfg: SocConfig::default(),
            engine,
            faults: Vec::new(),
            max_cycles: 8_000_000,
            no_progress_limit: 50_000,
            deadline_segments: None,
            telemetry: false,
        }
    }

    /// Cheap submission-time validation (config, engine shape) —
    /// the rejection half of [`JobError`]; expensive failures
    /// (pattern matches no channel) surface when the job is built on
    /// a worker.
    pub fn validate(&self) -> Result<(), JobError> {
        self.cfg
            .validate()
            .map_err(|e| JobError::Rejected(EngineError::Config(e)))?;
        match self.engine {
            EngineKind::Parallel { threads } if !matches!(threads, 1 | 2 | 4 | 8) => {
                return Err(JobError::Rejected(EngineError::BadThreads(threads)));
            }
            EngineKind::ParallelAuto { threads }
                if !(1..=craft_soc::MAX_SHARDS).contains(&threads) =>
            {
                return Err(JobError::Rejected(EngineError::BadThreads(threads)));
            }
            EngineKind::ParallelSpec { spec } => {
                // Structural validity is guaranteed by construction;
                // the LI-boundary property depends on the submitted
                // config.
                spec.validate_for(&self.cfg)
                    .map_err(|e| JobError::Rejected(EngineError::BadPartition(e)))?;
            }
            _ => {}
        }
        if self.engine == EngineKind::Batch && self.faults.is_empty() {
            return Err(JobError::Rejected(EngineError::EmptyBatch));
        }
        if self.max_cycles == 0 || self.no_progress_limit == 0 {
            return Err(JobError::BadLimits);
        }
        Ok(())
    }

    /// Builds a fresh engine for this spec (workload materialization
    /// + fault injection), without opening a session.
    pub fn build_engine(&self) -> Result<Box<dyn SimEngine>, EngineError> {
        let wl = self.workload.workload();
        build_engine(
            self.engine,
            self.cfg,
            &orchestrator_program(),
            &table_words(&wl.entries),
            &wl.gmem_init,
            &self.faults,
            self.telemetry,
        )
    }
}

/// Why one job failed — the typed verdicts the server streams in a
/// `failed` event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The submission was rejected before (or while) building.
    Rejected(EngineError),
    /// Zero cycle budget or zero watchdog limit.
    BadLimits,
    /// The client canceled the job.
    Canceled,
    /// The job was still unfinished after its
    /// [`JobSpec::deadline_segments`] scheduler segments.
    DeadlineExceeded {
        /// The deadline that was exceeded.
        deadline: u64,
    },
    /// The watchdog diagnosed a hang; `detail` carries the full
    /// [`craft_sim::HangReport`] rendering.
    Hung {
        /// Reference-clock cycle when the watchdog fired.
        cycle: u64,
        /// Rendered hang diagnosis.
        detail: String,
    },
    /// A non-hang simulation error (time overflow etc.).
    Sim(String),
    /// A preemption snapshot failed to restore — corruption or
    /// replay divergence.
    SnapshotCorrupt(CheckpointError),
}

impl JobError {
    /// Folds a [`SimError`] into the job taxonomy, keeping the hang
    /// verdict distinct.
    pub fn from_sim(e: SimError) -> JobError {
        match e {
            SimError::Hang { cycle, .. } => JobError::Hung {
                cycle,
                detail: format!("{e:?}"),
            },
            other => JobError::Sim(format!("{other:?}")),
        }
    }

    /// Short stable verdict tag for the wire (`rejected`, `canceled`,
    /// `deadline`, `hung`, `sim`, `snapshot_corrupt`).
    pub fn verdict(&self) -> &'static str {
        match self {
            JobError::Rejected(_) | JobError::BadLimits => "rejected",
            JobError::Canceled => "canceled",
            JobError::DeadlineExceeded { .. } => "deadline",
            JobError::Hung { .. } => "hung",
            JobError::Sim(_) => "sim",
            JobError::SnapshotCorrupt(_) => "snapshot_corrupt",
        }
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Rejected(e) => write!(f, "rejected: {e}"),
            JobError::BadLimits => f.write_str("rejected: zero cycle budget or watchdog limit"),
            JobError::Canceled => f.write_str("canceled by client"),
            JobError::DeadlineExceeded { deadline } => {
                write!(f, "deadline of {deadline} segments exceeded")
            }
            JobError::Hung { cycle, .. } => write!(f, "hang diagnosed at cycle {cycle}"),
            JobError::Sim(e) => write!(f, "simulation error: {e}"),
            JobError::SnapshotCorrupt(e) => write!(f, "snapshot failed to restore: {e:?}"),
        }
    }
}

impl std::error::Error for JobError {}

/// Server-level errors (not tied to one job's run).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// No job with that id.
    UnknownJob(u64),
    /// A malformed wire request.
    BadRequest(String),
    /// The server is draining and accepts no new work.
    ShuttingDown,
    /// Socket/O error, rendered.
    Io(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownJob(id) => write!(f, "unknown job {id}"),
            ServeError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServeError::ShuttingDown => f.write_str("server is shutting down"),
            ServeError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One job lifecycle transition, streamed to the client as a JSON
/// line: queued → running → (preempted → resumed)* → done | failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobEvent {
    /// Accepted into the queue.
    Queued,
    /// First pickup by a worker.
    Running {
        /// Worker slot index.
        worker: usize,
    },
    /// Preempted at a checkpoint boundary; the run state now lives
    /// only in the serialized snapshot.
    Preempted {
        /// Hub cycles consumed so far.
        at_segment: u64,
        /// Size of the serialized snapshot.
        snapshot_bytes: usize,
    },
    /// Revived from its snapshot by a worker.
    Resumed {
        /// Worker slot index.
        worker: usize,
    },
    /// Finished cleanly (the `report` line precedes this event).
    Done {
        /// Blended whole-run hub cycles.
        cycles: u64,
        /// Whether the halt predicate fired (vs budget exhaustion).
        completed: bool,
        /// Scheduler segments executed.
        segments: u64,
        /// Times the job was preempted.
        preemptions: u64,
    },
    /// Finished with a typed verdict.
    Failed {
        /// The failure.
        error: JobError,
    },
}

impl JobEvent {
    /// Stable wire tag.
    pub fn tag(&self) -> &'static str {
        match self {
            JobEvent::Queued => "queued",
            JobEvent::Running { .. } => "running",
            JobEvent::Preempted { .. } => "preempted",
            JobEvent::Resumed { .. } => "resumed",
            JobEvent::Done { .. } => "done",
            JobEvent::Failed { .. } => "failed",
        }
    }

    /// Renders the event as one JSON object line for job `job`,
    /// sequence number `seq`.
    pub fn to_json(&self, job: u64, seq: u64) -> String {
        let head = format!(
            "{{\"job\": {job}, \"seq\": {seq}, \"event\": \"{}\"",
            self.tag()
        );
        match self {
            JobEvent::Queued => format!("{head}}}"),
            JobEvent::Running { worker } | JobEvent::Resumed { worker } => {
                format!("{head}, \"worker\": {worker}}}")
            }
            JobEvent::Preempted {
                at_segment,
                snapshot_bytes,
            } => format!(
                "{head}, \"at_segment\": {at_segment}, \"snapshot_bytes\": {snapshot_bytes}}}"
            ),
            JobEvent::Done {
                cycles,
                completed,
                segments,
                preemptions,
            } => format!(
                "{head}, \"cycles\": {cycles}, \"completed\": {completed}, \
                 \"segments\": {segments}, \"preemptions\": {preemptions}}}"
            ),
            JobEvent::Failed { error } => format!(
                "{head}, \"verdict\": \"{}\", \"detail\": \"{}\"}}",
                error.verdict(),
                json_escape(&error.to_string())
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use craftflow_core::validate_json;

    #[test]
    fn workload_names_round_trip() {
        for w in WorkloadId::ALL {
            assert_eq!(WorkloadId::parse(w.name()), Some(w));
        }
        assert_eq!(WorkloadId::parse("nope"), None);
    }

    #[test]
    fn every_event_renders_valid_json() {
        let events = [
            JobEvent::Queued,
            JobEvent::Running { worker: 1 },
            JobEvent::Preempted {
                at_segment: 3,
                snapshot_bytes: 4096,
            },
            JobEvent::Resumed { worker: 0 },
            JobEvent::Done {
                cycles: 12345,
                completed: true,
                segments: 7,
                preemptions: 2,
            },
            JobEvent::Failed {
                error: JobError::Hung {
                    cycle: 99,
                    detail: "stuck \"here\"\nand there".to_string(),
                },
            },
        ];
        for (seq, ev) in events.iter().enumerate() {
            let line = ev.to_json(42, seq as u64);
            validate_json(&line).unwrap_or_else(|e| panic!("{e} in {line}"));
        }
    }

    #[test]
    fn submission_validation_rejects_bad_shapes() {
        let mut spec = JobSpec::new(WorkloadId::VecMul, EngineKind::Parallel { threads: 3 });
        assert!(matches!(
            spec.validate(),
            Err(JobError::Rejected(EngineError::BadThreads(3)))
        ));
        spec.engine = EngineKind::Batch;
        assert!(matches!(
            spec.validate(),
            Err(JobError::Rejected(EngineError::EmptyBatch))
        ));
        spec.engine = EngineKind::Soc;
        assert!(spec.validate().is_ok());
    }
}
