//! The bounded threaded worker pool — the production scheduler
//! behind [`crate::server`] and the `serve_throughput` bench.
//!
//! `N` OS worker threads share one mutex-guarded job table
//! (the crate-private `Core` in the scheduler module); each worker
//! builds or restores its engine
//! and runs segments **outside** the lock, taking it only at segment
//! boundaries to record progress and make the preemption decision.
//! The policy is identical to [`crate::DeterministicScheduler`]:
//! preempt at a checkpoint boundary whenever other jobs wait. Only
//! the interleaving differs (real threads instead of round-robin),
//! which is exactly why the bit-identity proptests run both.

use crate::job::{JobError, JobSpec, ServeError};
use crate::scheduler::{absorb_step, finish, Core, JobOutcome, JobPhase, ServeStats, StepResult};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

struct Shared {
    core: Mutex<Core>,
    /// Signals both idle workers (queue work) and waiting clients
    /// (new stream lines / outcomes).
    cv: Condvar,
}

/// A bounded pool of `N` worker threads serving jobs from a shared
/// queue with snapshot-based preemption.
pub struct ServePool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ServePool {
    /// Spawns `workers` worker threads (at least one).
    pub fn new(workers: usize) -> ServePool {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            core: Mutex::new(Core::default()),
            cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn worker thread")
            })
            .collect();
        ServePool {
            shared,
            workers: handles,
        }
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Accepts a job (typed rejection on invalid shapes; refused
    /// while draining) and wakes an idle worker.
    pub fn submit(&self, spec: JobSpec) -> Result<u64, ServeError> {
        let mut core = self.lock();
        if core.draining {
            return Err(ServeError::ShuttingDown);
        }
        let id = core
            .submit(spec)
            .map_err(|e| ServeError::BadRequest(e.to_string()))?;
        self.shared.cv.notify_all();
        Ok(id)
    }

    /// Requests cancellation of `id`.
    pub fn cancel(&self, id: u64) -> Result<(), ServeError> {
        let mut core = self.lock();
        let res = core.cancel(id);
        self.shared.cv.notify_all();
        res
    }

    /// Blocks until job `id` finishes, returning its outcome.
    pub fn wait(&self, id: u64) -> Result<Result<JobOutcome, JobError>, ServeError> {
        let mut core = self.lock();
        let idx = core.index(id)?;
        loop {
            if let Some(outcome) = &core.jobs[idx].outcome {
                return Ok(outcome.clone());
            }
            core = self.shared.cv.wait(core).expect("job table lock");
        }
    }

    /// Blocks until job `id` has stream lines past `cursor` (or has
    /// finished), returning the new lines and whether the stream is
    /// complete. Drive with a cursor to tail a job's JSON stream.
    pub fn lines_from(&self, id: u64, cursor: usize) -> Result<(Vec<String>, bool), ServeError> {
        let mut core = self.lock();
        let idx = core.index(id)?;
        loop {
            let rec = &core.jobs[idx];
            let finished = rec.outcome.is_some();
            if rec.lines.len() > cursor || finished {
                return Ok((rec.lines[cursor.min(rec.lines.len())..].to_vec(), finished));
            }
            core = self.shared.cv.wait(core).expect("job table lock");
        }
    }

    /// Aggregate counters.
    pub fn stats(&self) -> ServeStats {
        self.lock().stats()
    }

    /// Stops accepting jobs, fails everything still queued with
    /// [`JobError::Canceled`], lets running jobs finish their current
    /// segment, and joins the workers.
    pub fn shutdown(mut self) -> ServeStats {
        {
            let mut core = self.lock();
            core.draining = true;
            while let Some(idx) = core.queue.pop_front() {
                let rec = &mut core.jobs[idx];
                if rec.outcome.is_none() {
                    finish(rec, Err(JobError::Canceled));
                }
            }
            self.shared.cv.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        self.lock().stats()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Core> {
        self.shared.core.lock().expect("job table lock poisoned")
    }
}

impl Drop for ServePool {
    fn drop(&mut self) {
        let mut core = self.lock();
        core.draining = true;
        self.shared.cv.notify_all();
        drop(core);
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, worker: usize) {
    loop {
        // Claim the next ready job (or exit when draining).
        let idx = {
            let mut core = shared.core.lock().expect("job table lock poisoned");
            loop {
                if let Some(idx) = core.queue.pop_front() {
                    break idx;
                }
                if core.draining {
                    return;
                }
                core = shared.cv.wait(core).expect("job table lock");
            }
        };

        // Record the pickup and copy what engine construction needs,
        // then build/restore outside the lock (replay is expensive).
        let (spec, snapshot) = {
            let mut core = shared.core.lock().expect("job table lock poisoned");
            let rec = &mut core.jobs[idx];
            if rec.canceled {
                finish(rec, Err(JobError::Canceled));
                shared.cv.notify_all();
                continue;
            }
            let prepared = crate::scheduler::pickup(rec, worker);
            shared.cv.notify_all();
            prepared
        };
        let built = match snapshot {
            Some(bytes) => craft_soc::restore_engine(spec.engine, &bytes, spec.telemetry)
                .map_err(JobError::SnapshotCorrupt),
            None => spec
                .build_engine()
                .map_err(JobError::Rejected)
                .map(|mut e| {
                    e.begin(spec.max_cycles, spec.no_progress_limit);
                    e
                }),
        };
        let mut engine = match built {
            Ok(e) => e,
            Err(err) => {
                let mut core = shared.core.lock().expect("job table lock poisoned");
                finish(&mut core.jobs[idx], Err(err));
                shared.cv.notify_all();
                continue;
            }
        };

        // Service segments: step unlocked, account under the lock.
        loop {
            let cancel_now = {
                let core = shared.core.lock().expect("job table lock poisoned");
                core.jobs[idx].canceled
            };
            let step = if cancel_now {
                // Absorbed below as an immediate cancellation.
                None
            } else {
                Some(engine.step_segment())
            };
            let mut core = shared.core.lock().expect("job table lock poisoned");
            let contend = !core.queue.is_empty();
            let rec = &mut core.jobs[idx];
            let result = match step {
                None => {
                    finish(rec, Err(JobError::Canceled));
                    StepResult::Stop
                }
                Some(step) => absorb_step(rec, engine.as_mut(), step, contend),
            };
            if result == StepResult::Stop {
                if rec.phase == JobPhase::Preempted {
                    core.queue.push_back(idx);
                }
                shared.cv.notify_all();
                break;
            }
            shared.cv.notify_all();
        }
    }
}
