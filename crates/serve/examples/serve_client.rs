//! `serve_client` — reference client for `sim_server`.
//!
//! ```text
//! serve_client --port N [--preempt-demo] [--shutdown]
//! ```
//!
//! Default mode submits one `vec_mul` job and prints its JSON stream.
//! `--preempt-demo` is the CI smoke: two checkpointed jobs contend
//! for a smaller pool until at least one checkpoint-boundary
//! preemption is observed; both must resume and finish clean — and
//! **every** line the server streams must pass `validate_json`.
//! `--shutdown` sends the shutdown request at the end.

use craftflow_core::validate_json;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;

struct Stream {
    lines: Vec<String>,
}

/// Sends one request line and collects the response stream until the
/// job's terminal event (or one line for non-submit requests).
fn roundtrip(port: u16, request: &str, until_terminal: bool) -> Result<Stream, String> {
    let stream = TcpStream::connect(("127.0.0.1", port)).map_err(|e| e.to_string())?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    writeln!(writer, "{request}").map_err(|e| e.to_string())?;
    let reader = BufReader::new(stream);
    let mut lines = Vec::new();
    for line in reader.lines() {
        let line = line.map_err(|e| e.to_string())?;
        validate_json(&line).map_err(|e| format!("invalid JSON from server: {e}\n{line}"))?;
        let terminal = line.contains("\"event\": \"done\"")
            || line.contains("\"event\": \"failed\"")
            || line.contains("\"event\": \"error\"");
        lines.push(line);
        if !until_terminal || terminal {
            break;
        }
    }
    Ok(Stream { lines })
}

fn expect_events(stream: &Stream, wanted: &[&str]) -> Result<(), String> {
    for tag in wanted {
        let needle = format!("\"event\": \"{tag}\"");
        if !stream.lines.iter().any(|l| l.contains(&needle)) {
            return Err(format!(
                "missing {tag:?} event in stream:\n{}",
                stream.lines.join("\n")
            ));
        }
    }
    Ok(())
}

/// Extracts an integer field from a single-line stats JSON object.
fn stat_field(line: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\": ");
    let rest = &line[line.find(&tag)? + tag.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Reads the server's stats line and returns `(submitted, done+failed)`.
fn poll_stats(port: u16) -> Result<(u64, u64), String> {
    let stats = roundtrip(port, "stats", false)?;
    let line = stats.lines.join("");
    let submitted = stat_field(&line, "submitted").unwrap_or(0);
    let finished =
        stat_field(&line, "done").unwrap_or(0) + stat_field(&line, "failed").unwrap_or(0);
    Ok((submitted, finished))
}

/// One attempt at forcing contention: submit the heavy job, hold the
/// light job until the server's stats show the heavy job in flight,
/// then submit it. Returns `None` when the heavy job finished before
/// contention could be established (jobs are millisecond-scale, so
/// this can race) — the caller retries. Every streamed line is still
/// JSON-validated either way.
fn preempt_round(port: u16) -> Result<Option<(Stream, Stream)>, String> {
    let heavy = "submit workload=conv1d_heavy engine=soc checkpoint_every=150 telemetry=1";
    let light = "submit workload=vec_mul engine=soc checkpoint_every=300 telemetry=1";
    let (base_submitted, base_finished) = poll_stats(port)?;
    let a = std::thread::spawn(move || roundtrip(port, heavy, true));
    let mut in_flight = false;
    for _ in 0..500 {
        let (submitted, finished) = poll_stats(port)?;
        if finished > base_finished {
            break; // the heavy job already finished; contention lost
        }
        if submitted > base_submitted {
            in_flight = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    if !in_flight {
        a.join().map_err(|_| "client thread panicked")??;
        return Ok(None);
    }
    let b = std::thread::spawn(move || roundtrip(port, light, true));
    let a = a.join().map_err(|_| "client thread panicked")??;
    let b = b.join().map_err(|_| "client thread panicked")??;
    Ok(Some((a, b)))
}

fn preempt_demo(port: u16) -> Result<(), String> {
    // Two checkpointed jobs on a pool with fewer workers than jobs:
    // the contention policy must preempt at checkpoint boundaries and
    // resume from snapshots. A single round can lose the race against
    // a millisecond-scale job, so retry bounded rounds until one
    // catches the heavy job in flight AND observes a preemption; the
    // lifecycle invariants are asserted on every round that contends.
    const ROUNDS: usize = 25;
    for round in 1..=ROUNDS {
        let Some((a, b)) = preempt_round(port)? else {
            continue;
        };
        let mut preempts = 0usize;
        for (name, s) in [("job A", &a), ("job B", &b)] {
            expect_events(s, &["queued", "running", "report", "telemetry", "done"])
                .map_err(|e| format!("{name}: {e}"))?;
            if !s.lines.iter().any(|l| l.contains("\"completed\": true")) {
                return Err(format!("{name} did not complete:\n{}", s.lines.join("\n")));
            }
            let preempted = s
                .lines
                .iter()
                .filter(|l| l.contains("\"event\": \"preempted\""))
                .count();
            let resumed = s
                .lines
                .iter()
                .filter(|l| l.contains("\"event\": \"resumed\""))
                .count();
            if preempted != resumed {
                return Err(format!("{name}: unbalanced preempt/resume"));
            }
            preempts += preempted;
        }
        if preempts > 0 {
            println!(
                "preempt demo ok: {} + {} stream lines, {preempts} preemptions \
                 (round {round}), all JSON valid",
                a.lines.len(),
                b.lines.len()
            );
            return Ok(());
        }
    }
    Err(format!("no preemption observed in {ROUNDS} rounds"))
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let port = args
        .iter()
        .position(|a| a == "--port")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<u16>().ok())
        .ok_or("usage: serve_client --port N [--preempt-demo] [--shutdown]")?;
    if args.iter().any(|a| a == "--preempt-demo") {
        preempt_demo(port)?;
    } else {
        let s = roundtrip(
            port,
            "submit workload=vec_mul engine=soc checkpoint_every=500",
            true,
        )?;
        for l in &s.lines {
            println!("{l}");
        }
        expect_events(&s, &["queued", "running", "report", "done"])?;
    }
    let stats = roundtrip(port, "stats", false)?;
    println!("server stats: {}", stats.lines.join(""));
    if args.iter().any(|a| a == "--shutdown") {
        roundtrip(port, "shutdown", false)?;
        println!("shutdown requested");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve_client: {e}");
            ExitCode::FAILURE
        }
    }
}
