//! Property test for the reliable LI transport: under *any* stall
//! schedule and *any* recoverable fault schedule
//! (`FaultConfig::is_recoverable`), a `reliable_link` delivers the
//! bit-identical message stream a bare channel would deliver — same
//! values, same order, nothing lost, nothing invented. Latency is the
//! only observable difference, which is exactly the latency-insensitive
//! contract.
//!
//! Also pins the watchdog half of the story: an *unrecoverable* fault
//! (permanently stuck valid) must surface as `SimError::Hang` with a
//! populated per-component / per-channel diagnosis, not as an infinite
//! run.

use craft_connections::{
    channel, reliable_link, ChannelKind, FaultConfig, In, Out, ReliableConfig, StallInjector,
};
use craft_sim::{ClockSpec, Component, Picoseconds, SimError, Simulator, TickCtx};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// Pushes a fixed value sequence as fast as backpressure allows.
struct Producer {
    out: Out<u32>,
    values: Vec<u32>,
    idx: usize,
}

impl Component for Producer {
    fn name(&self) -> &str {
        "producer"
    }
    fn tick(&mut self, _ctx: &mut TickCtx<'_>) {
        if self.idx < self.values.len() && self.out.push_nb(self.values[self.idx]).is_ok() {
            self.idx += 1;
        }
    }
}

/// Collects everything that arrives.
struct Sink {
    input: In<u32>,
    log: Rc<RefCell<Vec<u32>>>,
}

impl Component for Sink {
    fn name(&self) -> &str {
        "sink"
    }
    fn tick(&mut self, _ctx: &mut TickCtx<'_>) {
        while let Some(v) = self.input.pop_nb() {
            self.log.borrow_mut().push(v);
        }
    }
}

/// Per-case perturbation schedule for one run.
#[derive(Debug, Clone, Copy)]
struct Perturb {
    data_stall: f64,
    ack_stall: f64,
    data_fault: FaultConfig,
    ack_flip: f64,
    seed: u64,
}

/// Producer -> src -> reliable link -> dst -> sink, perturbed per
/// `Perturb`; `None` runs the bare reference (src wired straight to
/// the sink) whose delivered stream is the contract's ground truth.
fn run_stream(values: &[u32], cfg: ReliableConfig, depth: usize, p: Option<Perturb>) -> Vec<u32> {
    let mut sim = Simulator::new();
    let clk = sim.add_clock(ClockSpec::new("clk", Picoseconds::from_ghz(1.0)));
    let (src_tx, src_rx, src_h) = channel::<u32>("src", ChannelKind::Buffer(depth));
    sim.add_sequential(clk, src_h.sequential());
    sim.add_component(
        clk,
        Producer {
            out: src_tx,
            values: values.to_vec(),
            idx: 0,
        },
    );

    let log = Rc::new(RefCell::new(Vec::new()));
    match p {
        None => {
            sim.add_component(
                clk,
                Sink {
                    input: src_rx,
                    log: Rc::clone(&log),
                },
            );
        }
        Some(p) => {
            let (dst_tx, dst_rx, dst_h) = channel::<u32>("dst", ChannelKind::Buffer(depth));
            sim.add_sequential(clk, dst_h.sequential());
            let link = reliable_link(
                "rl",
                cfg,
                src_rx,
                dst_tx,
                ChannelKind::Buffer(depth),
                ChannelKind::Buffer(depth),
            );
            link.data
                .inject_stalls(StallInjector::bernoulli(p.data_stall, p.seed));
            link.ack
                .inject_stalls(StallInjector::bernoulli(p.ack_stall, p.seed ^ 1));
            link.data.inject_faults(p.data_fault, p.seed ^ 2);
            // Ack corruption is recoverable too: a mangled cumulative
            // ack is discarded by checksum, never trusted.
            link.ack
                .inject_faults(FaultConfig::bit_flip(p.ack_flip), p.seed ^ 3);
            let reg = link.register(&mut sim, clk);
            reg.data.set_progress_token(sim.progress_token());
            reg.ack.set_progress_token(sim.progress_token());
            sim.add_component(
                clk,
                Sink {
                    input: dst_rx,
                    log: Rc::clone(&log),
                },
            );
        }
    }

    let want = values.len();
    let done_log = Rc::clone(&log);
    let finished = sim
        .run_until_checked(clk, 200_000, 25_000, move || {
            done_log.borrow().len() >= want
        })
        .expect("recoverable schedules must never hang");
    assert!(finished, "cycle budget exhausted before delivery");
    let out = log.borrow().clone();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The LI-preservation contract: arbitrary payloads through
    /// arbitrary stall + recoverable-fault schedules arrive as the
    /// bit-identical stream of the bare channel.
    #[test]
    fn reliable_link_preserves_the_bare_stream(
        values in prop::collection::vec(any::<u32>(), 1..30),
        window in 1usize..8,
        timeout in 4u64..32,
        depth in 1usize..4,
        data_stall in 0.0f64..0.6,
        ack_stall in 0.0f64..0.6,
        flip in 0.0f64..0.35,
        drop in 0.0f64..0.35,
        dup in 0.0f64..0.35,
        ack_flip in 0.0f64..0.35,
        seed in 0u64..1_000_000,
    ) {
        let cfg = ReliableConfig { window, timeout };
        let fault = FaultConfig {
            bit_flip: flip,
            drop,
            duplicate: dup,
            ..FaultConfig::default()
        };
        prop_assert!(fault.is_recoverable());
        let bare = run_stream(&values, cfg, depth, None);
        prop_assert_eq!(&bare, &values, "bare channel is lossless");
        let wrapped = run_stream(&values, cfg, depth, Some(Perturb {
            data_stall,
            ack_stall,
            data_fault: fault,
            ack_flip,
            seed,
        }));
        prop_assert_eq!(&wrapped, &bare, "wrapped stream diverged");
    }
}

/// Seeded unrecoverable case: a permanently stuck `valid` on the data
/// channel starves the link; the watchdog must convert the would-be
/// infinite run into a typed hang whose report names the wedged
/// channel (occupied, pending) and the endpoints' wait reasons.
#[test]
fn stuck_fault_hangs_with_populated_diagnosis() {
    let mut sim = Simulator::new();
    let clk = sim.add_clock(ClockSpec::new("clk", Picoseconds::from_ghz(1.0)));
    let (src_tx, src_rx, src_h) = channel::<u32>("src", ChannelKind::Buffer(4));
    let (dst_tx, dst_rx, dst_h) = channel::<u32>("dst", ChannelKind::Buffer(4));
    sim.add_sequential(clk, src_h.sequential());
    sim.add_sequential(clk, dst_h.sequential());
    sim.add_component(
        clk,
        Producer {
            out: src_tx,
            values: (0..16).collect(),
            idx: 0,
        },
    );
    let link = reliable_link(
        "rl",
        ReliableConfig::default(),
        src_rx,
        dst_tx,
        ChannelKind::Buffer(2),
        ChannelKind::Buffer(2),
    );
    link.data.inject_faults(FaultConfig::stuck_valid(10), 0);
    let reg = link.register(&mut sim, clk);
    reg.data.set_progress_token(sim.progress_token());
    reg.ack.set_progress_token(sim.progress_token());
    let log = Rc::new(RefCell::new(Vec::new()));
    sim.add_component(
        clk,
        Sink {
            input: dst_rx,
            log: Rc::clone(&log),
        },
    );

    let done_log = Rc::clone(&log);
    let err = sim
        .run_until_checked(clk, 100_000, 256, move || done_log.borrow().len() >= 16)
        .expect_err("stuck valid must be detected as a hang");
    let SimError::Hang { report, cycle, .. } = &err else {
        panic!("expected Hang, got {err}");
    };
    assert!(*cycle < 10_000, "detection latency bounded by the limit");
    assert_eq!(report.idle_cycles, 256);

    // Per-component diagnosis: both endpoints report what they wait on.
    let tx_diag = report
        .components
        .iter()
        .find(|c| c.name == "rl.tx")
        .expect("tx diagnosed");
    let wait = tx_diag.wait.as_deref().expect("tx explains its wait");
    assert!(wait.contains("reliable-tx"), "wait: {wait}");
    assert!(wait.contains("outstanding="), "wait: {wait}");
    let rx_diag = report
        .components
        .iter()
        .find(|c| c.name == "rl.rx")
        .expect("rx diagnosed");
    // Delivery stopped at the stuck onset: the rx's next-expected
    // sequence number matches exactly what the sink received.
    let rx_wait = rx_diag.wait.as_deref().expect("rx explains its wait");
    assert!(
        rx_wait.contains(&format!("expected={}", log.borrow().len())),
        "wait: {rx_wait}, delivered: {}",
        log.borrow().len()
    );

    // Per-channel diagnosis: the wedged data channel shows up occupied
    // with undelivered traffic and names its stuck fault.
    let data_diag = report
        .channels
        .iter()
        .find(|c| c.name == "rl.data")
        .expect("data channel diagnosed");
    assert!(data_diag.pending, "undelivered frames are pending");
    assert!(data_diag.occupancy > 0);
    assert!(
        data_diag.note.contains("stuck-valid"),
        "note: {}",
        data_diag.note
    );
    assert!(!report.busy_components().collect::<Vec<_>>().is_empty());

    // The truncated stream: nothing past the stuck onset arrived.
    assert!(log.borrow().len() < 16);
}
