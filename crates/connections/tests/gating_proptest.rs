//! Property test for quiescence gating: an arbitrary producer →
//! relay → sink pipeline, spread over arbitrary clock domains, with
//! an arbitrary subset of components opted into gating, must produce
//! bit-identical observations (value + arrival cycle) and identical
//! per-clock cycle counts whether gating is enabled or not. Gating is
//! a wall-clock optimisation; determinism is the contract.

use craft_connections::{channel, ChannelKind, In, Out};
use craft_sim::{ActivityToken, ClockSpec, Component, Picoseconds, Simulator, TickCtx};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

/// Pushes an increasing sequence on the cycles its script marks
/// active; never gated (it drives itself, no external wake source).
struct Producer {
    out: Out<u32>,
    script: Vec<bool>,
    idx: usize,
    next: u32,
}

impl Component for Producer {
    fn name(&self) -> &str {
        "producer"
    }
    fn tick(&mut self, _ctx: &mut TickCtx<'_>) {
        if self.idx < self.script.len() {
            if self.script[self.idx] && self.out.push_nb(self.next).is_ok() {
                self.next += 1;
            }
            self.idx += 1;
        }
    }
}

/// One-deep store-and-forward stage between two channels.
struct Relay {
    input: In<u32>,
    out: Out<u32>,
    hold: Option<u32>,
}

impl Component for Relay {
    fn name(&self) -> &str {
        "relay"
    }
    fn is_quiescent(&self) -> bool {
        self.hold.is_none() && !self.input.has_pending()
    }
    fn tick(&mut self, _ctx: &mut TickCtx<'_>) {
        if self.hold.is_none() {
            self.hold = self.input.pop_nb();
        }
        if let Some(v) = self.hold {
            if self.out.push_nb(v).is_ok() {
                self.hold = None;
            }
        }
    }
}

/// Records every delivered value together with the local cycle it
/// arrived on — the "observation" gating must not perturb.
struct Sink {
    input: In<u32>,
    log: Rc<RefCell<Vec<(u64, u32)>>>,
}

impl Component for Sink {
    fn name(&self) -> &str {
        "sink"
    }
    fn is_quiescent(&self) -> bool {
        !self.input.has_pending()
    }
    fn tick(&mut self, ctx: &mut TickCtx<'_>) {
        while let Some(v) = self.input.pop_nb() {
            self.log.borrow_mut().push((ctx.cycle(), v));
        }
    }
}

/// Builds the pipeline and runs it to a fixed horizon. `gate_mask`
/// bit 0 opts the relay into gating, bit 1 the sink.
fn run_pipeline(
    gating: bool,
    periods: [u64; 3],
    script: &[bool],
    depth: usize,
    gate_mask: u8,
) -> (Vec<(u64, u32)>, [u64; 3], u64) {
    let mut sim = Simulator::new();
    sim.set_gating(gating);
    let clks: Vec<_> = periods
        .iter()
        .enumerate()
        .map(|(i, &p)| sim.add_clock(ClockSpec::new(format!("c{i}"), Picoseconds::new(p))))
        .collect();

    let (p_tx, r_rx, h1) = channel::<u32>("p2r", ChannelKind::Buffer(depth));
    let (r_tx, s_rx, h2) = channel::<u32>("r2s", ChannelKind::Buffer(depth));
    sim.add_sequential_gated(clks[0], h1.sequential(), h1.commit_token());
    sim.add_sequential_gated(clks[1], h2.sequential(), h2.commit_token());

    let relay_wake = ActivityToken::new();
    let sink_wake = ActivityToken::new();
    r_rx.set_wake_token(relay_wake.clone());
    r_tx.set_wake_token(relay_wake.clone());
    s_rx.set_wake_token(sink_wake.clone());

    sim.add_component(
        clks[0],
        Producer {
            out: p_tx,
            script: script.to_vec(),
            idx: 0,
            next: 0,
        },
    );
    let relay_id = sim.add_component(
        clks[1],
        Relay {
            input: r_rx,
            out: r_tx,
            hold: None,
        },
    );
    if gate_mask & 1 != 0 {
        sim.set_wake_token(relay_id, relay_wake);
    }
    let log = Rc::new(RefCell::new(Vec::new()));
    let sink_id = sim.add_component(
        clks[2],
        Sink {
            input: s_rx,
            log: Rc::clone(&log),
        },
    );
    if gate_mask & 2 != 0 {
        sim.set_wake_token(sink_id, sink_wake);
    }

    let horizon = (script.len() as u64 + 64) * periods.iter().max().copied().unwrap_or(1);
    sim.run_until_time(Picoseconds::new(horizon));

    let cycles = [
        sim.cycles(clks[0]),
        sim.cycles(clks[1]),
        sim.cycles(clks[2]),
    ];
    let out = log.borrow().clone();
    (out, cycles, sim.ticks_skipped())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random activity mixes over random multi-clock schedules:
    /// observations and cycle counts are identical gating on vs off,
    /// and every pushed value arrives exactly once, in order.
    #[test]
    fn gating_never_changes_observations(
        periods in proptest::array::uniform3(400u64..1600),
        script in proptest::collection::vec(any::<bool>(), 1..120),
        depth in 1usize..5,
        gate_mask in 0u8..4,
    ) {
        let (log_on, cyc_on, _skipped) =
            run_pipeline(true, periods, &script, depth, gate_mask);
        let (log_off, cyc_off, skipped_off) =
            run_pipeline(false, periods, &script, depth, gate_mask);
        prop_assert_eq!(&log_on, &log_off, "observations diverged");
        prop_assert_eq!(cyc_on, cyc_off, "cycle counts diverged");
        prop_assert_eq!(skipped_off, 0);
        // Lossless in-order delivery end to end.
        let values: Vec<u32> = log_on.iter().map(|&(_, v)| v).collect();
        let expect: Vec<u32> = (0..values.len() as u32).collect();
        prop_assert_eq!(values, expect);
    }
}
