//! Property tests: every channel kind, under arbitrary drive patterns
//! and stall injection, is a lossless order-preserving stream — the
//! latency-insensitive contract that everything above (MatchLib, the
//! NoC, the SoC) relies on.

use craft_connections::{channel, ChannelKind, StallInjector};
use craft_sim::{ClockSpec, Picoseconds, Simulator};
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = ChannelKind> {
    prop_oneof![
        Just(ChannelKind::Combinational),
        Just(ChannelKind::Bypass),
        Just(ChannelKind::Pipeline),
        (1usize..6).prop_map(ChannelKind::Buffer),
    ]
}

/// Drives a channel with an arbitrary per-cycle (try_push, try_pop)
/// pattern, then drains it; returns (pushed values, popped values).
fn drive(
    kind: ChannelKind,
    pattern: &[(bool, bool)],
    stall: Option<(u8, u64)>,
) -> (Vec<u32>, Vec<u32>) {
    let mut sim = Simulator::new();
    let clk = sim.add_clock(ClockSpec::new("c", Picoseconds::new(909)));
    let (mut tx, mut rx, h) = channel::<u32>("ch", kind);
    sim.add_sequential(clk, h.sequential());
    if let Some((percent, seed)) = stall {
        h.inject_stalls(StallInjector::bernoulli(f64::from(percent) / 100.0, seed));
    }
    let mut next = 0u32;
    let mut pushed = Vec::new();
    let mut popped = Vec::new();
    for &(do_push, do_pop) in pattern {
        if do_push && tx.push_nb(next).is_ok() {
            pushed.push(next);
            next += 1;
        }
        if do_pop {
            if let Some(v) = rx.pop_nb() {
                popped.push(v);
            }
        }
        sim.run_cycles(clk, 1);
    }
    // Drain: stalls may still withhold, so clear them first.
    h.clear_stalls();
    for _ in 0..pattern.len() + 16 {
        if let Some(v) = rx.pop_nb() {
            popped.push(v);
        }
        sim.run_cycles(clk, 1);
    }
    (pushed, popped)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever the drive pattern, everything pushed comes out exactly
    /// once, in order.
    #[test]
    fn lossless_in_order(
        kind in kind_strategy(),
        pattern in proptest::collection::vec(any::<(bool, bool)>(), 1..150),
    ) {
        let (pushed, popped) = drive(kind, &pattern, None);
        prop_assert_eq!(pushed, popped);
    }

    /// Stall injection never loses, duplicates or reorders messages.
    #[test]
    fn stalls_preserve_the_stream(
        kind in kind_strategy(),
        pattern in proptest::collection::vec(any::<(bool, bool)>(), 1..150),
        percent in 0u8..=90,
        seed: u64,
    ) {
        let (pushed, popped) = drive(kind, &pattern, Some((percent, seed)));
        prop_assert_eq!(pushed, popped);
    }

    /// A successful push is never retracted: transfers counted by the
    /// channel equal the number of successful pushes.
    #[test]
    fn accounting_matches_transfers(
        kind in kind_strategy(),
        pattern in proptest::collection::vec(any::<(bool, bool)>(), 1..100),
    ) {
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("c", Picoseconds::new(909)));
        let (mut tx, mut rx, h) = channel::<u32>("ch", kind);
        sim.add_sequential(clk, h.sequential());
        let mut ok_pushes = 0u64;
        for &(do_push, do_pop) in &pattern {
            if do_push && tx.push_nb(1).is_ok() {
                ok_pushes += 1;
            }
            if do_pop {
                let _ = rx.pop_nb();
            }
            sim.run_cycles(clk, 1);
        }
        for _ in 0..pattern.len() + 16 {
            let _ = rx.pop_nb();
            sim.run_cycles(clk, 1);
        }
        prop_assert_eq!(h.stats().transfers, ok_pushes);
    }
}
