//! Random stall injection (§2.3).
//!
//! Leveraging latency-insensitivity, any channel can randomly withhold
//! `valid` to perturb inter-unit timing without changing design or
//! testbench code. This quickly covers timing-interaction corner cases
//! that would otherwise need dedicated directed tests — see the
//! `stall_injection` integration test for a seeded bug the technique
//! finds.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

// One injector per channel; the RNG-bearing variant's size is fine.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum Mode {
    /// Stall every cycle (for unit tests / worst-case checks).
    Always,
    /// Never stall (degenerate campaigns; no RNG state at all).
    Never,
    /// Stall each cycle independently with probability `p`.
    Bernoulli { p: f64, rng: StdRng },
    /// Alternate deterministic run/stall bursts.
    Burst { run: u32, stall: u32, phase: u32 },
}

/// A per-channel source of stall decisions, rolled once per cycle at
/// commit time.
///
/// ```
/// use craft_connections::StallInjector;
/// let mut s = StallInjector::bernoulli(0.5, 42);
/// let stalls: usize = (0..1000).filter(|_| s.roll()).count();
/// assert!((300..700).contains(&stalls)); // roughly half
/// ```
#[derive(Debug, Clone)]
pub struct StallInjector {
    mode: Mode,
}

impl StallInjector {
    /// Stalls every cycle.
    pub fn always() -> Self {
        StallInjector { mode: Mode::Always }
    }

    /// Never stalls. Useful as the "no perturbation" arm of a sweep so
    /// campaign code can treat every point uniformly.
    pub fn never() -> Self {
        StallInjector { mode: Mode::Never }
    }

    /// Stalls each cycle independently with probability `p`, seeded for
    /// reproducibility.
    ///
    /// The degenerate probabilities short-circuit: `p == 0.0` becomes
    /// [`never`](Self::never) and `p == 1.0` becomes
    /// [`always`](Self::always), carrying no RNG state and drawing no
    /// randoms — the decision stream is identical for every seed, and
    /// degenerate sweep points cost nothing per cycle.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn bernoulli(p: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "stall probability must be in [0,1]"
        );
        if p == 0.0 {
            return Self::never();
        }
        if p == 1.0 {
            return Self::always();
        }
        StallInjector {
            mode: Mode::Bernoulli {
                p,
                rng: StdRng::seed_from_u64(seed),
            },
        }
    }

    /// Deterministically alternates `run` un-stalled cycles with
    /// `stall` stalled cycles.
    ///
    /// # Panics
    /// Panics if `run + stall` is zero.
    pub fn burst(run: u32, stall: u32) -> Self {
        assert!(run + stall > 0, "burst period must be nonzero");
        StallInjector {
            mode: Mode::Burst {
                run,
                stall,
                phase: 0,
            },
        }
    }

    /// Draws the stall decision for the next cycle.
    pub fn roll(&mut self) -> bool {
        match &mut self.mode {
            Mode::Always => true,
            Mode::Never => false,
            Mode::Bernoulli { p, rng } => rng.gen::<f64>() < *p,
            Mode::Burst { run, stall, phase } => {
                let period = *run + *stall;
                let stalled = *phase >= *run;
                *phase = (*phase + 1) % period;
                stalled
            }
        }
    }
}

impl fmt::Display for StallInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.mode {
            Mode::Always => write!(f, "always"),
            Mode::Never => write!(f, "never"),
            Mode::Bernoulli { p, .. } => write!(f, "bernoulli(p={p})"),
            Mode::Burst { run, stall, .. } => write!(f, "burst({run} run / {stall} stall)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_always_stalls() {
        let mut s = StallInjector::always();
        assert!((0..10).all(|_| s.roll()));
    }

    #[test]
    fn bernoulli_is_seed_reproducible() {
        let mut a = StallInjector::bernoulli(0.3, 7);
        let mut b = StallInjector::bernoulli(0.3, 7);
        let va: Vec<bool> = (0..100).map(|_| a.roll()).collect();
        let vb: Vec<bool> = (0..100).map(|_| b.roll()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn bernoulli_zero_and_one() {
        let mut z = StallInjector::bernoulli(0.0, 1);
        assert!((0..50).all(|_| !z.roll()));
        let mut o = StallInjector::bernoulli(1.0, 1);
        assert!((0..50).all(|_| o.roll()));
    }

    /// `p == 0.0` / `p == 1.0` short-circuit to the RNG-free modes:
    /// the decision stream is seed independent and Display shows the
    /// degenerate mode, not a Bernoulli carrying dead RNG state.
    #[test]
    fn bernoulli_edges_short_circuit_without_rng() {
        for seed in [0u64, 1, 42, u64::MAX] {
            assert_eq!(StallInjector::bernoulli(0.0, seed).to_string(), "never");
            assert_eq!(StallInjector::bernoulli(1.0, seed).to_string(), "always");
        }
        // Interior probabilities still draw from a seeded RNG.
        assert_eq!(
            StallInjector::bernoulli(0.5, 3).to_string(),
            "bernoulli(p=0.5)"
        );
        let mut n = StallInjector::never();
        assert!((0..20).all(|_| !n.roll()));
        assert_eq!(n.to_string(), "never");
    }

    #[test]
    fn burst_pattern() {
        let mut s = StallInjector::burst(2, 1);
        let v: Vec<bool> = (0..6).map(|_| s.roll()).collect();
        assert_eq!(v, vec![false, false, true, false, false, true]);
    }

    #[test]
    #[should_panic(expected = "stall probability must be in [0,1]")]
    fn bad_probability_panics() {
        let _ = StallInjector::bernoulli(1.5, 0);
    }
}
