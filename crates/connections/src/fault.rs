//! Seeded data-fault injection on LI channels.
//!
//! [`crate::StallInjector`] (§2.3) perturbs *timing* only; a
//! [`FaultInjector`] perturbs *data and token discipline*: payload
//! bit-flips, token drops, token duplication, and permanently stuck
//! control wires. Like stall injection it attaches to any channel
//! through its handle ([`crate::ChannelHandle::inject_faults`]) without
//! touching DUT or testbench code, which is what makes whole-campaign
//! fault sweeps cheap.
//!
//! Determinism: each injector owns a seeded RNG and draws once per
//! *token* (at the push that admits it), so the fault schedule is a
//! function of the token index — independent of stall schedules,
//! quiescence gating, or wall-clock ordering. Stuck-at faults are
//! functions of the channel-local cycle count and draw no randoms.

use craft_sim::checkpoint::{CheckpointError, Checkpointable, StateReader, StateWriter};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// What to inject, and with what intensity.
///
/// Probabilities are per token; `stuck_*` onsets are channel-local
/// cycle counts from which the corresponding handshake wire is forced
/// deasserted forever (the permanent-fault model used by the
/// graceful-degradation campaign).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultConfig {
    /// Per-token probability that one uniformly chosen payload bit is
    /// inverted (silent data corruption).
    pub bit_flip: f64,
    /// Per-token probability the token vanishes at commit (token loss).
    pub drop: f64,
    /// Per-token probability the token is delivered twice.
    pub duplicate: f64,
    /// From this channel cycle on, `valid` is stuck deasserted: data
    /// already in the channel stays, but the consumer can never pop.
    pub stuck_valid_from: Option<u64>,
    /// From this channel cycle on, `ready` is stuck deasserted: the
    /// producer can never push.
    pub stuck_ready_from: Option<u64>,
}

impl FaultConfig {
    /// Corruption-only config: flip one payload bit per token with
    /// probability `p`.
    pub fn bit_flip(p: f64) -> Self {
        FaultConfig {
            bit_flip: p,
            ..Self::default()
        }
    }

    /// Loss-only config: drop each token with probability `p`.
    pub fn drop(p: f64) -> Self {
        FaultConfig {
            drop: p,
            ..Self::default()
        }
    }

    /// Duplication-only config.
    pub fn duplicate(p: f64) -> Self {
        FaultConfig {
            duplicate: p,
            ..Self::default()
        }
    }

    /// Permanent stuck-valid fault starting at channel cycle `from`.
    pub fn stuck_valid(from: u64) -> Self {
        FaultConfig {
            stuck_valid_from: Some(from),
            ..Self::default()
        }
    }

    /// Permanent stuck-ready fault starting at channel cycle `from`.
    pub fn stuck_ready(from: u64) -> Self {
        FaultConfig {
            stuck_ready_from: Some(from),
            ..Self::default()
        }
    }

    /// True when every injected fault is recoverable by a
    /// detect-and-retry transport: probabilistic flips/drops/dups below
    /// certainty, and no permanently stuck wire. Permanent faults need
    /// architectural recovery (remapping) or end in a diagnosed hang.
    pub fn is_recoverable(&self) -> bool {
        self.stuck_valid_from.is_none() && self.stuck_ready_from.is_none() && self.drop < 1.0
    }

    fn validate(&self) {
        for (name, p) in [
            ("bit_flip", self.bit_flip),
            ("drop", self.drop),
            ("duplicate", self.duplicate),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{name} probability must be in [0,1], got {p}"
            );
        }
    }
}

impl fmt::Display for FaultConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut any = false;
        let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
            if any {
                write!(f, ", ")?;
            }
            any = true;
            Ok(())
        };
        if self.bit_flip > 0.0 {
            sep(f)?;
            write!(f, "flip(p={})", self.bit_flip)?;
        }
        if self.drop > 0.0 {
            sep(f)?;
            write!(f, "drop(p={})", self.drop)?;
        }
        if self.duplicate > 0.0 {
            sep(f)?;
            write!(f, "dup(p={})", self.duplicate)?;
        }
        if let Some(c) = self.stuck_valid_from {
            sep(f)?;
            write!(f, "stuck-valid(from={c})")?;
        }
        if let Some(c) = self.stuck_ready_from {
            sep(f)?;
            write!(f, "stuck-ready(from={c})")?;
        }
        if !any {
            write!(f, "none")?;
        }
        Ok(())
    }
}

/// Counters for what a [`FaultInjector`] actually did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Tokens that passed through the injector.
    pub tokens: u64,
    /// Tokens whose payload had a bit inverted.
    pub flips: u64,
    /// Tokens discarded at commit.
    pub drops: u64,
    /// Duplicate tokens enqueued.
    pub dups: u64,
    /// Duplications that could not be applied (channel full at commit).
    pub dups_suppressed: u64,
    /// Cycles with `valid` forced deasserted.
    pub stuck_valid_cycles: u64,
    /// Cycles with `ready` forced deasserted.
    pub stuck_ready_cycles: u64,
}

impl FaultStats {
    /// Total discrete fault events injected into the token stream
    /// (flips + drops + applied duplications).
    pub fn injected(&self) -> u64 {
        self.flips + self.drops + self.dups
    }
}

impl Checkpointable for FaultConfig {
    fn save(&self, w: &mut StateWriter) {
        w.put_f64(self.bit_flip);
        w.put_f64(self.drop);
        w.put_f64(self.duplicate);
        w.put_opt_u64(self.stuck_valid_from);
        w.put_opt_u64(self.stuck_ready_from);
    }

    fn load(r: &mut StateReader<'_>) -> Result<Self, CheckpointError> {
        Ok(FaultConfig {
            bit_flip: r.get_f64()?,
            drop: r.get_f64()?,
            duplicate: r.get_f64()?,
            stuck_valid_from: r.get_opt_u64()?,
            stuck_ready_from: r.get_opt_u64()?,
        })
    }
}

impl Checkpointable for FaultStats {
    fn save(&self, w: &mut StateWriter) {
        w.put_u64(self.tokens);
        w.put_u64(self.flips);
        w.put_u64(self.drops);
        w.put_u64(self.dups);
        w.put_u64(self.dups_suppressed);
        w.put_u64(self.stuck_valid_cycles);
        w.put_u64(self.stuck_ready_cycles);
    }

    fn load(r: &mut StateReader<'_>) -> Result<Self, CheckpointError> {
        Ok(FaultStats {
            tokens: r.get_u64()?,
            flips: r.get_u64()?,
            drops: r.get_u64()?,
            dups: r.get_u64()?,
            dups_suppressed: r.get_u64()?,
            stuck_valid_cycles: r.get_u64()?,
            stuck_ready_cycles: r.get_u64()?,
        })
    }
}

/// Per-token fault decisions, drawn once when a push is admitted.
#[derive(Debug, Clone, Copy, Default)]
pub struct TokenFaults {
    /// `Some(raw)` — invert payload bit `raw % bit_width`.
    pub flip_bit: Option<u32>,
    /// Discard this token at commit.
    pub drop: bool,
    /// Enqueue this token twice at commit.
    pub duplicate: bool,
}

/// Seeded per-channel source of fault decisions.
///
/// ```
/// use craft_connections::{FaultConfig, FaultInjector};
/// let mut inj = FaultInjector::new(FaultConfig::drop(0.25), 7);
/// let dropped = (0..1000).filter(|_| inj.on_token().drop).count();
/// assert!((150..350).contains(&dropped)); // roughly a quarter
/// ```
#[derive(Debug, Clone)]
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: StdRng,
    /// Channel-local cycle count, advanced once per commit.
    cycle: u64,
    pub(crate) stats: FaultStats,
}

impl FaultInjector {
    /// Creates an injector with the given config and RNG seed.
    ///
    /// # Panics
    /// Panics if any probability is outside `[0, 1]`.
    pub fn new(cfg: FaultConfig, seed: u64) -> Self {
        cfg.validate();
        FaultInjector {
            cfg,
            rng: StdRng::seed_from_u64(seed),
            cycle: 0,
            stats: FaultStats::default(),
        }
    }

    /// The configuration this injector was built with.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> FaultStats {
        self.stats.clone()
    }

    /// Draws the fault decisions for the next token. Zero-probability
    /// fault classes draw no randoms, so degenerate configs are
    /// deterministic for every seed.
    pub fn on_token(&mut self) -> TokenFaults {
        self.stats.tokens += 1;
        let flip_bit = if self.cfg.bit_flip > 0.0 && self.rng.gen::<f64>() < self.cfg.bit_flip {
            Some(self.rng.gen::<u32>())
        } else {
            None
        };
        let drop = self.cfg.drop > 0.0 && self.rng.gen::<f64>() < self.cfg.drop;
        let duplicate = self.cfg.duplicate > 0.0 && self.rng.gen::<f64>() < self.cfg.duplicate;
        TokenFaults {
            flip_bit,
            drop,
            duplicate,
        }
    }

    /// Advances the channel-cycle counter and returns the stuck-wire
    /// state `(valid_stuck, ready_stuck)` for the *next* cycle. Called
    /// once per channel commit, mirroring [`crate::StallInjector`].
    pub fn on_cycle(&mut self) -> (bool, bool) {
        self.cycle += 1;
        let valid_stuck = self
            .cfg
            .stuck_valid_from
            .is_some_and(|from| self.cycle >= from);
        let ready_stuck = self
            .cfg
            .stuck_ready_from
            .is_some_and(|from| self.cycle >= from);
        if valid_stuck {
            self.stats.stuck_valid_cycles += 1;
        }
        if ready_stuck {
            self.stats.stuck_ready_cycles += 1;
        }
        (valid_stuck, ready_stuck)
    }
}

impl fmt::Display for FaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "faults[{}]", self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_decisions_are_seed_reproducible() {
        let cfg = FaultConfig {
            bit_flip: 0.3,
            drop: 0.2,
            duplicate: 0.1,
            ..FaultConfig::default()
        };
        let mut a = FaultInjector::new(cfg, 99);
        let mut b = FaultInjector::new(cfg, 99);
        for _ in 0..200 {
            let (ta, tb) = (a.on_token(), b.on_token());
            assert_eq!(ta.flip_bit, tb.flip_bit);
            assert_eq!(ta.drop, tb.drop);
            assert_eq!(ta.duplicate, tb.duplicate);
        }
        assert_eq!(a.stats().tokens, 200);
    }

    #[test]
    fn zero_probabilities_draw_no_randoms() {
        // Identical decisions under different seeds proves no RNG use.
        let mut a = FaultInjector::new(FaultConfig::default(), 1);
        let mut b = FaultInjector::new(FaultConfig::default(), 2);
        for _ in 0..100 {
            let (ta, tb) = (a.on_token(), b.on_token());
            assert!(ta.flip_bit.is_none() && tb.flip_bit.is_none());
            assert!(!ta.drop && !tb.drop && !ta.duplicate && !tb.duplicate);
        }
        assert_eq!(a.stats().injected(), 0);
    }

    #[test]
    fn stuck_onsets_are_cycle_deterministic() {
        let cfg = FaultConfig {
            stuck_valid_from: Some(3),
            stuck_ready_from: Some(5),
            ..FaultConfig::default()
        };
        let mut inj = FaultInjector::new(cfg, 0);
        let states: Vec<(bool, bool)> = (0..6).map(|_| inj.on_cycle()).collect();
        // on_cycle advances first, so cycle counts run 1..=6.
        assert_eq!(
            states,
            vec![
                (false, false),
                (false, false),
                (true, false),
                (true, false),
                (true, true),
                (true, true),
            ]
        );
        assert_eq!(inj.stats().stuck_valid_cycles, 4);
        assert_eq!(inj.stats().stuck_ready_cycles, 2);
        assert!(!cfg.is_recoverable());
        assert!(FaultConfig::bit_flip(0.1).is_recoverable());
        assert!(!FaultConfig::drop(1.0).is_recoverable());
    }

    #[test]
    fn display_summarizes_config() {
        let cfg = FaultConfig {
            bit_flip: 0.5,
            drop: 0.25,
            ..FaultConfig::default()
        };
        let s = FaultInjector::new(cfg, 0).to_string();
        assert_eq!(s, "faults[flip(p=0.5), drop(p=0.25)]");
        assert_eq!(FaultConfig::default().to_string(), "none");
        assert_eq!(
            FaultConfig::stuck_valid(10).to_string(),
            "stuck-valid(from=10)"
        );
    }

    #[test]
    #[should_panic(expected = "probability must be in [0,1]")]
    fn bad_probability_panics() {
        let _ = FaultInjector::new(FaultConfig::bit_flip(1.5), 0);
    }
}
