//! `Packetizer`/`DePacketizer` network channel adapters (Fig. 2e).
//!
//! These components bridge a message channel and a flit channel so a
//! producer/consumer pair can communicate across a NoC without either
//! side changing: the producer pushes `T`s, the packetizer serializes
//! them into [`Flit`]s, the network moves flits, and the depacketizer
//! reassembles `T`s for the consumer.

use crate::{In, Out};
use craft_sim::{Component, TickCtx};
use std::collections::VecDeque;

/// A message that can be serialized into 64-bit words for network
/// transport.
pub trait Payload: Clone + 'static {
    /// Serializes the message. Must return at least one word and the
    /// same count for every value of the type.
    fn to_words(&self) -> Vec<u64>;

    /// Reassembles a message from exactly the words produced by
    /// [`to_words`](Self::to_words).
    ///
    /// # Panics
    /// Implementations may panic if `words` has the wrong length.
    fn from_words(words: &[u64]) -> Self;
}

macro_rules! impl_payload_prim {
    ($($t:ty),*) => {$(
        impl Payload for $t {
            fn to_words(&self) -> Vec<u64> {
                vec![u64::from(*self)]
            }
            fn from_words(words: &[u64]) -> Self {
                assert_eq!(words.len(), 1, "expected 1 word");
                words[0] as $t
            }
        }
    )*};
}
impl_payload_prim!(u8, u16, u32);

impl Payload for u64 {
    fn to_words(&self) -> Vec<u64> {
        vec![*self]
    }
    fn from_words(words: &[u64]) -> Self {
        assert_eq!(words.len(), 1, "expected 1 word");
        words[0]
    }
}

impl<const N: usize> Payload for [u64; N] {
    fn to_words(&self) -> Vec<u64> {
        assert!(N > 0, "payload must have at least one word");
        self.to_vec()
    }
    fn from_words(words: &[u64]) -> Self {
        let mut out = [0u64; N];
        assert_eq!(words.len(), N, "expected {N} words");
        out.copy_from_slice(words);
        out
    }
}

/// One network flit: a data word plus an end-of-packet marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Flit {
    /// Payload word.
    pub data: u64,
    /// True on the final flit of a packet.
    pub last: bool,
}

/// Serializes messages into flits, one flit per cycle.
#[derive(Debug)]
pub struct Packetizer<T: Payload> {
    name: String,
    input: In<T>,
    output: Out<Flit>,
    pending: VecDeque<Flit>,
}

impl<T: Payload> Packetizer<T> {
    /// Wires a packetizer between a message input and a flit output.
    pub fn new(name: impl Into<String>, input: In<T>, output: Out<Flit>) -> Self {
        Packetizer {
            name: name.into(),
            input,
            output,
            pending: VecDeque::new(),
        }
    }
}

impl<T: Payload> Component for Packetizer<T> {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _ctx: &mut TickCtx<'_>) {
        if self.pending.is_empty() {
            if let Some(msg) = self.input.pop_nb() {
                let words = msg.to_words();
                let n = words.len();
                assert!(n > 0, "payload serialized to zero words");
                for (i, w) in words.into_iter().enumerate() {
                    self.pending.push_back(Flit {
                        data: w,
                        last: i + 1 == n,
                    });
                }
            }
        }
        if let Some(&flit) = self.pending.front() {
            if self.output.push_nb(flit).is_ok() {
                self.pending.pop_front();
            }
        }
    }
}

/// Reassembles flits into messages.
#[derive(Debug)]
pub struct DePacketizer<T: Payload> {
    name: String,
    input: In<Flit>,
    output: Out<T>,
    accum: Vec<u64>,
    ready_msg: Option<T>,
}

impl<T: Payload> DePacketizer<T> {
    /// Wires a depacketizer between a flit input and a message output.
    pub fn new(name: impl Into<String>, input: In<Flit>, output: Out<T>) -> Self {
        DePacketizer {
            name: name.into(),
            input,
            output,
            accum: Vec::new(),
            ready_msg: None,
        }
    }
}

impl<T: Payload> Component for DePacketizer<T> {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _ctx: &mut TickCtx<'_>) {
        if self.ready_msg.is_none() {
            if let Some(flit) = self.input.pop_nb() {
                self.accum.push(flit.data);
                if flit.last {
                    let msg = T::from_words(&self.accum);
                    self.accum.clear();
                    self.ready_msg = Some(msg);
                }
            }
        }
        if let Some(msg) = self.ready_msg.take() {
            if let Err(back) = self.output.push_nb(msg) {
                self.ready_msg = Some(back);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{channel, ChannelKind};
    use craft_sim::{ClockSpec, Picoseconds, Simulator};

    /// Round-trips messages through packetizer -> flit buffer ->
    /// depacketizer and checks content and ordering.
    fn round_trip<T: Payload + PartialEq + std::fmt::Debug>(msgs: Vec<T>) -> Vec<T> {
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("c", Picoseconds(1000)));

        let (mut msg_tx, msg_rx, h1) = channel::<T>("msgs", ChannelKind::Buffer(8));
        let (flit_tx, flit_rx, h2) = channel::<Flit>("flits", ChannelKind::Buffer(2));
        let (out_tx, mut out_rx, h3) = channel::<T>("out", ChannelKind::Buffer(8));

        for h in [h1.sequential(), h2.sequential(), h3.sequential()] {
            sim.add_sequential(clk, h);
        }
        sim.add_component(clk, Packetizer::new("pkt", msg_rx, flit_tx));
        sim.add_component(clk, DePacketizer::new("depkt", flit_rx, out_tx));

        let mut to_send: VecDeque<T> = msgs.into();
        let mut got = Vec::new();
        for _ in 0..400 {
            if let Some(m) = to_send.front() {
                if msg_tx.push_nb(m.clone()).is_ok() {
                    to_send.pop_front();
                }
            }
            sim.run_cycles(clk, 1);
            if let Some(m) = out_rx.pop_nb() {
                got.push(m);
            }
        }
        got
    }

    #[test]
    fn single_word_messages_round_trip() {
        let sent: Vec<u32> = (0..10).collect();
        assert_eq!(round_trip(sent.clone()), sent);
    }

    #[test]
    fn multi_word_messages_round_trip_in_order() {
        let sent: Vec<[u64; 3]> = (0..5).map(|i| [i, i * 10, i * 100]).collect();
        assert_eq!(round_trip(sent.clone()), sent);
    }

    #[test]
    fn flit_last_marks_packet_boundary() {
        let msg = [1u64, 2, 3];
        let words = msg.to_words();
        assert_eq!(words.len(), 3);
        let rebuilt = <[u64; 3]>::from_words(&words);
        assert_eq!(rebuilt, msg);
    }

    #[test]
    #[should_panic(expected = "expected 1 word")]
    fn wrong_word_count_panics() {
        let _ = u32::from_words(&[1, 2]);
    }
}
