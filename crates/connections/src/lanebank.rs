//! Shadow fault-lane banks for batched lockstep simulation.
//!
//! Word-parallel fault campaigns run N seeded variants of the *same*
//! simulation. Until a lane's fault first perturbs the token stream,
//! its trajectory is bit-identical to the fault-free golden run — an
//! armed [`FaultInjector`] that never fires only draws RNG state and
//! counts tokens; it changes nothing observable on the channel. A
//! [`FaultLaneBank`] exploits exactly that: it rides on the golden
//! channel and replays every lane's fault *decisions* (not the
//! simulation) against the golden token stream, laid out as
//! lane-indexed arrays:
//!
//! ```text
//!            golden channel events          lane-indexed shadow state
//!   push  ──────────────────────────▶  injectors[0..N]  (RNG streams)
//!   commit(len, cap) ───────────────▶  pending_dup[0..N]
//!                                      status[0..N] in the shared LaneSet
//! ```
//!
//! The moment a lane's decision would perturb the stream (a bit flip,
//! a drop, or a duplicate that the FIFO had room for), the lane is
//! marked **diverged** in the shared [`LaneSet`] and drops out of the
//! hot loop; the caller de-opts it to a solo interpreted run — the
//! golden reference path. Lanes whose injectors never fire finish the
//! batch bit-identical to the golden run for free, with exact
//! [`FaultStats`] (tokens seen, duplicates suppressed by a full FIFO)
//! accumulated by the shadow injectors.
//!
//! Divergence detection is deliberately **conservative**: a drawn flip
//! whose bit lands in encoding padding, or a drop on a token a
//! flow-through pop would have voided, still diverges the lane. A
//! false-positive divergence costs one solo replay; a false negative
//! would silently corrupt results, so the bank never risks one.
//!
//! Stuck-wire faults (`stuck_valid_from` / `stuck_ready_from`) gate
//! handshakes every cycle from their onset — there is no convergent
//! prefix to share — so [`FaultLaneBank::supports`] rejects them and
//! callers pre-diverge those lanes.

use crate::fault::{FaultConfig, FaultInjector, FaultStats};
use craft_sim::checkpoint::{CheckpointError, Checkpointable, StateReader, StateWriter};
use std::cell::RefCell;
use std::rc::Rc;

/// Why (and when) a lane left the lockstep batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneStatus {
    /// Still bit-identical to the golden run.
    Converged,
    /// The lane's fault perturbed the stream at the given channel
    /// token ordinal (1-based: the n-th admitted token); it must be
    /// finished on a solo simulation.
    Diverged {
        /// Token ordinal on the channel that observed the divergence.
        token: u64,
    },
}

impl Checkpointable for LaneStatus {
    fn save(&self, w: &mut StateWriter) {
        match self {
            LaneStatus::Converged => w.put_opt_u64(None),
            LaneStatus::Diverged { token } => w.put_opt_u64(Some(*token)),
        }
    }

    fn load(r: &mut StateReader<'_>) -> Result<Self, CheckpointError> {
        Ok(match r.get_opt_u64()? {
            None => LaneStatus::Converged,
            Some(token) => LaneStatus::Diverged { token },
        })
    }
}

/// Shared per-lane divergence ledger for one batch, referenced by
/// every channel's [`FaultLaneBank`] so a lane that diverges on any
/// channel stops shadow evaluation on all of them.
#[derive(Debug)]
pub struct LaneSet {
    status: Vec<LaneStatus>,
    /// Dense list of still-converged lane indices — the hot loop walks
    /// this contiguously instead of scanning all N statuses.
    live: Vec<u32>,
}

impl LaneSet {
    /// A ledger for `lanes` lanes, all initially converged.
    pub fn new(lanes: usize) -> Rc<RefCell<LaneSet>> {
        Rc::new(RefCell::new(LaneSet {
            status: vec![LaneStatus::Converged; lanes],
            live: (0..lanes as u32).collect(),
        }))
    }

    /// Number of lanes in the batch.
    pub fn lanes(&self) -> usize {
        self.status.len()
    }

    /// Lanes still bit-identical to the golden run.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// This lane's current status.
    pub fn status(&self, lane: usize) -> LaneStatus {
        self.status[lane]
    }

    /// Indices of lanes that have left the batch, ascending.
    pub fn diverged(&self) -> Vec<usize> {
        self.status
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, LaneStatus::Diverged { .. }))
            .map(|(i, _)| i)
            .collect()
    }

    /// Marks `lane` diverged (idempotent) at channel token ordinal
    /// `token` and removes it from the live list.
    pub fn mark_diverged(&mut self, lane: usize, token: u64) {
        if matches!(self.status[lane], LaneStatus::Diverged { .. }) {
            return;
        }
        self.status[lane] = LaneStatus::Diverged { token };
        if let Some(pos) = self.live.iter().position(|&l| l as usize == lane) {
            self.live.swap_remove(pos);
        }
    }
}

/// One lane's shadow state on one channel (struct-of-arrays element;
/// see [`FaultLaneBank`]).
#[derive(Debug)]
struct ShadowLane {
    /// The *same* injector a solo run would arm — same config, same
    /// per-channel seed — so the decision stream is bit-identical.
    injector: FaultInjector,
    /// A duplicate decision drawn at push, resolved against FIFO
    /// occupancy at the token's commit (exactly where a solo channel
    /// applies or suppresses it).
    pending_dup: bool,
}

/// Shadow injector bank attached to one golden channel
/// ([`crate::ChannelHandle::attach_lane_bank`]).
///
/// Holds a lane-indexed slot array — `None` for lanes whose fault
/// pattern does not match this channel — plus the batch-wide shared
/// [`LaneSet`]. The channel core calls the crate-private `on_push`
/// once per admitted token and `on_commit` once per token landing at
/// commit; both walk only the live lanes.
pub struct FaultLaneBank {
    set: Rc<RefCell<LaneSet>>,
    slots: Vec<Option<ShadowLane>>,
    /// Tokens admitted on this channel so far (divergence timestamps).
    tokens: u64,
}

impl FaultLaneBank {
    /// True when `cfg` is a pure token-rate fault (flip/drop/dup) the
    /// lockstep bank can shadow. Stuck-wire faults perturb handshakes
    /// from their onset cycle and must be pre-diverged instead.
    pub fn supports(cfg: &FaultConfig) -> bool {
        cfg.stuck_valid_from.is_none() && cfg.stuck_ready_from.is_none()
    }

    /// An empty bank over the shared ledger; populate with
    /// [`arm_lane`](Self::arm_lane).
    pub fn new(set: Rc<RefCell<LaneSet>>) -> FaultLaneBank {
        let lanes = set.borrow().lanes();
        FaultLaneBank {
            set,
            slots: (0..lanes).map(|_| None).collect(),
            tokens: 0,
        }
    }

    /// Arms lane `lane` on this channel with the given config and
    /// per-channel seed (callers derive the seed exactly as the solo
    /// path would, so decision streams line up bit-for-bit).
    ///
    /// # Panics
    /// Panics on an unsupported (stuck-wire) config, a lane index out
    /// of range, or a lane armed twice on the same channel.
    pub fn arm_lane(&mut self, lane: usize, cfg: FaultConfig, seed: u64) {
        assert!(
            Self::supports(&cfg),
            "stuck-wire faults have no convergent prefix; pre-diverge the lane"
        );
        let slot = &mut self.slots[lane];
        assert!(slot.is_none(), "lane {lane} already armed on this channel");
        *slot = Some(ShadowLane {
            injector: FaultInjector::new(cfg, seed),
            pending_dup: false,
        });
    }

    /// Shadow stats for `lane` on this channel — exact for converged
    /// lanes (meaningless once a lane diverges: its solo replay owns
    /// the true counters). `None` when the lane is not armed here.
    pub fn lane_stats(&self, lane: usize) -> Option<FaultStats> {
        self.slots
            .get(lane)
            .and_then(|s| s.as_ref())
            .map(|s| s.injector.stats())
    }

    /// One token admitted on the golden channel: draw every live
    /// lane's decisions for it. Flips and drops perturb the stream
    /// immediately → diverge; duplicates stay pending until the
    /// token's commit resolves them against FIFO occupancy.
    pub(crate) fn on_push(&mut self) {
        self.tokens += 1;
        let mut set = self.set.borrow_mut();
        // Walk the dense live list; mark_diverged swap-removes, so
        // iterate by index from the back to visit each lane once.
        let mut i = set.live.len();
        while i > 0 {
            i -= 1;
            let lane = set.live[i] as usize;
            let Some(slot) = self.slots[lane].as_mut() else {
                continue;
            };
            let tf = slot.injector.on_token();
            if tf.flip_bit.is_some() || tf.drop {
                set.mark_diverged(lane, self.tokens);
                continue;
            }
            slot.pending_dup = tf.duplicate;
        }
    }

    /// The token admitted at [`on_push`](Self::on_push) landed at a
    /// commit with `len_after` entries queued (post-push) of
    /// `capacity`: resolve pending duplicates. With a free slot the
    /// echo would have entered the stream → diverge; with a full FIFO
    /// the duplication is absorbed on the wire and only counted —
    /// the lane stays converged with exact `dups_suppressed`.
    pub(crate) fn on_commit(&mut self, len_after: usize, capacity: usize) {
        let mut set = self.set.borrow_mut();
        let mut i = set.live.len();
        while i > 0 {
            i -= 1;
            let lane = set.live[i] as usize;
            let Some(slot) = self.slots[lane].as_mut() else {
                continue;
            };
            if !slot.pending_dup {
                continue;
            }
            slot.pending_dup = false;
            if len_after < capacity {
                set.mark_diverged(lane, self.tokens);
            } else {
                slot.injector.stats.dups_suppressed += 1;
            }
        }
    }
}

impl std::fmt::Debug for FaultLaneBank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultLaneBank")
            .field("lanes", &self.slots.len())
            .field("armed", &self.slots.iter().filter(|s| s.is_some()).count())
            .field("tokens", &self.tokens)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_firing_lane_counts_tokens_and_stays_converged() {
        let set = LaneSet::new(3);
        let mut bank = FaultLaneBank::new(Rc::clone(&set));
        bank.arm_lane(0, FaultConfig::bit_flip(0.0), 1);
        bank.arm_lane(2, FaultConfig::drop(0.0), 2);
        for _ in 0..50 {
            bank.on_push();
            bank.on_commit(4, 4);
        }
        assert_eq!(set.borrow().live_count(), 3);
        assert_eq!(bank.lane_stats(0).unwrap().tokens, 50);
        assert_eq!(bank.lane_stats(2).unwrap().tokens, 50);
        assert!(bank.lane_stats(1).is_none(), "unarmed lane has no stats");
    }

    #[test]
    fn shadow_decisions_match_a_solo_injector_bit_for_bit() {
        // The bank's lane draws from the same (config, seed) injector
        // a solo channel would arm, so the first perturbing token —
        // and the token count up to it — are identical.
        let cfg = FaultConfig::drop(0.05);
        let seed = 0xBEEF;
        let mut solo = FaultInjector::new(cfg, seed);
        let first_drop = (1u64..)
            .find(|_| solo.on_token().drop)
            .expect("a drop eventually fires");

        let set = LaneSet::new(1);
        let mut bank = FaultLaneBank::new(Rc::clone(&set));
        bank.arm_lane(0, cfg, seed);
        let mut diverged_at = None;
        for t in 1..=first_drop + 10 {
            bank.on_push();
            bank.on_commit(4, 4);
            if let LaneStatus::Diverged { token } = set.borrow().status(0) {
                diverged_at = Some((t, token));
                break;
            }
        }
        assert_eq!(diverged_at, Some((first_drop, first_drop)));
    }

    #[test]
    fn suppressed_duplicate_keeps_lane_converged_with_exact_stats() {
        let cfg = FaultConfig::duplicate(1.0); // every token draws a dup
        let set = LaneSet::new(1);
        let mut bank = FaultLaneBank::new(Rc::clone(&set));
        bank.arm_lane(0, cfg, 7);
        // Full FIFO at every commit: each dup is absorbed, lane stays.
        for _ in 0..8 {
            bank.on_push();
            bank.on_commit(4, 4);
        }
        assert_eq!(set.borrow().status(0), LaneStatus::Converged);
        let s = bank.lane_stats(0).unwrap();
        assert_eq!((s.tokens, s.dups_suppressed, s.dups), (8, 8, 0));
        // First commit with room: the echo enters the stream.
        bank.on_push();
        bank.on_commit(3, 4);
        assert!(matches!(
            set.borrow().status(0),
            LaneStatus::Diverged { token: 9 }
        ));
    }

    #[test]
    fn divergence_on_one_bank_stops_draws_on_all_banks() {
        let set = LaneSet::new(2);
        let mut a = FaultLaneBank::new(Rc::clone(&set));
        let mut b = FaultLaneBank::new(Rc::clone(&set));
        a.arm_lane(0, FaultConfig::drop(1.0), 1);
        b.arm_lane(0, FaultConfig::bit_flip(0.0), 1);
        b.arm_lane(1, FaultConfig::bit_flip(0.0), 2);
        a.on_push(); // lane 0 drops its first token → diverges batch-wide
        b.on_push();
        b.on_push();
        assert_eq!(set.borrow().diverged(), vec![0]);
        assert_eq!(set.borrow().live_count(), 1);
        // Lane 0 drew nothing further on bank b after diverging on a.
        assert_eq!(b.lane_stats(0).unwrap().tokens, 0);
        assert_eq!(b.lane_stats(1).unwrap().tokens, 2);
    }

    #[test]
    #[should_panic(expected = "no convergent prefix")]
    fn stuck_wire_configs_are_rejected() {
        let set = LaneSet::new(1);
        let mut bank = FaultLaneBank::new(set);
        bank.arm_lane(0, FaultConfig::stuck_valid(10), 1);
    }
}
