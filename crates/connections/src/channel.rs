//! Latency-insensitive channel implementations (paper Fig. 2, Table 1).
//!
//! A channel is a single-producer single-consumer handshake queue that
//! participates in the kernel's commit phase. The four point-to-point
//! kinds differ in two combinational properties and their capacity:
//!
//! | Kind            | flow-through (DEQ sees same-cycle ENQ) | enq-when-full (ENQ allowed if DEQ staged) | capacity |
//! |-----------------|---------------------------------------|-------------------------------------------|----------|
//! | `Combinational` | yes                                   | yes                                       | 1        |
//! | `Bypass`        | yes ("enables DEQ when empty")        | no                                        | 1        |
//! | `Pipeline`      | no                                    | yes ("enables ENQ when full")             | 1        |
//! | `Buffer(n)`     | no                                    | no                                        | n        |
//!
//! Combinational properties follow hardware evaluation order: a
//! flow-through pop only observes a push staged *earlier in the same
//! evaluate phase*, so the producer must be registered before the
//! consumer for the zero-latency path to be exercised — exactly the
//! acyclicity requirement real combinational paths impose.

use crate::fault::{FaultConfig, FaultInjector, FaultStats};
use crate::lanebank::FaultLaneBank;
use crate::mailbox::{RemoteRxEnd, RemoteTxEnd, WireMsg};
use crate::packet::Payload;
use crate::stall::StallInjector;
use craft_sim::{ActivityToken, SeqDiag, Sequential, Telemetry};
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;
use std::fmt::Write as _;
use std::rc::Rc;

/// The kind of point-to-point LI channel (paper Table 1).
///
/// `Packetizer`/`DePacketizer` from Table 1 are adapters over channels
/// rather than channels themselves; see [`crate::Packetizer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelKind {
    /// Pure-wire connection: zero-latency, combinational in both the
    /// data and backpressure directions.
    Combinational,
    /// Registered backpressure, combinational data: an arriving message
    /// can be dequeued the same cycle when the channel is empty.
    Bypass,
    /// Registered data, combinational backpressure: a new message can
    /// be enqueued in the cycle the old one leaves.
    Pipeline,
    /// Fully registered FIFO of the given capacity.
    Buffer(usize),
}

impl ChannelKind {
    fn capacity(self) -> usize {
        match self {
            ChannelKind::Combinational | ChannelKind::Bypass | ChannelKind::Pipeline => 1,
            ChannelKind::Buffer(n) => n,
        }
    }

    fn flow_through(self) -> bool {
        matches!(self, ChannelKind::Combinational | ChannelKind::Bypass)
    }

    fn enq_when_full(self) -> bool {
        matches!(self, ChannelKind::Combinational | ChannelKind::Pipeline)
    }
}

impl fmt::Display for ChannelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelKind::Combinational => write!(f, "Combinational"),
            ChannelKind::Bypass => write!(f, "Bypass"),
            ChannelKind::Pipeline => write!(f, "Pipeline"),
            ChannelKind::Buffer(n) => write!(f, "Buffer({n})"),
        }
    }
}

/// Aggregate statistics for one channel.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChannelStats {
    /// Messages successfully transferred (counted at pop).
    pub transfers: u64,
    /// Failed non-blocking pushes (backpressure observed by producer).
    pub push_backpressure: u64,
    /// Failed non-blocking pops (consumer found channel empty/stalled).
    pub pop_empty: u64,
    /// Cycles the channel spent with an injected stall active.
    pub stall_cycles: u64,
    /// Commit phases observed (channel-domain cycles).
    pub cycles: u64,
    /// Sum of committed occupancy over cycles (for mean occupancy).
    pub occupancy_sum: u64,
}

impl ChannelStats {
    /// Mean committed occupancy in messages.
    pub fn mean_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.cycles as f64
        }
    }
}

/// Payload-corruption hook: inverts a bit chosen by the raw draw.
type CorruptFn<T> = Box<dyn FnMut(&mut T, u32)>;

/// Fault machinery attached to a channel: the decision source plus the
/// type-erased payload hooks (corruption and cloning need `T: Payload`,
/// which `ChannelCore<T>` itself does not require — the closures are
/// built by [`ChannelHandle::inject_faults`] where the bound holds).
pub(crate) struct FaultState<T> {
    pub(crate) injector: FaultInjector,
    /// Inverts payload bit `raw % bit_width` in place.
    corrupt: CorruptFn<T>,
    /// `T::clone`, captured where `T: Payload` is known.
    clone_fn: Box<dyn Fn(&T) -> T>,
    /// Decisions drawn at push time, applied at commit.
    pending_drop: bool,
    pending_dup: bool,
    /// Stuck-wire state for the current cycle (rolled at commit, like
    /// `stalled_now`).
    valid_stuck: bool,
    ready_stuck: bool,
}

impl<T> FaultState<T> {
    fn new<P>(cfg: FaultConfig, seed: u64) -> FaultState<P>
    where
        P: Payload,
    {
        FaultState {
            injector: FaultInjector::new(cfg, seed),
            corrupt: Box::new(|v: &mut P, raw: u32| {
                let mut words = v.to_words();
                let bits = (words.len() * 64) as u32;
                let bit = raw % bits;
                words[(bit / 64) as usize] ^= 1u64 << (bit % 64);
                *v = P::from_words(&words);
            }),
            clone_fn: Box::new(P::clone),
            pending_drop: false,
            pending_dup: false,
            valid_stuck: false,
            ready_stuck: false,
        }
    }
}

/// The half a channel plays when its producer and consumer live in
/// different worker threads of a sharded parallel run.
///
/// The two halves are *structurally identical* channels in their
/// respective workers (same name, kind, registration slot), linked by a
/// mailbox pair. The transmit half keeps the producer-facing contract —
/// backpressure from a mirrored occupancy count, the whole fault
/// injector, occupancy statistics — while the receive half keeps the
/// consumer-facing contract: the visible queue, pop bookkeeping and any
/// stall injector. Statistic fields split disjointly between the
/// halves, so summing both sides reproduces the sequential totals
/// exactly.
pub(crate) enum RemoteRole<T> {
    /// Producer-side half: committed tokens go out on the wire; pop
    /// acknowledgements come back and free occupancy.
    Tx {
        end: RemoteTxEnd<T>,
        /// Mirror of the consumer-side committed occupancy, maintained
        /// from sends minus acknowledgements. Exact because acks issued
        /// during an instant's evaluate phase are absorbed in the same
        /// instant's commit — the point where sequential occupancy
        /// changes too.
        occ: usize,
        /// Last stuck-valid state shipped downstream (delta encoding).
        sent_valid_stuck: bool,
    },
    /// Consumer-side half: tokens arrive from the wire into the local
    /// queue during the pre-step drain; pops acknowledge upstream.
    Rx {
        end: RemoteRxEnd<T>,
        /// Stuck-valid state mirrored from the transmit half.
        valid_stuck: bool,
    },
}

pub(crate) struct ChannelCore<T> {
    pub(crate) name: String,
    kind: ChannelKind,
    /// `Some` when this core is one half of a split cross-worker
    /// channel (see [`RemoteRole`]); `None` for ordinary local channels.
    remote: Option<RemoteRole<T>>,
    queue: VecDeque<T>,
    /// At most one push staged per cycle.
    staged_push: Option<T>,
    /// A push was issued this cycle (guards one push per cycle even if
    /// the staged value was consumed by a flow-through pop).
    pushed_this_cycle: bool,
    /// A pop (queue or flow-through) already happened this cycle.
    popped_this_cycle: bool,
    /// The pop this cycle removed a *committed* entry (frees a slot for
    /// enq-when-full kinds; also restores occupancy-as-of-last-commit
    /// for registered-backpressure accounting).
    popped_committed: bool,
    pub(crate) stall: Option<StallInjector>,
    stalled_now: bool,
    pub(crate) fault: Option<FaultState<T>>,
    /// Shadow fault-lane bank for batched lockstep runs (see
    /// [`crate::FaultLaneBank`]): replays N lanes' fault decisions
    /// against this channel's token stream without perturbing it.
    /// Attached to fault-free golden channels only.
    lane_bank: Option<FaultLaneBank>,
    pub(crate) stats: ChannelStats,
    /// Queue length as of the last commit — what every elided commit
    /// cycle's occupancy actually was (see [`Sequential::commit_skipped`]).
    committed_occupancy: u64,
    /// Set on every successful push: data is (or will be) available,
    /// so a sleeping consumer must wake.
    pub(crate) consumer_wake: Option<ActivityToken>,
    /// Set on every successful pop: space frees up at commit, so a
    /// producer sleeping on backpressure must wake.
    pub(crate) producer_wake: Option<ActivityToken>,
    /// Set whenever the next commit has real work (staged push, a pop
    /// to reconcile, or an active stall injector that must roll its
    /// RNG every cycle). Clean commits may be elided by the kernel.
    commit_dirty: ActivityToken,
    /// Forward-progress signal for the hang watchdog: set on every
    /// successful push and pop when wired (see
    /// [`ChannelHandle::set_progress_token`]).
    progress: Option<ActivityToken>,
    /// Exact mirror of [`has_pending`](Self::has_pending), shared with
    /// the consumer port so quiescence checks (which run once per
    /// delivered tick across every router/PE/hub input) read a `Cell`
    /// instead of borrowing the core. Every queue/staged mutation
    /// resynchronizes it.
    pending: Rc<Cell<bool>>,
}

impl<T> ChannelCore<T> {
    fn new(name: String, kind: ChannelKind) -> Self {
        assert!(kind.capacity() > 0, "channel capacity must be nonzero");
        ChannelCore {
            name,
            kind,
            remote: None,
            queue: VecDeque::with_capacity(kind.capacity()),
            staged_push: None,
            pushed_this_cycle: false,
            popped_this_cycle: false,
            popped_committed: false,
            stall: None,
            stalled_now: false,
            fault: None,
            lane_bank: None,
            stats: ChannelStats::default(),
            committed_occupancy: 0,
            consumer_wake: None,
            producer_wake: None,
            commit_dirty: ActivityToken::new(),
            progress: None,
            pending: Rc::new(Cell::new(false)),
        }
    }

    /// Shared handle to the pending-data mirror, handed to the
    /// consumer port at construction.
    pub(crate) fn pending_handle(&self) -> Rc<Cell<bool>> {
        Rc::clone(&self.pending)
    }

    /// Resynchronizes the pending mirror; call at the end of every
    /// method that may change `queue` or `staged_push`.
    #[inline]
    fn sync_pending(&self) {
        self.pending
            .set(!self.queue.is_empty() || self.staged_push.is_some());
    }

    /// Data committed *or staged*: true when the channel offers data
    /// now or will after the next commit. Deliberately ignores stall
    /// injection and the one-pop-per-cycle limit, so it is safe as a
    /// quiescence input — a component must not sleep while data it
    /// will eventually have to consume sits anywhere in the channel.
    pub(crate) fn has_pending(&self) -> bool {
        !self.queue.is_empty() || self.staged_push.is_some()
    }

    /// Occupancy as committed at the last commit phase (pops this cycle
    /// do not free registered slots until commit).
    ///
    /// A transmit half answers from its occupancy mirror; a receive
    /// half answers zero so the pair never double-counts (occupancy is
    /// a producer-facing statistic and the transmit half owns it).
    fn committed_len(&self) -> usize {
        match &self.remote {
            Some(RemoteRole::Tx { occ, .. }) => *occ,
            Some(RemoteRole::Rx { .. }) => 0,
            None => self.queue.len() + usize::from(self.popped_committed),
        }
    }

    /// The consumer-facing `valid` is forced deasserted (permanent
    /// stuck-valid fault). On a receive half the state is mirrored from
    /// the transmit half, which owns the fault injector.
    fn valid_stuck(&self) -> bool {
        match &self.remote {
            Some(RemoteRole::Rx { valid_stuck, .. }) => *valid_stuck,
            _ => self.fault.as_ref().is_some_and(|f| f.valid_stuck),
        }
    }

    pub(crate) fn can_push(&self) -> bool {
        if self.pushed_this_cycle {
            return false; // one push per cycle
        }
        if self.fault.as_ref().is_some_and(|f| f.ready_stuck) {
            return false; // ready stuck deasserted
        }
        if self.committed_len() < self.kind.capacity() {
            return true;
        }
        self.kind.enq_when_full() && self.popped_committed
    }

    pub(crate) fn push_nb(&mut self, v: T) -> Result<(), T> {
        if self.can_push() {
            let mut v = v;
            if let Some(f) = &mut self.fault {
                // One draw per admitted token: the fault schedule is a
                // function of the token index alone.
                let tf = f.injector.on_token();
                if let Some(raw) = tf.flip_bit {
                    (f.corrupt)(&mut v, raw);
                    f.injector.stats.flips += 1;
                }
                f.pending_drop = tf.drop;
                f.pending_dup = tf.duplicate;
            }
            if let Some(b) = &mut self.lane_bank {
                // One shadow draw per admitted token for every live
                // lane — the same admission point a solo injector
                // draws at, so lane decision streams line up exactly.
                b.on_push();
            }
            self.staged_push = Some(v);
            self.pushed_this_cycle = true;
            if let Some(w) = &self.consumer_wake {
                w.set();
            }
            if let Some(p) = &self.progress {
                p.set();
            }
            self.commit_dirty.set();
            self.pending.set(true);
            Ok(())
        } else {
            self.stats.push_backpressure += 1;
            Err(v)
        }
    }

    pub(crate) fn can_pop(&self) -> bool {
        if self.stalled_now || self.popped_this_cycle || self.valid_stuck() {
            return false;
        }
        if !self.queue.is_empty() {
            return true;
        }
        self.kind.flow_through() && self.staged_push.is_some()
    }

    pub(crate) fn pop_nb(&mut self) -> Option<T> {
        if self.stalled_now || self.popped_this_cycle || self.valid_stuck() {
            self.stats.pop_empty += 1;
            return None;
        }
        if let Some(v) = self.queue.pop_front() {
            self.popped_this_cycle = true;
            self.popped_committed = true;
            self.stats.transfers += 1;
            if let Some(RemoteRole::Rx { end, .. }) = &self.remote {
                // Acknowledge upstream: the transmit half frees the
                // slot at this instant's commit, exactly when a local
                // channel's committed occupancy would drop.
                end.acks.send(());
            }
            if let Some(w) = &self.producer_wake {
                w.set();
            }
            if let Some(p) = &self.progress {
                p.set();
            }
            self.commit_dirty.set();
            self.sync_pending();
            return Some(v);
        }
        if self.kind.flow_through() {
            if let Some(v) = self.staged_push.take() {
                self.popped_this_cycle = true;
                self.stats.transfers += 1;
                if let Some(w) = &self.producer_wake {
                    w.set();
                }
                if let Some(p) = &self.progress {
                    p.set();
                }
                if let Some(f) = &mut self.fault {
                    // The token never reaches commit; its drop/dup
                    // decisions are moot.
                    f.pending_drop = false;
                    f.pending_dup = false;
                }
                self.commit_dirty.set();
                self.sync_pending();
                return Some(v);
            }
        }
        self.stats.pop_empty += 1;
        None
    }

    pub(crate) fn peek_ref(&self) -> Option<&T> {
        if self.stalled_now || self.popped_this_cycle || self.valid_stuck() {
            return None;
        }
        if let Some(front) = self.queue.front() {
            return Some(front);
        }
        if self.kind.flow_through() {
            return self.staged_push.as_ref();
        }
        None
    }

    fn do_commit(&mut self) {
        self.popped_this_cycle = false;
        self.popped_committed = false;
        self.pushed_this_cycle = false;
        if let Some(v) = self.staged_push.take() {
            let dropped = match &mut self.fault {
                Some(f) if f.pending_drop => {
                    f.pending_drop = false;
                    f.pending_dup = false; // a lost token is not also duplicated
                    f.injector.stats.drops += 1;
                    true
                }
                _ => false,
            };
            if !dropped {
                debug_assert!(
                    self.queue.len() < self.kind.capacity(),
                    "channel `{}` overflow at commit",
                    self.name
                );
                self.queue.push_back(v);
                if let Some(b) = &mut self.lane_bank {
                    // The token landed: resolve shadow lanes' pending
                    // duplicates against post-push occupancy — exactly
                    // the admission arithmetic of the solo dup branch
                    // below.
                    b.on_commit(self.queue.len(), self.kind.capacity());
                }
                if let Some(f) = &mut self.fault {
                    if f.pending_dup {
                        f.pending_dup = false;
                        if self.queue.len() < self.kind.capacity() {
                            let dup = (f.clone_fn)(self.queue.back().expect("just pushed"));
                            self.queue.push_back(dup);
                            f.injector.stats.dups += 1;
                        } else {
                            // No slot for the echo: the duplication
                            // happened on the wire but the FIFO absorbed
                            // it. Counted so campaigns can report it.
                            f.injector.stats.dups_suppressed += 1;
                        }
                    }
                }
            }
        }
        self.stats.cycles += 1;
        self.stats.occupancy_sum += self.queue.len() as u64;
        self.committed_occupancy = self.queue.len() as u64;
        // Decide whether the *next* cycle is stalled.
        self.stalled_now = match &mut self.stall {
            Some(s) => s.roll(),
            None => false,
        };
        if self.stalled_now {
            self.stats.stall_cycles += 1;
        }
        // Roll the stuck-wire state for the next cycle.
        if let Some(f) = &mut self.fault {
            let (valid_stuck, ready_stuck) = f.injector.on_cycle();
            f.valid_stuck = valid_stuck;
            f.ready_stuck = ready_stuck;
        }
        // A stall injector consumes RNG state every cycle and a fault
        // injector counts cycles, so a channel with either armed must
        // never have its commits elided: re-arm the dirty token so the
        // next commit also runs.
        if self.stall.is_some() || self.fault.is_some() {
            self.commit_dirty.set();
        }
        // A pending-drop fault may have consumed the staged token.
        self.sync_pending();
    }

    /// Commit phase of a transmit half: absorb acknowledgements for
    /// pops the consumer performed this instant, then ship the staged
    /// token (applying drop/duplicate fault decisions with the same
    /// admission arithmetic as a local commit), account occupancy, and
    /// roll the fault injector's per-cycle state — shipping stuck-valid
    /// transitions downstream as deltas.
    fn commit_remote_tx(&mut self) {
        self.popped_this_cycle = false;
        self.popped_committed = false;
        self.pushed_this_cycle = false;
        let capacity = self.kind.capacity();
        let ChannelCore {
            name,
            remote,
            staged_push,
            fault,
            stats,
            committed_occupancy,
            producer_wake,
            commit_dirty,
            ..
        } = self;
        let Some(RemoteRole::Tx {
            end,
            occ,
            sent_valid_stuck,
        }) = remote
        else {
            unreachable!("commit_remote_tx on a non-tx core");
        };
        // Acks were sent during this instant's evaluate phase; each
        // frees one committed slot now, when a local channel's pop
        // would be reconciled too.
        while end.acks.recv().is_some() {
            debug_assert!(*occ > 0, "channel `{name}` over-acknowledged");
            *occ = occ.saturating_sub(1);
            if let Some(w) = &*producer_wake {
                w.set();
            }
        }
        if let Some(v) = staged_push.take() {
            let dropped = match fault {
                Some(f) if f.pending_drop => {
                    f.pending_drop = false;
                    f.pending_dup = false; // a lost token is not also duplicated
                    f.injector.stats.drops += 1;
                    true
                }
                _ => false,
            };
            if !dropped {
                debug_assert!(*occ < capacity, "channel `{name}` overflow at commit");
                let mut dup = None;
                if let Some(f) = fault {
                    if f.pending_dup {
                        f.pending_dup = false;
                        // Same admission rule as the local path: the
                        // echo needs a free slot *after* the original
                        // lands.
                        if *occ + 1 < capacity {
                            dup = Some((f.clone_fn)(&v));
                            f.injector.stats.dups += 1;
                        } else {
                            f.injector.stats.dups_suppressed += 1;
                        }
                    }
                }
                end.data.send(WireMsg::Token(v));
                *occ += 1;
                if let Some(d) = dup {
                    end.data.send(WireMsg::Token(d));
                    *occ += 1;
                }
            }
        }
        stats.cycles += 1;
        stats.occupancy_sum += *occ as u64;
        *committed_occupancy = *occ as u64;
        // Stall injectors belong on the receive half (they withhold the
        // consumer-facing `valid`); the transmit half ignores `stall`
        // entirely so the pair's RNG schedule matches a single local
        // injector's.
        if let Some(f) = fault {
            let (valid_stuck, ready_stuck) = f.injector.on_cycle();
            f.valid_stuck = valid_stuck;
            f.ready_stuck = ready_stuck;
        }
        let vs = fault.as_ref().is_some_and(|f| f.valid_stuck);
        if vs != *sent_valid_stuck {
            *sent_valid_stuck = vs;
            end.data.send(WireMsg::ValidStuck(vs));
        }
        if fault.is_some() {
            commit_dirty.set();
        }
        self.sync_pending();
    }

    /// Commit phase of a receive half: reset the per-cycle pop flags
    /// and roll any stall injector. Cycle and occupancy statistics are
    /// owned by the transmit half; accounting them here too would
    /// double-count when the pair's stats are merged.
    fn commit_remote_rx(&mut self) {
        self.popped_this_cycle = false;
        self.popped_committed = false;
        self.pushed_this_cycle = false;
        self.stalled_now = match &mut self.stall {
            Some(s) => s.roll(),
            None => false,
        };
        if self.stalled_now {
            self.stats.stall_cycles += 1;
        }
        if self.stall.is_some() {
            self.commit_dirty.set();
        }
    }

    /// Pre-step intake of a receive half: moves every wire message that
    /// arrived since the last instant into the local queue. Runs before
    /// the evaluate phase, so a token the transmit half committed at
    /// instant `t` becomes poppable at `t + 1` — exactly the registered
    /// (`Buffer`) latency of the unsplit channel. Returns the number of
    /// data tokens absorbed. No-op (zero) on non-receive cores.
    pub(crate) fn drain_remote(&mut self) -> u64 {
        let ChannelCore {
            remote,
            queue,
            consumer_wake,
            ..
        } = self;
        let Some(RemoteRole::Rx { end, valid_stuck }) = remote else {
            return 0;
        };
        let mut tokens = 0u64;
        while let Some(msg) = end.data.recv() {
            match msg {
                WireMsg::Token(v) => {
                    queue.push_back(v);
                    // Wake a sleeping consumer; forward progress was
                    // already counted at push time in the producer's
                    // worker, so the progress token stays untouched.
                    if let Some(w) = &*consumer_wake {
                        w.set();
                    }
                    tokens += 1;
                }
                WireMsg::ValidStuck(b) => *valid_stuck = b,
            }
        }
        if tokens > 0 {
            self.pending.set(true);
        }
        tokens
    }
}

impl<T> Sequential for ChannelCore<T> {
    fn commit(&mut self) {
        match self.remote {
            Some(RemoteRole::Tx { .. }) => self.commit_remote_tx(),
            Some(RemoteRole::Rx { .. }) => self.commit_remote_rx(),
            None => self.do_commit(),
        }
    }

    fn commit_skipped(&mut self, skipped: u64) {
        // Elided commits are cycles with no staged work: occupancy held
        // at its last committed value, and no stall injector was armed
        // (armed injectors keep the dirty token set).
        self.stats.cycles += skipped;
        self.stats.occupancy_sum += self.committed_occupancy * skipped;
    }

    fn diagnose(&self) -> Option<SeqDiag> {
        // Of a split pair, only the transmit half reports — it holds
        // the occupancy mirror and the fault injector — so a merged
        // hang report lists each channel once, like a sequential run.
        if let Some(RemoteRole::Rx { .. }) = &self.remote {
            return None;
        }
        let mut note = self.kind.to_string();
        if self.stalled_now {
            note.push_str(", stalled");
        }
        if let Some(s) = &self.stall {
            let _ = write!(note, ", stall {s}");
        }
        if let Some(f) = &self.fault {
            let _ = write!(note, ", {}", f.injector);
            if f.valid_stuck {
                note.push_str(", valid stuck");
            }
            if f.ready_stuck {
                note.push_str(", ready stuck");
            }
        }
        if let Some(RemoteRole::Tx { occ, .. }) = &self.remote {
            return Some(SeqDiag {
                name: self.name.clone(),
                occupancy: *occ,
                pending: self.staged_push.is_some() || *occ > 0,
                note,
            });
        }
        Some(SeqDiag {
            name: self.name.clone(),
            occupancy: self.committed_len(),
            pending: self.has_pending(),
            note,
        })
    }
}

/// Owner-side handle to a channel: registration, stall injection and
/// statistics. Returned by [`channel`] together with the two ports.
pub struct ChannelHandle<T> {
    pub(crate) core: Rc<RefCell<ChannelCore<T>>>,
}

impl<T: 'static> ChannelHandle<T> {
    /// The commit-phase hook to register with
    /// [`craft_sim::Simulator::add_sequential`] on the channel's clock
    /// domain.
    pub fn sequential(&self) -> Rc<RefCell<dyn Sequential>> {
        Rc::<RefCell<ChannelCore<T>>>::clone(&self.core) as Rc<RefCell<dyn Sequential>>
    }

    /// The channel's commit-dirty token, for registering with
    /// [`craft_sim::Simulator::add_sequential_gated`]: commits are then
    /// elided on cycles where nothing was pushed, popped, or stalled,
    /// with statistics caught up exactly via
    /// [`Sequential::commit_skipped`].
    pub fn commit_token(&self) -> ActivityToken {
        self.core.borrow().commit_dirty.clone()
    }

    /// Enables random stall injection (§2.3: withholding `valid` to
    /// perturb timing without touching design or testbench code).
    ///
    /// Arming an injector marks the channel's commit dirty and keeps it
    /// so: the injector's RNG must roll every cycle, which makes stall
    /// sequences identical whether or not commit gating is enabled.
    pub fn inject_stalls(&self, injector: StallInjector) {
        let mut core = self.core.borrow_mut();
        core.stall = Some(injector);
        core.commit_dirty.set();
    }

    /// Disables stall injection.
    pub fn clear_stalls(&self) {
        let mut core = self.core.borrow_mut();
        core.stall = None;
        core.stalled_now = false;
        core.commit_dirty.set();
    }

    /// Disables fault injection, discarding the injector and its stats.
    pub fn clear_faults(&self) {
        let mut core = self.core.borrow_mut();
        core.fault = None;
        core.commit_dirty.set();
    }

    /// Snapshot of the fault-injection statistics, when an injector is
    /// armed (see [`inject_faults`](Self::inject_faults)).
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.core
            .borrow()
            .fault
            .as_ref()
            .map(|f| f.injector.stats())
    }

    /// Attaches a shadow fault-lane bank ([`crate::FaultLaneBank`])
    /// for batched lockstep runs: the bank replays every lane's fault
    /// decisions against this channel's token stream (one draw per
    /// admitted token, duplicate resolution at that token's commit)
    /// without perturbing the channel itself. Attach to *fault-free*
    /// golden channels only — with a real injector also armed, the
    /// perturbed stream no longer matches the lanes' solo trajectories.
    ///
    /// Observation-only: the channel's behaviour, statistics and
    /// commit-elision eligibility are unchanged (bank hooks fire only
    /// at pushes and token-landing commits, which are never elided).
    ///
    /// # Panics
    /// Panics if this channel has a fault injector armed or is one
    /// half of a split cross-worker pair (split commit paths do not
    /// run the bank hooks).
    pub fn attach_lane_bank(&self, bank: FaultLaneBank) {
        let mut core = self.core.borrow_mut();
        assert!(
            core.fault.is_none(),
            "lane bank requires a fault-free golden channel `{}`",
            core.name
        );
        assert!(
            core.remote.is_none(),
            "lane bank is not supported on split channel `{}`",
            core.name
        );
        core.lane_bank = Some(bank);
    }

    /// Detaches the lane bank, handing it back with its accumulated
    /// shadow statistics. `None` when no bank is attached.
    pub fn detach_lane_bank(&self) -> Option<FaultLaneBank> {
        self.core.borrow_mut().lane_bank.take()
    }

    /// Shadow fault statistics for `lane` from the attached bank —
    /// exact for lanes still converged with the golden run. `None`
    /// when no bank is attached or the lane is not armed here.
    pub fn lane_bank_stats(&self, lane: usize) -> Option<FaultStats> {
        self.core
            .borrow()
            .lane_bank
            .as_ref()
            .and_then(|b| b.lane_stats(lane))
    }

    /// Wires the hang watchdog's progress signal to this channel: every
    /// successful push or pop sets `token`, so traffic here counts as
    /// forward progress for
    /// [`craft_sim::Simulator::run_until_checked`]. Pass the kernel's
    /// [`craft_sim::Simulator::progress_token`]. Wire it to data-plane
    /// channels only — a control loop that polls forever (e.g. a
    /// controller spinning on a status register) would otherwise mask
    /// real hangs.
    pub fn set_progress_token(&self, token: ActivityToken) {
        self.core.borrow_mut().progress = Some(token);
    }

    /// Turns this channel into the *transmit half* of a cross-worker
    /// split pair (see `RemoteRole` internals and
    /// [`crate::MailboxHub`]). The local consumer port becomes inert;
    /// committed tokens travel to the paired receive half instead.
    ///
    /// Only fully registered channels may be split: the one-cycle
    /// mailbox latency is exactly a `Buffer`'s registered latency,
    /// while flow-through or enq-when-full kinds have same-cycle
    /// producer/consumer coupling that cannot cross a thread boundary
    /// conservatively.
    ///
    /// # Panics
    /// Panics if the channel is not a `Buffer` or was already split.
    pub fn split_remote_tx(&self, end: RemoteTxEnd<T>) {
        let mut core = self.core.borrow_mut();
        assert!(
            matches!(core.kind, ChannelKind::Buffer(_)),
            "channel `{}`: only Buffer channels can be split",
            core.name
        );
        assert!(
            core.remote.is_none(),
            "channel `{}` already split",
            core.name
        );
        core.remote = Some(RemoteRole::Tx {
            end,
            occ: 0,
            sent_valid_stuck: false,
        });
    }

    /// Turns this channel into the *receive half* of a cross-worker
    /// split pair. The local producer port becomes inert; tokens arrive
    /// from the paired transmit half via
    /// [`drain_remote`](Self::drain_remote).
    ///
    /// # Panics
    /// Panics if the channel is not a `Buffer` or was already split.
    pub fn split_remote_rx(&self, end: RemoteRxEnd<T>) {
        let mut core = self.core.borrow_mut();
        assert!(
            matches!(core.kind, ChannelKind::Buffer(_)),
            "channel `{}`: only Buffer channels can be split",
            core.name
        );
        assert!(
            core.remote.is_none(),
            "channel `{}` already split",
            core.name
        );
        core.remote = Some(RemoteRole::Rx {
            end,
            valid_stuck: false,
        });
    }

    /// Absorbs wire messages into a receive half's queue; call once per
    /// instant *before* the evaluate phase (the epoch loop's `drain`
    /// hook). Returns the number of data tokens absorbed; zero on
    /// unsplit channels and transmit halves.
    pub fn drain_remote(&self) -> u64 {
        self.core.borrow_mut().drain_remote()
    }

    /// Snapshot of the channel statistics.
    pub fn stats(&self) -> ChannelStats {
        self.core.borrow().stats.clone()
    }

    /// Channel name given at construction.
    pub fn name(&self) -> String {
        self.core.borrow().name.clone()
    }

    /// Committed occupancy right now.
    pub fn occupancy(&self) -> usize {
        self.core.borrow().committed_len()
    }

    /// Registers this channel's statistics as polled telemetry probes
    /// under `path` (`<path>.transfers`, `.backpressure`, `.pop_empty`,
    /// `.stall_cycles`, `.occupancy`, `.occupancy_sum`, plus
    /// `.faults_injected` when a fault injector is armed at snapshot
    /// time). Probes are evaluated only when a snapshot is taken, so
    /// publishing costs nothing while the simulation runs —
    /// observation-only by construction.
    pub fn publish_telemetry(&self, tel: &Telemetry, path: &str) {
        let c = Rc::clone(&self.core);
        tel.probe(format!("{path}.transfers"), move || {
            c.borrow().stats.transfers
        });
        let c = Rc::clone(&self.core);
        tel.probe(format!("{path}.backpressure"), move || {
            c.borrow().stats.push_backpressure
        });
        let c = Rc::clone(&self.core);
        tel.probe(format!("{path}.pop_empty"), move || {
            c.borrow().stats.pop_empty
        });
        let c = Rc::clone(&self.core);
        tel.probe(format!("{path}.stall_cycles"), move || {
            c.borrow().stats.stall_cycles
        });
        let c = Rc::clone(&self.core);
        tel.probe(format!("{path}.occupancy"), move || {
            c.borrow().committed_len() as u64
        });
        let c = Rc::clone(&self.core);
        tel.probe(format!("{path}.occupancy_sum"), move || {
            c.borrow().stats.occupancy_sum
        });
        let c = Rc::clone(&self.core);
        tel.probe(format!("{path}.faults_injected"), move || {
            c.borrow()
                .fault
                .as_ref()
                .map_or(0, |f| f.injector.stats().injected())
        });
    }
}

impl<T: Payload> ChannelHandle<T> {
    /// Arms seeded data-fault injection (bit-flips, drops, duplicates,
    /// stuck wires — see [`FaultConfig`]) on this channel.
    ///
    /// Like [`inject_stalls`](Self::inject_stalls) this perturbs the
    /// channel from the outside: neither the producer nor the consumer
    /// changes. Requires `T: Payload` because corruption flips a bit of
    /// the serialized form and duplication clones the token.
    ///
    /// Arming keeps the channel's commit dirty (the injector counts
    /// cycles and rolls per-token randoms), so fault schedules are
    /// identical with and without commit gating.
    pub fn inject_faults(&self, cfg: FaultConfig, seed: u64) {
        let mut core = self.core.borrow_mut();
        core.fault = Some(FaultState::<T>::new::<T>(cfg, seed));
        core.commit_dirty.set();
    }
}

impl<T> fmt::Debug for ChannelHandle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let core = self.core.borrow();
        f.debug_struct("ChannelHandle")
            .field("name", &core.name)
            .field("kind", &core.kind)
            .field("occupancy", &core.queue.len())
            .finish()
    }
}

/// Creates a named channel of the given kind, returning the producer
/// port, consumer port and owner handle.
///
/// The ports are *polymorphic*: component code is written against
/// [`crate::In`]/[`crate::Out`] and is oblivious to which kind was
/// chosen here — the paper's central API property (§2.3).
///
/// # Panics
/// Panics if `kind` is `Buffer(0)`.
///
/// ```
/// use craft_connections::{channel, ChannelKind};
/// let (mut tx, mut rx, _h) = channel::<u32>("dut.in", ChannelKind::Buffer(2));
/// assert!(tx.push_nb(7).is_ok());
/// // Fully registered buffer: the message is visible after commit only.
/// assert_eq!(rx.pop_nb(), None);
/// ```
pub fn channel<T>(
    name: impl Into<String>,
    kind: ChannelKind,
) -> (crate::Out<T>, crate::In<T>, ChannelHandle<T>) {
    let core = Rc::new(RefCell::new(ChannelCore::new(name.into(), kind)));
    (
        crate::Out::new(Rc::clone(&core)),
        crate::In::new(Rc::clone(&core)),
        ChannelHandle { core },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stall::StallInjector;

    fn mk(kind: ChannelKind) -> Rc<RefCell<ChannelCore<u32>>> {
        Rc::new(RefCell::new(ChannelCore::new("t".into(), kind)))
    }

    #[test]
    fn buffer_is_fully_registered() {
        let c = mk(ChannelKind::Buffer(2));
        assert!(c.borrow_mut().push_nb(1).is_ok());
        // Not visible before commit.
        assert!(!c.borrow().can_pop());
        c.borrow_mut().do_commit();
        assert!(c.borrow().can_pop());
        assert_eq!(c.borrow_mut().pop_nb(), Some(1));
    }

    #[test]
    fn buffer_full_blocks_push() {
        let c = mk(ChannelKind::Buffer(1));
        assert!(c.borrow_mut().push_nb(1).is_ok());
        c.borrow_mut().do_commit();
        // Full; no enq-when-full for Buffer even with a staged pop.
        assert_eq!(c.borrow_mut().pop_nb(), Some(1));
        assert_eq!(c.borrow_mut().push_nb(2), Err(2));
        c.borrow_mut().do_commit();
        assert!(c.borrow_mut().push_nb(2).is_ok());
    }

    #[test]
    fn pipeline_enq_when_full() {
        let c = mk(ChannelKind::Pipeline);
        assert!(c.borrow_mut().push_nb(1).is_ok());
        c.borrow_mut().do_commit();
        // Consumer pops, then producer may enq in the same cycle.
        assert_eq!(c.borrow_mut().pop_nb(), Some(1));
        assert!(c.borrow().can_push());
        assert!(c.borrow_mut().push_nb(2).is_ok());
        c.borrow_mut().do_commit();
        assert_eq!(c.borrow_mut().pop_nb(), Some(2));
    }

    #[test]
    fn pipeline_is_not_flow_through() {
        let c = mk(ChannelKind::Pipeline);
        assert!(c.borrow_mut().push_nb(1).is_ok());
        // Same-cycle pop must fail: data is registered.
        assert_eq!(c.borrow_mut().pop_nb(), None);
    }

    #[test]
    fn bypass_deq_when_empty() {
        let c = mk(ChannelKind::Bypass);
        // Producer stages a push; consumer (evaluated later) pops it
        // within the same cycle because the channel is empty.
        assert!(c.borrow_mut().push_nb(7).is_ok());
        assert!(c.borrow().can_pop());
        assert_eq!(c.borrow_mut().pop_nb(), Some(7));
        c.borrow_mut().do_commit();
        assert!(!c.borrow().can_pop());
    }

    #[test]
    fn bypass_no_enq_when_full() {
        let c = mk(ChannelKind::Bypass);
        assert!(c.borrow_mut().push_nb(1).is_ok());
        c.borrow_mut().do_commit();
        assert_eq!(c.borrow_mut().pop_nb(), Some(1));
        // Registered backpressure: cannot refill until commit.
        assert_eq!(c.borrow_mut().push_nb(2), Err(2));
    }

    #[test]
    fn combinational_same_cycle_round_trip() {
        let c = mk(ChannelKind::Combinational);
        for cycle in 0..4u32 {
            assert!(c.borrow_mut().push_nb(cycle).is_ok());
            assert_eq!(c.borrow_mut().pop_nb(), Some(cycle));
            c.borrow_mut().do_commit();
        }
        let stats = c.borrow().stats.clone();
        assert_eq!(stats.transfers, 4);
        assert_eq!(stats.push_backpressure, 0);
    }

    #[test]
    fn one_push_per_cycle() {
        let c = mk(ChannelKind::Buffer(8));
        assert!(c.borrow_mut().push_nb(1).is_ok());
        assert_eq!(c.borrow_mut().push_nb(2), Err(2));
        c.borrow_mut().do_commit();
        assert!(c.borrow_mut().push_nb(2).is_ok());
    }

    #[test]
    fn peek_does_not_consume() {
        let c = mk(ChannelKind::Buffer(2));
        assert!(c.borrow_mut().push_nb(5).is_ok());
        c.borrow_mut().do_commit();
        assert_eq!(c.borrow().peek_ref(), Some(&5));
        assert_eq!(c.borrow().peek_ref(), Some(&5));
        assert_eq!(c.borrow_mut().pop_nb(), Some(5));
    }

    #[test]
    fn stall_withholds_valid() {
        let c = mk(ChannelKind::Buffer(4));
        c.borrow_mut().stall = Some(StallInjector::always());
        assert!(c.borrow_mut().push_nb(1).is_ok());
        c.borrow_mut().do_commit(); // stall decided for next cycle
        assert!(!c.borrow().can_pop());
        assert_eq!(c.borrow_mut().pop_nb(), None);
        // Producer side unaffected by stalls.
        assert!(c.borrow().can_push());
        let stats = c.borrow().stats.clone();
        assert!(stats.stall_cycles >= 1);
    }

    #[test]
    fn stats_mean_occupancy() {
        let c = mk(ChannelKind::Buffer(4));
        assert!(c.borrow_mut().push_nb(1).is_ok());
        c.borrow_mut().do_commit(); // occ 1
        assert!(c.borrow_mut().push_nb(2).is_ok());
        c.borrow_mut().do_commit(); // occ 2
        let stats = c.borrow().stats.clone();
        assert_eq!(stats.cycles, 2);
        assert!((stats.mean_occupancy() - 1.5).abs() < 1e-9);
    }

    /// Drives `n` tokens through a Buffer(4) channel with the given
    /// fault config, one push + one pop attempt per cycle, and returns
    /// (received tokens, fault stats).
    fn run_faulted(cfg: FaultConfig, seed: u64, n: u32) -> (Vec<u32>, FaultStats) {
        let (mut tx, mut rx, h) = channel::<u32>("f", ChannelKind::Buffer(4));
        h.inject_faults(cfg, seed);
        let mut got = Vec::new();
        let mut next = 0u32;
        for _ in 0..(n as usize * 4 + 16) {
            if next < n && tx.push_nb(next).is_ok() {
                next += 1;
            }
            if let Some(v) = rx.pop_nb() {
                got.push(v);
            }
            h.core.borrow_mut().do_commit();
        }
        (got, h.fault_stats().expect("injector armed"))
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_bit() {
        let (got, stats) = run_faulted(FaultConfig::bit_flip(1.0), 11, 32);
        assert_eq!(got.len(), 32);
        assert_eq!(stats.flips, 32);
        for (i, v) in got.iter().enumerate() {
            // Exactly one bit differs from the sent value. The flipped
            // bit may land in the upper u64 half (u32's Payload widens
            // to one word), in which case the value survives intact.
            let diff = (*v as u64) ^ (i as u64);
            assert!(diff.count_ones() <= 1, "token {i} became {v}");
        }
        // With p=1.0 some token must actually change in its low 32 bits.
        assert!(got.iter().enumerate().any(|(i, v)| *v != i as u32));
    }

    #[test]
    fn drop_loses_tokens_without_reordering() {
        let (got, stats) = run_faulted(FaultConfig::drop(0.5), 7, 64);
        assert_eq!(got.len() as u64 + stats.drops, 64);
        assert!(stats.drops > 0, "p=0.5 over 64 tokens must drop some");
        // Survivors keep their order.
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(got, sorted);
    }

    #[test]
    fn duplicate_echoes_tokens_in_place() {
        let (got, stats) = run_faulted(FaultConfig::duplicate(1.0), 3, 16);
        assert_eq!(stats.dups + stats.dups_suppressed, 16);
        assert_eq!(got.len() as u64, 16 + stats.dups);
        // Every applied duplicate is adjacent to its original.
        let mut expect = Vec::new();
        let mut dups_seen = 0;
        for i in 0..16u32 {
            expect.push(i);
            if dups_seen < stats.dups && got.iter().filter(|&&v| v == i).count() == 2 {
                expect.push(i);
                dups_seen += 1;
            }
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn stuck_valid_blocks_pop_keeps_data() {
        let (mut tx, mut rx, h) = channel::<u32>("sv", ChannelKind::Buffer(4));
        h.inject_faults(FaultConfig::stuck_valid(1), 0);
        assert!(tx.push_nb(9).is_ok());
        h.core.borrow_mut().do_commit(); // cycle 1: valid now stuck
        assert!(!rx.can_pop());
        assert_eq!(rx.pop_nb(), None);
        // Data is retained, producer side still accepts.
        assert_eq!(h.occupancy(), 1);
        assert!(tx.can_push());
        assert!(h.fault_stats().unwrap().stuck_valid_cycles >= 1);
    }

    #[test]
    fn stuck_ready_blocks_push() {
        let (mut tx, mut rx, h) = channel::<u32>("sr", ChannelKind::Buffer(4));
        h.inject_faults(FaultConfig::stuck_ready(1), 0);
        assert!(tx.push_nb(1).is_ok());
        h.core.borrow_mut().do_commit(); // cycle 1: ready now stuck
        assert!(!tx.can_push());
        assert_eq!(tx.push_nb(2), Err(2));
        // Consumer drains what made it in.
        assert_eq!(rx.pop_nb(), Some(1));
        // clear_faults releases the wire.
        h.clear_faults();
        h.core.borrow_mut().do_commit();
        assert!(tx.can_push());
        assert!(h.fault_stats().is_none());
    }

    #[test]
    fn fault_schedule_is_independent_of_stalls() {
        // Same fault seed, one run stalled and one clean: the set of
        // delivered tokens is identical because fault decisions are per
        // token, not per cycle.
        let clean = run_faulted(FaultConfig::drop(0.3), 21, 48).0;
        let (mut tx, mut rx, h) = channel::<u32>("fs", ChannelKind::Buffer(4));
        h.inject_faults(FaultConfig::drop(0.3), 21);
        h.inject_stalls(StallInjector::burst(1, 3));
        let mut got = Vec::new();
        let mut next = 0u32;
        for _ in 0..2000 {
            if next < 48 && tx.push_nb(next).is_ok() {
                next += 1;
            }
            if let Some(v) = rx.pop_nb() {
                got.push(v);
            }
            h.core.borrow_mut().do_commit();
        }
        assert_eq!(got, clean);
    }

    /// One emulated protocol run of a split tx/rx pair: drain, eval
    /// (push tx / pop rx), commit both halves — the exact order the
    /// epoch loop enforces across threads, collapsed onto one thread so
    /// the parity claim is testable deterministically.
    fn run_split_pair(
        cap: usize,
        n: u32,
        fault: Option<(FaultConfig, u64)>,
        stall_rx: bool,
    ) -> (Vec<u32>, ChannelStats, Option<FaultStats>) {
        let hub = crate::MailboxHub::<u32>::new();
        let (mut tx_out, _tx_in, tx_h) = channel::<u32>("s", ChannelKind::Buffer(cap));
        let (_rx_out, mut rx_in, rx_h) = channel::<u32>("s", ChannelKind::Buffer(cap));
        tx_h.split_remote_tx(hub.take_tx("s"));
        rx_h.split_remote_rx(hub.take_rx("s"));
        if let Some((cfg, seed)) = fault {
            tx_h.inject_faults(cfg, seed);
        }
        if stall_rx {
            rx_h.inject_stalls(StallInjector::burst(1, 3));
        }
        let mut got = Vec::new();
        let mut next = 0u32;
        for _ in 0..(n as usize * 6 + 32) {
            rx_h.drain_remote();
            if next < n && tx_out.push_nb(next).is_ok() {
                next += 1;
            }
            if let Some(v) = rx_in.pop_nb() {
                got.push(v);
            }
            tx_h.core.borrow_mut().commit();
            rx_h.core.borrow_mut().commit();
        }
        let t = tx_h.stats();
        let r = rx_h.stats();
        // The halves own disjoint statistic fields; merging is a field
        // selection, not a sum.
        let merged = ChannelStats {
            transfers: r.transfers,
            push_backpressure: t.push_backpressure,
            pop_empty: r.pop_empty,
            stall_cycles: r.stall_cycles,
            cycles: t.cycles,
            occupancy_sum: t.occupancy_sum,
        };
        (got, merged, tx_h.fault_stats())
    }

    /// The same schedule through an ordinary local channel.
    fn run_local_ref(
        cap: usize,
        n: u32,
        fault: Option<(FaultConfig, u64)>,
        stall: bool,
    ) -> (Vec<u32>, ChannelStats, Option<FaultStats>) {
        let (mut tx, mut rx, h) = channel::<u32>("s", ChannelKind::Buffer(cap));
        if let Some((cfg, seed)) = fault {
            h.inject_faults(cfg, seed);
        }
        if stall {
            h.inject_stalls(StallInjector::burst(1, 3));
        }
        let mut got = Vec::new();
        let mut next = 0u32;
        for _ in 0..(n as usize * 6 + 32) {
            if next < n && tx.push_nb(next).is_ok() {
                next += 1;
            }
            if let Some(v) = rx.pop_nb() {
                got.push(v);
            }
            h.core.borrow_mut().commit();
        }
        (got, h.stats(), h.fault_stats())
    }

    #[test]
    fn split_pair_matches_local_channel() {
        let cases: &[(Option<(FaultConfig, u64)>, bool)] = &[
            (None, false),
            (None, true),
            (Some((FaultConfig::bit_flip(0.3), 5)), false),
            (Some((FaultConfig::drop(0.4), 9)), true),
            (Some((FaultConfig::duplicate(0.7), 3)), false),
            (Some((FaultConfig::duplicate(1.0), 3)), true),
            (Some((FaultConfig::stuck_valid(5), 1)), false),
            (Some((FaultConfig::stuck_ready(5), 1)), true),
        ];
        for &(fault, stall) in cases {
            for cap in [1usize, 4] {
                let (lg, ls, lf) = run_local_ref(cap, 24, fault, stall);
                let (sg, ss, sf) = run_split_pair(cap, 24, fault, stall);
                let tag = format!("cap={cap} fault={fault:?} stall={stall}");
                assert_eq!(sg, lg, "delivered tokens diverged: {tag}");
                assert_eq!(ss, ls, "merged stats diverged: {tag}");
                assert_eq!(sf, lf, "fault stats diverged: {tag}");
            }
        }
    }

    #[test]
    fn split_rx_diagnose_is_suppressed_tx_reports_occupancy() {
        let hub = crate::MailboxHub::<u32>::new();
        let (mut tx_out, _ti, tx_h) = channel::<u32>("sp", ChannelKind::Buffer(4));
        let (_ro, _ri, rx_h) = channel::<u32>("sp", ChannelKind::Buffer(4));
        tx_h.split_remote_tx(hub.take_tx("sp"));
        rx_h.split_remote_rx(hub.take_rx("sp"));
        assert!(tx_out.push_nb(1).is_ok());
        tx_h.core.borrow_mut().commit();
        rx_h.core.borrow_mut().commit();
        assert!(rx_h.core.borrow().diagnose().is_none());
        let d = tx_h.core.borrow().diagnose().expect("tx half reports");
        assert_eq!(d.occupancy, 1);
        assert!(d.pending);
        // Occupancy telemetry is tx-owned; the rx half answers zero.
        assert_eq!(tx_h.occupancy(), 1);
        assert_eq!(rx_h.occupancy(), 0);
    }

    #[test]
    #[should_panic(expected = "only Buffer channels can be split")]
    fn split_rejects_flow_through_kinds() {
        let hub = crate::MailboxHub::<u32>::new();
        let (_o, _i, h) = channel::<u32>("c", ChannelKind::Combinational);
        h.split_remote_tx(hub.take_tx("c"));
    }

    #[test]
    fn diagnose_reports_occupancy_and_fault_state() {
        let (mut tx, _rx, h) = channel::<u32>("diag", ChannelKind::Buffer(2));
        h.inject_faults(FaultConfig::stuck_valid(1), 0);
        assert!(tx.push_nb(1).is_ok());
        h.core.borrow_mut().do_commit();
        let d = h.core.borrow().diagnose().expect("channels self-report");
        assert_eq!(d.name, "diag");
        assert_eq!(d.occupancy, 1);
        assert!(d.pending);
        assert!(d.note.contains("Buffer(2)"), "note: {}", d.note);
        assert!(d.note.contains("stuck-valid"), "note: {}", d.note);
        assert!(d.note.contains("valid stuck"), "note: {}", d.note);
    }
}
