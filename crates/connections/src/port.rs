//! Unified endpoint objects (paper Table 1: `In<T>`, `Out<T>`).
//!
//! Ports are decoupled from channels: a component owns `In`/`Out`
//! terminals and is oblivious to whether they were wired to a
//! `Combinational`, `Bypass`, `Pipeline` or `Buffer` channel — the key
//! modularity property of the Connections API (§2.3). "Blocking"
//! `Pop`/`Push` from the paper map onto the FSM convention of retrying
//! `pop_nb`/`push_nb` each cycle until they succeed.

use crate::channel::ChannelCore;
use craft_sim::ActivityToken;
use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

/// Producer terminal of an LI channel (`Out<T>` in the paper).
pub struct Out<T> {
    core: Rc<RefCell<ChannelCore<T>>>,
}

impl<T> Out<T> {
    pub(crate) fn new(core: Rc<RefCell<ChannelCore<T>>>) -> Self {
        Out { core }
    }

    /// True if a non-blocking push would succeed this cycle (the
    /// channel's `ready` as seen by the producer).
    pub fn can_push(&self) -> bool {
        self.core.borrow().can_push()
    }

    /// Non-blocking push (`PushNB`): stages `v` for transfer.
    ///
    /// # Errors
    /// Returns `Err(v)` (handing the message back, [C-INTERMEDIATE])
    /// when the channel is exerting backpressure or a push was already
    /// issued this cycle.
    pub fn push_nb(&mut self, v: T) -> Result<(), T> {
        self.core.borrow_mut().push_nb(v)
    }

    /// Name of the connected channel.
    pub fn channel_name(&self) -> String {
        self.core.borrow().name.clone()
    }

    /// Registers the producing component's wake token: every
    /// successful pop on the far end sets it, so a producer sleeping
    /// on backpressure is roused as soon as space frees up.
    pub fn set_wake_token(&self, token: ActivityToken) {
        self.core.borrow_mut().producer_wake = Some(token);
    }
}

impl<T> fmt::Debug for Out<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Out({})", self.core.borrow().name)
    }
}

/// Consumer terminal of an LI channel (`In<T>` in the paper).
pub struct In<T> {
    core: Rc<RefCell<ChannelCore<T>>>,
    /// The core's pending-data mirror (see `ChannelCore::pending`):
    /// read on the quiescence and peek fast paths without borrowing
    /// the core. The core keeps it exact through every mutation.
    pending: Rc<Cell<bool>>,
}

impl<T> In<T> {
    pub(crate) fn new(core: Rc<RefCell<ChannelCore<T>>>) -> Self {
        let pending = core.borrow().pending_handle();
        In { core, pending }
    }

    /// True if a non-blocking pop would succeed this cycle (the
    /// channel's `valid` as seen by the consumer, after stall
    /// injection).
    pub fn can_pop(&self) -> bool {
        // No data committed or staged: nothing a pop could see,
        // whatever the stall/pop-limit state is.
        if !self.pending.get() {
            return false;
        }
        self.core.borrow().can_pop()
    }

    /// Non-blocking pop (`PopNB`): takes the head message if one is
    /// available this cycle.
    pub fn pop_nb(&mut self) -> Option<T> {
        self.core.borrow_mut().pop_nb()
    }

    /// Observes the head message without consuming it.
    pub fn peek(&self) -> Option<T>
    where
        T: Clone,
    {
        if !self.pending.get() {
            return None;
        }
        self.core.borrow().peek_ref().cloned()
    }

    /// Name of the connected channel.
    pub fn channel_name(&self) -> String {
        self.core.borrow().name.clone()
    }

    /// Data committed **or staged**: true when the channel will offer
    /// data this cycle or after the next commit.
    ///
    /// This — not [`can_pop`](Self::can_pop) — is the correct input
    /// for a [`craft_sim::Component::is_quiescent`] decision: it sees
    /// pushes staged in the current evaluate phase (which `can_pop`
    /// hides until commit on registered kinds) and ignores transient
    /// pop blockers like stall injection, so a consumer can never
    /// sleep while undelivered data sits in the channel.
    pub fn has_pending(&self) -> bool {
        debug_assert_eq!(
            self.pending.get(),
            self.core.borrow().has_pending(),
            "pending mirror out of sync on `{}`",
            self.core.borrow().name
        );
        self.pending.get()
    }

    /// Registers the consuming component's wake token: every
    /// successful push on the far end sets it, so a consumer sleeping
    /// on an empty queue is roused when traffic arrives.
    pub fn set_wake_token(&self, token: ActivityToken) {
        self.core.borrow_mut().consumer_wake = Some(token);
    }
}

impl<T> fmt::Debug for In<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "In({})", self.core.borrow().name)
    }
}

#[cfg(test)]
mod tests {
    use crate::{channel, ChannelKind};

    #[test]
    fn ports_share_one_channel() {
        let (mut tx, mut rx, h) = channel::<u8>("c", ChannelKind::Buffer(2));
        assert!(tx.push_nb(1).is_ok());
        assert_eq!(rx.pop_nb(), None); // registered
        h.sequential().borrow_mut().commit();
        assert_eq!(rx.peek(), Some(1));
        assert_eq!(rx.pop_nb(), Some(1));
        assert_eq!(h.stats().transfers, 1);
    }

    #[test]
    fn wake_tokens_fire_on_push_and_pop() {
        use craft_sim::ActivityToken;
        let (mut tx, mut rx, h) = channel::<u8>("c", ChannelKind::Buffer(2));
        let consumer = ActivityToken::new();
        let producer = ActivityToken::new();
        rx.set_wake_token(consumer.clone());
        tx.set_wake_token(producer.clone());
        let dirty = h.commit_token();
        assert!(
            !dirty.take(),
            "commit token starts clear; add_sequential_gated sets it at registration"
        );

        assert!(!consumer.is_set());
        assert!(tx.push_nb(1).is_ok());
        assert!(consumer.is_set(), "push wakes consumer");
        assert!(dirty.is_set(), "push dirties commit");
        assert!(!producer.is_set());

        // has_pending sees the staged push before commit; can_pop does not.
        assert!(rx.has_pending());
        assert!(!rx.can_pop());

        h.sequential().borrow_mut().commit();
        assert!(dirty.take());
        assert!(!dirty.is_set(), "clean after commit with no stall");

        assert_eq!(rx.pop_nb(), Some(1));
        assert!(producer.is_set(), "pop wakes producer");
        assert!(dirty.is_set(), "pop dirties commit");
        assert!(!rx.has_pending());
    }

    #[test]
    fn commit_skipped_catch_up_matches_real_commits() {
        // Two channels, identical traffic; one has idle commits elided
        // and reconciled via commit_skipped. Stats must match exactly.
        let (mut tx_a, mut rx_a, ha) = channel::<u8>("a", ChannelKind::Buffer(4));
        let (mut tx_b, mut rx_b, hb) = channel::<u8>("b", ChannelKind::Buffer(4));
        let dirty = hb.commit_token();
        let _ = dirty.take();

        let drive = |cycle: usize, tx: &mut crate::Out<u8>, rx: &mut crate::In<u8>| {
            if cycle == 2 {
                let _ = tx.push_nb(7);
            }
            if cycle == 9 {
                let _ = rx.pop_nb();
            }
        };
        let mut skipped = 0u64;
        for cycle in 0..16 {
            drive(cycle, &mut tx_a, &mut rx_a);
            drive(cycle, &mut tx_b, &mut rx_b);
            ha.sequential().borrow_mut().commit();
            if dirty.take() {
                let seq = hb.sequential();
                let mut s = seq.borrow_mut();
                if skipped > 0 {
                    s.commit_skipped(skipped);
                    skipped = 0;
                }
                s.commit();
            } else {
                skipped += 1;
            }
        }
        if skipped > 0 {
            hb.sequential().borrow_mut().commit_skipped(skipped);
        }
        assert_eq!(ha.stats(), hb.stats());
    }

    #[test]
    fn debug_formats_mention_channel_name() {
        let (tx, rx, _h) = channel::<u8>("noc.east", ChannelKind::Pipeline);
        assert_eq!(format!("{tx:?}"), "Out(noc.east)");
        assert_eq!(format!("{rx:?}"), "In(noc.east)");
    }

    #[test]
    fn polymorphic_ports_same_code_all_kinds() {
        // The same driver code runs against every channel kind: the
        // paper's central API property.
        for kind in [
            ChannelKind::Combinational,
            ChannelKind::Bypass,
            ChannelKind::Pipeline,
            ChannelKind::Buffer(3),
        ] {
            let (mut tx, mut rx, h) = channel::<u32>("k", kind);
            let mut sent = 0u32;
            let mut got = Vec::new();
            for _cycle in 0..20 {
                if sent < 5 && tx.push_nb(sent).is_ok() {
                    sent += 1;
                }
                if let Some(v) = rx.pop_nb() {
                    got.push(v);
                }
                h.sequential().borrow_mut().commit();
            }
            assert_eq!(got, vec![0, 1, 2, 3, 4], "kind {kind}");
        }
    }
}
