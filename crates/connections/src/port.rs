//! Unified endpoint objects (paper Table 1: `In<T>`, `Out<T>`).
//!
//! Ports are decoupled from channels: a component owns `In`/`Out`
//! terminals and is oblivious to whether they were wired to a
//! `Combinational`, `Bypass`, `Pipeline` or `Buffer` channel — the key
//! modularity property of the Connections API (§2.3). "Blocking"
//! `Pop`/`Push` from the paper map onto the FSM convention of retrying
//! `pop_nb`/`push_nb` each cycle until they succeed.

use crate::channel::ChannelCore;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Producer terminal of an LI channel (`Out<T>` in the paper).
pub struct Out<T> {
    core: Rc<RefCell<ChannelCore<T>>>,
}

impl<T> Out<T> {
    pub(crate) fn new(core: Rc<RefCell<ChannelCore<T>>>) -> Self {
        Out { core }
    }

    /// True if a non-blocking push would succeed this cycle (the
    /// channel's `ready` as seen by the producer).
    pub fn can_push(&self) -> bool {
        self.core.borrow().can_push()
    }

    /// Non-blocking push (`PushNB`): stages `v` for transfer.
    ///
    /// # Errors
    /// Returns `Err(v)` (handing the message back, [C-INTERMEDIATE])
    /// when the channel is exerting backpressure or a push was already
    /// issued this cycle.
    pub fn push_nb(&mut self, v: T) -> Result<(), T> {
        self.core.borrow_mut().push_nb(v)
    }

    /// Name of the connected channel.
    pub fn channel_name(&self) -> String {
        self.core.borrow().name.clone()
    }
}

impl<T> fmt::Debug for Out<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Out({})", self.core.borrow().name)
    }
}

/// Consumer terminal of an LI channel (`In<T>` in the paper).
pub struct In<T> {
    core: Rc<RefCell<ChannelCore<T>>>,
}

impl<T> In<T> {
    pub(crate) fn new(core: Rc<RefCell<ChannelCore<T>>>) -> Self {
        In { core }
    }

    /// True if a non-blocking pop would succeed this cycle (the
    /// channel's `valid` as seen by the consumer, after stall
    /// injection).
    pub fn can_pop(&self) -> bool {
        self.core.borrow().can_pop()
    }

    /// Non-blocking pop (`PopNB`): takes the head message if one is
    /// available this cycle.
    pub fn pop_nb(&mut self) -> Option<T> {
        self.core.borrow_mut().pop_nb()
    }

    /// Observes the head message without consuming it.
    pub fn peek(&self) -> Option<T>
    where
        T: Clone,
    {
        self.core.borrow().peek_ref().cloned()
    }

    /// Name of the connected channel.
    pub fn channel_name(&self) -> String {
        self.core.borrow().name.clone()
    }
}

impl<T> fmt::Debug for In<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "In({})", self.core.borrow().name)
    }
}

#[cfg(test)]
mod tests {
    use crate::{channel, ChannelKind};

    #[test]
    fn ports_share_one_channel() {
        let (mut tx, mut rx, h) = channel::<u8>("c", ChannelKind::Buffer(2));
        assert!(tx.push_nb(1).is_ok());
        assert_eq!(rx.pop_nb(), None); // registered
        h.sequential().borrow_mut().commit();
        assert_eq!(rx.peek(), Some(1));
        assert_eq!(rx.pop_nb(), Some(1));
        assert_eq!(h.stats().transfers, 1);
    }

    #[test]
    fn debug_formats_mention_channel_name() {
        let (tx, rx, _h) = channel::<u8>("noc.east", ChannelKind::Pipeline);
        assert_eq!(format!("{tx:?}"), "Out(noc.east)");
        assert_eq!(format!("{rx:?}"), "In(noc.east)");
    }

    #[test]
    fn polymorphic_ports_same_code_all_kinds() {
        // The same driver code runs against every channel kind: the
        // paper's central API property.
        for kind in [
            ChannelKind::Combinational,
            ChannelKind::Bypass,
            ChannelKind::Pipeline,
            ChannelKind::Buffer(3),
        ] {
            let (mut tx, mut rx, h) = channel::<u32>("k", kind);
            let mut sent = 0u32;
            let mut got = Vec::new();
            for _cycle in 0..20 {
                if sent < 5 && tx.push_nb(sent).is_ok() {
                    sent += 1;
                }
                if let Some(v) = rx.pop_nb() {
                    got.push(v);
                }
                h.sequential().borrow_mut().commit();
            }
            assert_eq!(got, vec![0, 1, 2, 3, 4], "kind {kind}");
        }
    }
}
