//! Retiming stages (§2.3): "LI channels also provide the extensibility
//! of adding retiming registers on inter-unit interfaces to ease
//! timing pressure or aid floorplanning."
//!
//! A [`Retimer`] sits between two channels and adds a configurable
//! number of register stages. Because the interface is latency
//! insensitive, inserting one changes cycle timing but can never
//! change function — exactly why the back end is free to sprinkle them
//! along long top-level routes.

use crate::{In, Out};
use craft_sim::{Component, TickCtx};

/// An `n`-stage retiming pipeline between two LI channels.
pub struct Retimer<T> {
    name: String,
    input: In<T>,
    output: Out<T>,
    /// Each slot is one register stage; a message advances one stage
    /// per cycle when the stage ahead is free.
    stages: Vec<Option<T>>,
}

impl<T: 'static> Retimer<T> {
    /// Builds an `stages`-deep retimer (1..=64).
    ///
    /// # Panics
    /// Panics if `stages` is outside 1..=64.
    pub fn new(name: impl Into<String>, input: In<T>, output: Out<T>, stages: usize) -> Self {
        assert!((1..=64).contains(&stages), "stages must be 1..=64");
        Retimer {
            name: name.into(),
            input,
            output,
            stages: (0..stages).map(|_| None).collect(),
        }
    }

    /// Messages currently held in the pipeline.
    pub fn occupancy(&self) -> usize {
        self.stages.iter().filter(|s| s.is_some()).count()
    }
}

impl<T: 'static> Component for Retimer<T> {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _ctx: &mut TickCtx<'_>) {
        // Drain the last stage into the output channel.
        let last = self.stages.len() - 1;
        if let Some(v) = self.stages[last].take() {
            if let Err(v) = self.output.push_nb(v) {
                self.stages[last] = Some(v);
            }
        }
        // Shift interior stages toward the output.
        for i in (0..last).rev() {
            if self.stages[i + 1].is_none() {
                self.stages[i + 1] = self.stages[i].take();
            }
        }
        // Accept a new message into stage 0.
        if self.stages[0].is_none() {
            self.stages[0] = self.input.pop_nb();
        }
    }
}

/// Pure retiming helper for tests and models: the cycle cost a
/// `stages`-deep retimer adds to an uncontended transfer.
pub fn retiming_latency(stages: usize) -> u64 {
    stages as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{channel, ChannelKind};
    use craft_sim::{ClockSpec, Picoseconds, Simulator};
    use std::collections::VecDeque;

    fn pipe(stages: usize, n: u32) -> (Vec<u32>, u64, VecDeque<u64>) {
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("c", Picoseconds::new(909)));
        let (mut tx, mid_rx, h1) = channel::<u32>("a", ChannelKind::Buffer(2));
        let (mid_tx, mut rx, h2) = channel::<u32>("b", ChannelKind::Buffer(2));
        sim.add_sequential(clk, h1.sequential());
        sim.add_sequential(clk, h2.sequential());
        sim.add_component(clk, Retimer::new("rt", mid_rx, mid_tx, stages));
        let mut sent = 0u32;
        let mut got = Vec::new();
        let mut arrival_cycles = VecDeque::new();
        for _ in 0..(n as usize * 4 + stages * 4 + 40) {
            if sent < n && tx.push_nb(sent).is_ok() {
                sent += 1;
            }
            sim.run_cycles(clk, 1);
            while let Some(v) = rx.pop_nb() {
                got.push(v);
                arrival_cycles.push_back(sim.cycles(clk));
            }
            if got.len() as u32 == n {
                break;
            }
        }
        (got, sim.cycles(clk), arrival_cycles)
    }

    #[test]
    fn function_preserved_any_depth() {
        for stages in [1usize, 3, 8, 20] {
            let (got, _, _) = pipe(stages, 30);
            assert_eq!(got, (0..30).collect::<Vec<_>>(), "stages {stages}");
        }
    }

    #[test]
    fn latency_grows_with_stages_throughput_does_not() {
        let (_, _, arr1) = pipe(1, 40);
        let (_, _, arr8) = pipe(8, 40);
        // First arrival later with more stages.
        assert!(arr8[0] > arr1[0], "{} vs {}", arr8[0], arr1[0]);
        // Sustained rate: one message per cycle in both (inter-arrival
        // gap of 1 once the pipe is full).
        let gap = |a: &VecDeque<u64>| a[a.len() - 1] - a[a.len() - 2];
        assert_eq!(gap(&arr1), 1);
        assert_eq!(gap(&arr8), 1);
    }

    #[test]
    fn backpressure_propagates_through_stages() {
        // Nobody drains the output: the retimer fills, then the input
        // channel fills; nothing is lost.
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("c", Picoseconds::new(909)));
        let (mut tx, mid_rx, h1) = channel::<u32>("a", ChannelKind::Buffer(2));
        let (mid_tx, mut rx, h2) = channel::<u32>("b", ChannelKind::Buffer(2));
        sim.add_sequential(clk, h1.sequential());
        sim.add_sequential(clk, h2.sequential());
        sim.add_component(clk, Retimer::new("rt", mid_rx, mid_tx, 4));
        let mut sent = 0u32;
        for _ in 0..60 {
            if tx.push_nb(sent).is_ok() {
                sent += 1;
            }
            sim.run_cycles(clk, 1);
        }
        // Capacity: 2 + 4 + 2 = 8 (+1 in flight).
        assert!(sent <= 9, "backpressure failed: {sent} accepted");
        let mut got = Vec::new();
        for _ in 0..60 {
            if let Some(v) = rx.pop_nb() {
                got.push(v);
            }
            sim.run_cycles(clk, 1);
        }
        assert_eq!(got, (0..sent).collect::<Vec<_>>());
    }
}
