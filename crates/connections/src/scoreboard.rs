//! Reusable verification scoreboard — the "verification testbenches"
//! box of Fig. 1 as a library component.
//!
//! A [`Scoreboard`] taps a DUT's output channel and compares it against
//! an expected stream, recording mismatches instead of panicking so a
//! campaign can run to completion and report everything at once (the
//! way the paper's testbenches accumulate coverage/failures).

use crate::In;
use craft_sim::{Component, TickCtx};
use std::cell::RefCell;
use std::fmt::Debug;
use std::rc::Rc;

/// What the scoreboard observed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScoreboardResult<T> {
    /// Length of the expected stream this scoreboard was built with.
    pub expected: u64,
    /// Messages that matched expectations.
    pub matched: u64,
    /// (index, expected, actual) triples for mismatches.
    pub mismatches: Vec<(u64, T, T)>,
    /// Messages that arrived beyond the expected stream.
    pub unexpected: u64,
}

impl<T> ScoreboardResult<T> {
    /// True when everything expected arrived, in order, with nothing
    /// extra.
    pub fn passed(&self, expected_len: usize) -> bool {
        self.mismatches.is_empty() && self.unexpected == 0 && self.matched == expected_len as u64
    }

    /// Expected messages that never arrived — the tail a hang or a
    /// token-loss fault truncated. Distinguishes "stream stopped short"
    /// (missing > 0, everything received was right) from "stream was
    /// corrupted" (mismatches), so a failed campaign run reports a
    /// precise reason rather than a bare failed verdict.
    pub fn missing(&self) -> u64 {
        self.expected
            .saturating_sub(self.matched + self.mismatches.len() as u64)
    }
}

/// Shared handle for reading a scoreboard after the run.
pub type ScoreboardHandle<T> = Rc<RefCell<ScoreboardResult<T>>>;

/// Stream-comparing checker component.
pub struct Scoreboard<T> {
    name: String,
    input: In<T>,
    expected: Vec<T>,
    cursor: usize,
    result: ScoreboardHandle<T>,
}

impl<T: Clone + PartialEq + Debug + 'static> Scoreboard<T> {
    /// Builds a scoreboard expecting exactly `expected`, in order.
    pub fn new(name: impl Into<String>, input: In<T>, expected: Vec<T>) -> Self {
        let expected_len = expected.len() as u64;
        Scoreboard {
            name: name.into(),
            input,
            expected,
            cursor: 0,
            result: Rc::new(RefCell::new(ScoreboardResult {
                expected: expected_len,
                matched: 0,
                mismatches: Vec::new(),
                unexpected: 0,
            })),
        }
    }

    /// Handle to read the verdict after simulation.
    pub fn handle(&self) -> ScoreboardHandle<T> {
        Rc::clone(&self.result)
    }
}

impl<T: Clone + PartialEq + Debug + 'static> Component for Scoreboard<T> {
    fn name(&self) -> &str {
        &self.name
    }

    /// A scoreboard is a pure consumer: with nothing committed or
    /// staged on its tap it observes nothing, so its ticks may be
    /// elided until the DUT pushes again (wire the tap's
    /// [`In::set_wake_token`](crate::In::set_wake_token) to the same
    /// token registered with the kernel).
    fn is_quiescent(&self) -> bool {
        !self.input.has_pending()
    }

    fn tick(&mut self, _ctx: &mut TickCtx<'_>) {
        while let Some(actual) = self.input.pop_nb() {
            let mut r = self.result.borrow_mut();
            match self.expected.get(self.cursor) {
                Some(exp) if *exp == actual => r.matched += 1,
                Some(exp) => r.mismatches.push((self.cursor as u64, exp.clone(), actual)),
                None => r.unexpected += 1,
            }
            self.cursor += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{channel, ChannelKind, StallInjector};
    use craft_sim::{ClockSpec, Picoseconds, Simulator};

    fn run_stream(send: Vec<u32>, expect: Vec<u32>, stall: bool) -> ScoreboardResult<u32> {
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("c", Picoseconds::new(909)));
        let (mut tx, rx, h) = channel::<u32>("dut", ChannelKind::Buffer(2));
        sim.add_sequential(clk, h.sequential());
        if stall {
            h.inject_stalls(StallInjector::bernoulli(0.4, 7));
        }
        let expected_len = expect.len();
        let sb = Scoreboard::new("sb", rx, expect);
        let handle = sb.handle();
        sim.add_component(clk, sb);
        let mut i = 0;
        for _ in 0..send.len() * 8 + 50 {
            if i < send.len() && tx.push_nb(send[i]).is_ok() {
                i += 1;
            }
            sim.run_cycles(clk, 1);
        }
        let _ = expected_len;
        let out = handle.borrow().clone();
        out
    }

    #[test]
    fn clean_stream_passes() {
        let r = run_stream(vec![1, 2, 3, 4], vec![1, 2, 3, 4], false);
        assert!(r.passed(4));
    }

    #[test]
    fn corruption_is_pinpointed() {
        let r = run_stream(vec![1, 99, 3], vec![1, 2, 3], false);
        assert_eq!(r.matched, 2);
        assert_eq!(r.mismatches, vec![(1, 2, 99)]);
        assert!(!r.passed(3));
    }

    #[test]
    fn extra_messages_flagged() {
        let r = run_stream(vec![1, 2, 3, 4, 5], vec![1, 2, 3], false);
        assert_eq!(r.unexpected, 2);
        assert!(!r.passed(3));
        assert_eq!(r.missing(), 0);
    }

    /// A truncated stream (a hang cut the run short) reports exactly
    /// how many tail messages never arrived, distinguishing "stopped
    /// short" from "corrupted".
    #[test]
    fn truncated_stream_reports_missing_tail() {
        let r = run_stream(vec![1, 2], vec![1, 2, 3, 4, 5], false);
        assert!(!r.passed(5));
        assert_eq!(r.matched, 2);
        assert_eq!(r.missing(), 3);
        assert!(r.mismatches.is_empty());

        // Mismatched messages still count as received: only the unseen
        // tail is missing.
        let r = run_stream(vec![1, 99], vec![1, 2, 3], false);
        assert_eq!(r.missing(), 1);
        assert_eq!(r.mismatches.len(), 1);
    }

    #[test]
    fn stalls_do_not_cause_false_failures() {
        let data: Vec<u32> = (0..40).collect();
        let r = run_stream(data.clone(), data, true);
        assert!(r.passed(40), "{r:?}");
    }

    /// Bursty DUT traffic with the scoreboard quiescence-gated:
    /// results must be bit-identical to the ungated run, while the
    /// gated kernel provably skips ticks during the idle gaps.
    #[test]
    fn gated_scoreboard_result_bit_identical() {
        let run = |gating: bool| {
            let mut sim = Simulator::new();
            let clk = sim.add_clock(ClockSpec::new("c", Picoseconds::new(909)));
            sim.set_gating(gating);
            let (mut tx, rx, h) = channel::<u32>("dut", ChannelKind::Buffer(2));
            let token = craft_sim::ActivityToken::new();
            rx.set_wake_token(token.clone());
            sim.add_sequential_gated(clk, h.sequential(), h.commit_token());
            let expect: Vec<u32> = (0..24).collect();
            let sb = Scoreboard::new("sb", rx, expect);
            let handle = sb.handle();
            let id = sim.add_component(clk, sb);
            sim.set_wake_token(id, token);
            // Bursts of 4 messages separated by long idle gaps.
            let mut sent = 0u32;
            for burst in 0..6 {
                let _ = burst;
                let goal = sent + 4;
                while sent < goal {
                    if tx.push_nb(sent).is_ok() {
                        sent += 1;
                    }
                    sim.run_cycles(clk, 1);
                }
                sim.run_cycles(clk, 50);
            }
            let out = handle.borrow().clone();
            (out, sim.ticks_skipped())
        };
        let (gated, skipped_on) = run(true);
        let (ungated, skipped_off) = run(false);
        assert_eq!(gated, ungated, "gating must not change observations");
        assert!(gated.passed(24), "{gated:?}");
        assert!(skipped_on > 100, "idle gaps must be elided: {skipped_on}");
        assert_eq!(skipped_off, 0);
    }
}
