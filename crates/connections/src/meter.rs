//! Timing models for transaction-level components (§2.3, Fig. 3).
//!
//! The paper contrasts two SystemC simulation models of the handshake
//! routines:
//!
//! * **signal-accurate** — each port routine contains a `wait()` to
//!   separate the set and delayed clear of `valid`/`ready`. A SystemC
//!   simulator executes these waits *sequentially* in the issuing
//!   process, so a loop touching many ports accumulates one extra cycle
//!   per port operation — elapsed-cycle error grows with port count.
//! * **sim-accurate** — handshake completion is moved to helper
//!   threads draining per-port buffers, so the main process pays no
//!   extra cycles and elapsed cycles match HLS-generated RTL.
//!
//! [`Transactor`] reproduces exactly this cost model: in
//! [`TimingModel::SignalAccurate`] every port operation issued through
//! it charges one debt cycle, which the owning component must burn
//! before doing further work; in [`TimingModel::SimAccurate`] all
//! operations are free.

use crate::{In, Out};
use std::fmt;

/// Which SystemC simulation semantics a transaction-level component
/// emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimingModel {
    /// Helper-thread buffered handshakes: cycle counts match RTL.
    SimAccurate,
    /// In-thread `wait()` per port routine: cycle counts inflate with
    /// the number of port operations per loop iteration.
    SignalAccurate,
}

impl fmt::Display for TimingModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimingModel::SimAccurate => write!(f, "sim-accurate"),
            TimingModel::SignalAccurate => write!(f, "signal-accurate"),
        }
    }
}

/// Port-operation facade that accounts handshake cycles according to a
/// [`TimingModel`].
///
/// A transaction-level component owns one `Transactor` and funnels all
/// its port operations through it. At the top of every tick it calls
/// [`Transactor::busy`]; when that returns `true` the cycle is consumed
/// by a pending handshake `wait()` and the component must return
/// immediately.
///
/// ```
/// use craft_connections::{channel, ChannelKind, TimingModel, Transactor};
/// let (mut tx, _rx, _h) = channel::<u8>("c", ChannelKind::Buffer(4));
/// let mut t = Transactor::new(TimingModel::SignalAccurate);
/// assert!(!t.busy());
/// let _ = t.push_nb(&mut tx, 5);
/// assert!(t.busy()); // the wait() cycle after the push
/// assert!(!t.busy());
/// ```
#[derive(Debug)]
pub struct Transactor {
    model: TimingModel,
    debt: u64,
    /// Total port operations issued (for diagnostics).
    ops: u64,
}

impl Transactor {
    /// Creates a transactor with the given timing model.
    pub fn new(model: TimingModel) -> Self {
        Transactor {
            model,
            debt: 0,
            ops: 0,
        }
    }

    /// The timing model in force.
    pub fn model(&self) -> TimingModel {
        self.model
    }

    /// Consumes one pending handshake-wait cycle if any. Components
    /// call this first in `tick` and skip all work when it returns
    /// `true`.
    pub fn busy(&mut self) -> bool {
        if self.debt > 0 {
            self.debt -= 1;
            true
        } else {
            false
        }
    }

    /// Pending wait cycles.
    pub fn debt(&self) -> u64 {
        self.debt
    }

    /// Total port operations issued through this transactor.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    fn charge(&mut self) {
        self.ops += 1;
        if self.model == TimingModel::SignalAccurate {
            self.debt += 1;
        }
    }

    /// Non-blocking pop through the cost model. Failed attempts charge
    /// too: the port routine runs its `wait()` regardless of `valid`.
    pub fn pop_nb<T>(&mut self, port: &mut In<T>) -> Option<T> {
        let r = port.pop_nb();
        self.charge();
        r
    }

    /// Non-blocking push through the cost model.
    ///
    /// # Errors
    /// Propagates the channel's backpressure, returning the message.
    pub fn push_nb<T>(&mut self, port: &mut Out<T>, v: T) -> Result<(), T> {
        let r = port.push_nb(v);
        self.charge();
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{channel, ChannelKind};

    #[test]
    fn sim_accurate_is_free() {
        let (mut tx, mut rx, h) = channel::<u32>("c", ChannelKind::Buffer(4));
        let mut t = Transactor::new(TimingModel::SimAccurate);
        for i in 0..4 {
            assert!(!t.busy());
            let _ = t.push_nb(&mut tx, i);
        }
        h.sequential().borrow_mut().commit();
        assert!(!t.busy());
        assert_eq!(t.pop_nb(&mut rx), Some(0));
        assert_eq!(t.debt(), 0);
        assert_eq!(t.ops(), 5);
    }

    #[test]
    fn signal_accurate_charges_every_op() {
        let (mut tx, mut rx, _h) = channel::<u32>("c", ChannelKind::Buffer(1));
        let mut t = Transactor::new(TimingModel::SignalAccurate);
        let _ = t.push_nb(&mut tx, 1);
        // A failed pop on the (still registered-empty) channel charges too.
        assert_eq!(t.pop_nb(&mut rx), None);
        assert_eq!(t.debt(), 2);
        assert!(t.busy());
        assert!(t.busy());
        assert!(!t.busy());
    }
}
