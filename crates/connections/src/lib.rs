//! # craft-connections — latency-insensitive channels
//!
//! Rust reproduction of **Connections**, the LI-channel library at the
//! heart of the DAC'18 modular VLSI flow (§2.3 of the paper). The three
//! headline contributions are all here:
//!
//! 1. **Ports decoupled from channels** — components own [`In`]/[`Out`]
//!    terminals and any [`ChannelKind`] can be wired in later without
//!    touching component code.
//! 2. **A sim-accurate timing model** — [`Transactor`] +
//!    [`TimingModel`] reproduce the paper's signal-accurate vs
//!    sim-accurate cost semantics (Fig. 3).
//! 3. **Stall injection** — [`StallInjector`] randomly withholds
//!    `valid` on any channel to flush out timing-interaction corner
//!    cases without modifying designs or testbenches.
//!
//! On top of these, the robustness layer adds seeded **fault
//! injection** ([`FaultConfig`] / [`ChannelHandle::inject_faults`]:
//! payload bit-flips, token drop/duplication, stuck handshake wires)
//! and a **reliable LI transport** ([`reliable_link`]) that wraps any
//! channel with sequence numbers, checksums and go-back-N retransmit so
//! the wrapped stream is bit-identical to the bare one under any
//! recoverable fault schedule.
//!
//! ## Example
//!
//! ```
//! use craft_connections::{channel, ChannelKind};
//! use craft_sim::{ClockSpec, Picoseconds, Simulator};
//!
//! let mut sim = Simulator::new();
//! let clk = sim.add_clock(ClockSpec::new("core", Picoseconds::from_ghz(1.0)));
//! let (mut tx, mut rx, handle) = channel::<u32>("dut.req", ChannelKind::Buffer(2));
//! sim.add_sequential(clk, handle.sequential());
//!
//! tx.push_nb(42).expect("empty buffer accepts a push");
//! sim.run_cycles(clk, 1); // commit makes the message visible
//! assert_eq!(rx.pop_nb(), Some(42));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
mod fault;
mod lanebank;
mod mailbox;
mod meter;
mod packet;
mod port;
mod reliable;
mod retime;
mod scoreboard;
mod stall;

pub use channel::{channel, ChannelHandle, ChannelKind, ChannelStats};
pub use fault::{FaultConfig, FaultInjector, FaultStats, TokenFaults};
pub use lanebank::{FaultLaneBank, LaneSet, LaneStatus};
pub use mailbox::{spsc, MailboxHub, RemoteRxEnd, RemoteTxEnd, SpscReceiver, SpscSender, WireMsg};
pub use meter::{TimingModel, Transactor};
pub use packet::{DePacketizer, Flit, Packetizer, Payload};
pub use port::{In, Out};
pub use reliable::{
    reliable_link, ReliableConfig, ReliableLink, ReliablePacket, ReliableRx, ReliableStats,
    ReliableTx,
};
pub use retime::{retiming_latency, Retimer};
pub use scoreboard::{Scoreboard, ScoreboardHandle, ScoreboardResult};
pub use stall::StallInjector;
