//! Cross-worker channel endpoints for sharded parallel simulation.
//!
//! When an LI channel's producer and consumer land in different worker
//! threads, the channel is split: the producer's worker keeps the
//! transmit half (occupancy accounting + fault injection), the
//! consumer's worker keeps the receive half (the visible queue), and
//! tokens travel between them through a bounded single-producer
//! single-consumer mailbox. The epoch protocol (see
//! `craft_sim::parallel`) guarantees a message enqueued during one
//! instant's commit phase is only *observed* at the next instant — the
//! one cycle of slack that a capacity ≥ 1 LI buffer already provides —
//! so splitting never changes simulated behaviour.
//!
//! The ring is lock-free on the fast path in the sense that matters
//! here: head and tail are atomics and the slot a side touches is, by
//! the SPSC discipline, never contended. Slots still hold a `Mutex`
//! (both crates `forbid(unsafe_code)`, so an `UnsafeCell` ring is off
//! the table); every `lock()` is uncontended and therefore a plain
//! atomic exchange. Capacity bounds come from the protocol — at most
//! `capacity + 2` messages are ever in flight per epoch — so overflow
//! panics rather than blocks.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Default ring capacity: far above the per-epoch in-flight bound of
/// any split channel (channel capacity + duplicate echo + stuck-wire
/// delta), small enough to stay cache-resident.
const RING_SLOTS: usize = 256;

struct Ring<T> {
    slots: Vec<Mutex<Option<T>>>,
    /// Next slot the producer writes. Only the producer advances it.
    head: AtomicUsize,
    /// Next slot the consumer reads. Only the consumer advances it.
    tail: AtomicUsize,
}

impl<T> Ring<T> {
    fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "mailbox capacity must be nonzero");
        Ring {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }
}

/// Producer half of a bounded SPSC mailbox.
pub struct SpscSender<T> {
    ring: Arc<Ring<T>>,
}

/// Consumer half of a bounded SPSC mailbox.
pub struct SpscReceiver<T> {
    ring: Arc<Ring<T>>,
}

/// Creates a bounded SPSC mailbox with `capacity` slots.
///
/// # Panics
/// Panics if `capacity` is zero.
pub fn spsc<T>(capacity: usize) -> (SpscSender<T>, SpscReceiver<T>) {
    let ring = Arc::new(Ring::new(capacity));
    (
        SpscSender {
            ring: Arc::clone(&ring),
        },
        SpscReceiver { ring },
    )
}

impl<T> SpscSender<T> {
    /// Enqueues `v`.
    ///
    /// # Panics
    /// Panics if the ring is full — the epoch protocol bounds in-flight
    /// messages well below capacity, so a full ring is a protocol bug,
    /// not backpressure.
    pub fn send(&self, v: T) {
        let head = self.ring.head.load(Ordering::Relaxed);
        let tail = self.ring.tail.load(Ordering::Acquire);
        assert!(
            head.wrapping_sub(tail) < self.ring.slots.len(),
            "mailbox overflow: epoch protocol violated"
        );
        let slot = &self.ring.slots[head % self.ring.slots.len()];
        let prev = slot.lock().unwrap().replace(v);
        debug_assert!(prev.is_none(), "mailbox slot reused before drain");
        self.ring
            .head
            .store(head.wrapping_add(1), Ordering::Release);
    }
}

impl<T> SpscReceiver<T> {
    /// Dequeues the oldest message, or `None` when the ring is empty.
    pub fn recv(&self) -> Option<T> {
        let tail = self.ring.tail.load(Ordering::Relaxed);
        let head = self.ring.head.load(Ordering::Acquire);
        if tail == head {
            return None;
        }
        let slot = &self.ring.slots[tail % self.ring.slots.len()];
        let v = slot.lock().unwrap().take();
        debug_assert!(v.is_some(), "mailbox slot published empty");
        self.ring
            .tail
            .store(tail.wrapping_add(1), Ordering::Release);
        v
    }
}

/// A message on the wire of a split channel: a data token or a
/// stuck-valid state change (delta-encoded — sent only on transitions).
/// A duplicated token is simply sent twice.
#[derive(Debug)]
pub enum WireMsg<T> {
    /// A committed data token.
    Token(T),
    /// The transmit half's stuck-valid wire changed state.
    ValidStuck(bool),
}

/// Transmit-side endpoint of a split channel: sends committed tokens
/// downstream, receives pop acknowledgements back (each ack frees one
/// slot of the producer-visible occupancy).
pub struct RemoteTxEnd<T> {
    /// Data path to the consumer's worker.
    pub data: SpscSender<WireMsg<T>>,
    /// Acknowledgement path back from the consumer's worker.
    pub acks: SpscReceiver<()>,
}

/// Receive-side endpoint of a split channel.
pub struct RemoteRxEnd<T> {
    /// Data path from the producer's worker.
    pub data: SpscReceiver<WireMsg<T>>,
    /// Acknowledgement path back to the producer's worker.
    pub acks: SpscSender<()>,
}

enum Pending<T> {
    TxWaiting(RemoteTxEnd<T>),
    RxWaiting(RemoteRxEnd<T>),
}

/// Registry of named split-channel endpoints, shared by all workers of
/// a parallel run.
///
/// Each split channel has exactly one transmit and one receive owner;
/// whichever worker asks first creates both endpoint pairs and parks
/// the counterpart under the channel name for the other worker to
/// claim. Claiming the same side twice is a wiring bug and panics.
pub struct MailboxHub<T> {
    inner: Arc<Mutex<HashMap<String, Pending<T>>>>,
}

impl<T> Clone for MailboxHub<T> {
    fn clone(&self) -> Self {
        MailboxHub {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Default for MailboxHub<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> MailboxHub<T> {
    /// An empty hub.
    pub fn new() -> Self {
        MailboxHub {
            inner: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    fn make_pair() -> (RemoteTxEnd<T>, RemoteRxEnd<T>) {
        let (data_tx, data_rx) = spsc(RING_SLOTS);
        let (ack_tx, ack_rx) = spsc(RING_SLOTS);
        (
            RemoteTxEnd {
                data: data_tx,
                acks: ack_rx,
            },
            RemoteRxEnd {
                data: data_rx,
                acks: ack_tx,
            },
        )
    }

    /// Claims the transmit endpoint of channel `name`.
    ///
    /// # Panics
    /// Panics if the transmit side of `name` was already claimed.
    pub fn take_tx(&self, name: &str) -> RemoteTxEnd<T> {
        let mut map = self.inner.lock().unwrap();
        match map.remove(name) {
            Some(Pending::TxWaiting(tx)) => tx,
            Some(Pending::RxWaiting(_)) => {
                panic!("split channel `{name}`: tx endpoint claimed twice")
            }
            None => {
                let (tx, rx) = Self::make_pair();
                map.insert(name.to_string(), Pending::RxWaiting(rx));
                tx
            }
        }
    }

    /// Claims the receive endpoint of channel `name`.
    ///
    /// # Panics
    /// Panics if the receive side of `name` was already claimed.
    pub fn take_rx(&self, name: &str) -> RemoteRxEnd<T> {
        let mut map = self.inner.lock().unwrap();
        match map.remove(name) {
            Some(Pending::RxWaiting(rx)) => rx,
            Some(Pending::TxWaiting(_)) => {
                panic!("split channel `{name}`: rx endpoint claimed twice")
            }
            None => {
                let (tx, rx) = Self::make_pair();
                map.insert(name.to_string(), Pending::TxWaiting(tx));
                rx
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spsc_fifo_order_across_threads() {
        let (tx, rx) = spsc::<u64>(8);
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..10_000u64 {
                    // Bounded ring: wait for space by polling occupancy
                    // through send's own assertion window.
                    loop {
                        let head = tx.ring.head.load(Ordering::Relaxed);
                        let tail = tx.ring.tail.load(Ordering::Acquire);
                        if head.wrapping_sub(tail) < tx.ring.slots.len() {
                            break;
                        }
                        std::thread::yield_now();
                    }
                    tx.send(i);
                }
            });
            let mut expect = 0u64;
            while expect < 10_000 {
                if let Some(v) = rx.recv() {
                    assert_eq!(v, expect);
                    expect += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        });
    }

    #[test]
    fn spsc_empty_recv_is_none() {
        let (tx, rx) = spsc::<u32>(4);
        assert!(rx.recv().is_none());
        tx.send(1);
        assert_eq!(rx.recv(), Some(1));
        assert!(rx.recv().is_none());
    }

    #[test]
    #[should_panic(expected = "mailbox overflow")]
    fn spsc_overflow_panics() {
        let (tx, _rx) = spsc::<u32>(2);
        tx.send(1);
        tx.send(2);
        tx.send(3);
    }

    #[test]
    fn hub_pairs_endpoints_by_name() {
        let hub = MailboxHub::<u32>::new();
        let tx = hub.take_tx("a->b");
        let rx = hub.take_rx("a->b");
        tx.data.send(WireMsg::Token(7));
        match rx.data.recv() {
            Some(WireMsg::Token(7)) => {}
            other => panic!("expected Token(7), got {other:?}"),
        }
        rx.acks.send(());
        assert!(tx.acks.recv().is_some());
    }

    #[test]
    fn hub_order_of_claims_is_irrelevant() {
        let hub = MailboxHub::<u32>::new();
        let rx = hub.take_rx("x");
        let tx = hub.take_tx("x");
        tx.data.send(WireMsg::ValidStuck(true));
        assert!(matches!(rx.data.recv(), Some(WireMsg::ValidStuck(true))));
    }

    #[test]
    #[should_panic(expected = "claimed twice")]
    fn hub_double_claim_panics() {
        let hub = MailboxHub::<u32>::new();
        let _a = hub.take_tx("dup");
        let _b = hub.take_tx("dup");
    }
}
