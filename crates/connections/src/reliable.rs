//! Reliable LI transport: detect-and-retry over faulty channels.
//!
//! [`reliable_link`] wraps any LI channel pair with a go-back-N
//! protocol: every payload is framed into a [`ReliablePacket`] carrying
//! a sequence number and a checksum, the transmitter keeps a bounded
//! replay buffer of unacknowledged frames, and a timeout with no
//! acknowledgement progress triggers retransmission from the oldest
//! unacked frame. The receiver delivers frames strictly in sequence,
//! dropping corrupted (checksum mismatch), duplicate (seq below
//! expected) and out-of-order (seq above expected) frames, and answers
//! every arrival with a cumulative acknowledgement.
//!
//! The contract — checked end-to-end by the `reliable_proptest`
//! integration test — is *stream preservation*: under any stall
//! schedule and any recoverable fault schedule
//! ([`crate::FaultConfig::is_recoverable`]), the wrapped link delivers
//! the bit-identical message stream of a bare channel, just later.
//! Unrecoverable faults (stuck wires, certain loss) end in a diagnosed
//! hang via the kernel watchdog instead of silent corruption.
//!
//! Acks are themselves checksummed [`ReliablePacket`]s: a corrupted
//! cumulative ack could otherwise falsely retire frames that never
//! arrived, which is the one failure mode retransmission cannot undo.

use crate::channel::{channel, ChannelHandle, ChannelKind};
use crate::packet::Payload;
use crate::port::{In, Out};
use craft_sim::{ClockId, Component, ComponentId, Simulator, Telemetry, TickCtx};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Tuning knobs for a reliable link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReliableConfig {
    /// Maximum unacknowledged frames in flight (replay-buffer bound).
    pub window: usize,
    /// Cycles without acknowledgement progress before the transmitter
    /// retransmits everything from the oldest unacked frame.
    pub timeout: u64,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        ReliableConfig {
            window: 8,
            timeout: 32,
        }
    }
}

/// Counters shared by the two endpoints of a reliable link.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReliableStats {
    /// Fresh frames transmitted (excludes retransmissions).
    pub sent: u64,
    /// Frames retransmitted after a timeout.
    pub retransmits: u64,
    /// Payloads delivered in sequence to the downstream channel.
    pub delivered: u64,
    /// Frames discarded at the receiver for checksum mismatch.
    pub checksum_drops: u64,
    /// Frames discarded as duplicates (seq below expected).
    pub dup_drops: u64,
    /// Frames discarded as out-of-order (seq above expected, go-back-N).
    pub gap_drops: u64,
    /// Acknowledgements transmitted.
    pub acks_sent: u64,
    /// Acknowledgements discarded at the transmitter for checksum
    /// mismatch.
    pub ack_checksum_drops: u64,
}

/// Splitmix-flavoured mixing checksum over a frame's sequence number
/// and payload words. Not cryptographic; any single bit-flip anywhere
/// in the frame (including the checksum word itself) is detected, and
/// multi-flip collisions are ~2⁻⁶⁴.
fn checksum(seq: u64, words: &[u64]) -> u64 {
    let mut h = 0x9e37_79b9_7f4a_7c15u64 ^ seq.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    for (i, w) in words.iter().enumerate() {
        h ^= w.wrapping_add(i as u64).wrapping_mul(0x94d0_49bb_1331_11eb);
        h = h.rotate_left(27).wrapping_mul(0x2545_f491_4f6c_dd1d);
    }
    h
}

/// One frame on the wire: `[seq, payload words…, checksum]`.
///
/// Data frames carry the serialized inner payload; acknowledgement
/// frames carry no payload words and use `seq` as the cumulative
/// next-expected sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReliablePacket {
    /// Sequence number (data) or cumulative next-expected (ack).
    pub seq: u64,
    /// Serialized inner payload; empty for acknowledgements.
    pub words: Vec<u64>,
    /// Mixing checksum over `seq` and `words`.
    pub checksum: u64,
}

impl ReliablePacket {
    /// Frames a payload under sequence number `seq`.
    pub fn frame<T: Payload>(seq: u64, value: &T) -> Self {
        let words = value.to_words();
        let checksum = checksum(seq, &words);
        ReliablePacket {
            seq,
            words,
            checksum,
        }
    }

    /// A cumulative acknowledgement: "deliver me everything from
    /// `next_expected` on".
    pub fn ack(next_expected: u64) -> Self {
        ReliablePacket {
            seq: next_expected,
            words: Vec::new(),
            checksum: checksum(next_expected, &[]),
        }
    }

    /// True when the stored checksum matches the frame contents.
    pub fn verify(&self) -> bool {
        checksum(self.seq, &self.words) == self.checksum
    }
}

impl Payload for ReliablePacket {
    fn to_words(&self) -> Vec<u64> {
        let mut v = Vec::with_capacity(self.words.len() + 2);
        v.push(self.seq);
        v.extend_from_slice(&self.words);
        v.push(self.checksum);
        v
    }

    /// Defensive: a frame too short to hold `[seq, checksum]` (only
    /// reachable through external corruption) reassembles into a packet
    /// that can never [`verify`](Self::verify) instead of panicking —
    /// the transport treats it as one more checksum drop.
    fn from_words(words: &[u64]) -> Self {
        if words.len() < 2 {
            return ReliablePacket {
                seq: 0,
                words: Vec::new(),
                checksum: !0,
            };
        }
        ReliablePacket {
            seq: words[0],
            words: words[1..words.len() - 1].to_vec(),
            checksum: words[words.len() - 1],
        }
    }
}

/// Transmitter endpoint: frames payloads from `input` onto the data
/// channel, retires acked frames, retransmits on timeout.
pub struct ReliableTx<T: Payload> {
    name: String,
    cfg: ReliableConfig,
    input: In<T>,
    data_out: Out<ReliablePacket>,
    ack_in: In<ReliablePacket>,
    /// Next fresh sequence number to assign.
    next_seq: u64,
    /// Oldest unacknowledged sequence number; `replay[0]` carries it.
    base: u64,
    replay: VecDeque<ReliablePacket>,
    /// Cycles since the last send/retire event while frames are
    /// outstanding; crossing `cfg.timeout` starts a go-back-N resend.
    since_event: u64,
    /// In-progress resend cursor into `replay`.
    resend_at: Option<usize>,
    stats: Rc<RefCell<ReliableStats>>,
}

impl<T: Payload> Component for ReliableTx<T> {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _ctx: &mut TickCtx<'_>) {
        let mut event = false;
        // 1. Retire frames covered by an arriving cumulative ack.
        if let Some(ack) = self.ack_in.pop_nb() {
            if !ack.verify() {
                self.stats.borrow_mut().ack_checksum_drops += 1;
            } else {
                // Clamp: a corrupted-but-colliding ack beyond next_seq
                // must not retire frames that were never sent.
                let acked = ack.seq.min(self.next_seq);
                if acked > self.base {
                    let retired = (acked - self.base) as usize;
                    self.replay.drain(..retired);
                    self.base = acked;
                    self.resend_at = self
                        .resend_at
                        .map(|i| i.saturating_sub(retired))
                        .filter(|&i| i < self.replay.len());
                    event = true;
                }
            }
        }
        // 2. One data push per cycle; retransmission takes priority
        // over admitting fresh traffic.
        let mut pushed = false;
        if let Some(i) = self.resend_at {
            let pkt = self.replay[i].clone();
            if self.data_out.push_nb(pkt).is_ok() {
                self.stats.borrow_mut().retransmits += 1;
                self.resend_at = (i + 1 < self.replay.len()).then_some(i + 1);
                event = true;
                pushed = true;
            }
        }
        if !pushed
            && self.resend_at.is_none()
            && self.replay.len() < self.cfg.window
            && self.data_out.can_push()
        {
            if let Some(v) = self.input.pop_nb() {
                let pkt = ReliablePacket::frame(self.next_seq, &v);
                self.replay.push_back(pkt.clone());
                let ok = self.data_out.push_nb(pkt).is_ok();
                debug_assert!(ok, "push guarded by can_push");
                self.next_seq += 1;
                self.stats.borrow_mut().sent += 1;
                event = true;
            }
        }
        // 3. Timeout bookkeeping: only armed while frames are
        // outstanding and no resend is already in progress.
        if self.replay.is_empty() || event {
            self.since_event = 0;
        } else {
            self.since_event += 1;
            if self.since_event > self.cfg.timeout && self.resend_at.is_none() {
                self.resend_at = Some(0);
                self.since_event = 0;
            }
        }
    }

    fn is_quiescent(&self) -> bool {
        self.replay.is_empty() && !self.input.has_pending() && !self.ack_in.has_pending()
    }

    fn wait_reason(&self) -> Option<String> {
        Some(format!(
            "reliable-tx: base={} next={} outstanding={} since_event={}{}",
            self.base,
            self.next_seq,
            self.replay.len(),
            self.since_event,
            match self.resend_at {
                Some(i) => format!(" resending[{i}]"),
                None => String::new(),
            }
        ))
    }
}

/// Receiver endpoint: verifies, deduplicates and reorders-by-rejection,
/// delivering the payload stream in sequence and acking cumulatively.
pub struct ReliableRx<T: Payload> {
    name: String,
    data_in: In<ReliablePacket>,
    out: Out<T>,
    ack_out: Out<ReliablePacket>,
    /// Next sequence number to deliver downstream.
    expected: u64,
    /// An ack is owed (set on every frame arrival, cleared on send).
    ack_pending: bool,
    stats: Rc<RefCell<ReliableStats>>,
}

impl<T: Payload> Component for ReliableRx<T> {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _ctx: &mut TickCtx<'_>) {
        // Only consume a frame when the delivery slot is free, so an
        // in-sequence payload is never popped and then lost to
        // downstream backpressure.
        if self.out.can_push() {
            if let Some(pkt) = self.data_in.pop_nb() {
                let mut stats = self.stats.borrow_mut();
                if !pkt.verify() {
                    stats.checksum_drops += 1;
                } else if pkt.seq == self.expected {
                    let ok = self.out.push_nb(T::from_words(&pkt.words)).is_ok();
                    debug_assert!(ok, "push guarded by can_push");
                    self.expected += 1;
                    stats.delivered += 1;
                } else if pkt.seq < self.expected {
                    stats.dup_drops += 1;
                } else {
                    // Gap: an earlier frame was lost; go-back-N will
                    // resend it, so buffering this one buys nothing.
                    stats.gap_drops += 1;
                }
                self.ack_pending = true;
            }
        }
        if self.ack_pending
            && self
                .ack_out
                .push_nb(ReliablePacket::ack(self.expected))
                .is_ok()
        {
            self.ack_pending = false;
            self.stats.borrow_mut().acks_sent += 1;
        }
    }

    fn is_quiescent(&self) -> bool {
        !self.data_in.has_pending() && !self.ack_pending
    }

    fn wait_reason(&self) -> Option<String> {
        Some(format!(
            "reliable-rx: expected={} ack_pending={}",
            self.expected, self.ack_pending
        ))
    }
}

/// An unregistered reliable link: the two endpoint components plus the
/// internal data/ack channels, returned by [`reliable_link`].
///
/// Call [`register`](Self::register) to wire everything into a
/// simulator, or register the parts by hand for custom clocking.
pub struct ReliableLink<T: Payload> {
    /// Transmitter endpoint (owns the upstream `In` port).
    pub tx: ReliableTx<T>,
    /// Receiver endpoint (owns the downstream `Out` port).
    pub rx: ReliableRx<T>,
    /// Handle to the internal data channel (`<name>.data`) — the place
    /// to [`inject_faults`](ChannelHandle::inject_faults).
    pub data: ChannelHandle<ReliablePacket>,
    /// Handle to the internal acknowledgement channel (`<name>.ack`).
    pub ack: ChannelHandle<ReliablePacket>,
    /// Shared protocol counters.
    pub stats: Rc<RefCell<ReliableStats>>,
}

/// A [`ReliableLink`] after [`ReliableLink::register`]: what remains
/// accessible once the endpoints live inside the simulator.
pub struct RegisteredLink {
    /// Transmitter component id.
    pub tx: ComponentId,
    /// Receiver component id.
    pub rx: ComponentId,
    /// Internal data channel handle (fault-injection point).
    pub data: ChannelHandle<ReliablePacket>,
    /// Internal acknowledgement channel handle.
    pub ack: ChannelHandle<ReliablePacket>,
    /// Shared protocol counters.
    pub stats: Rc<RefCell<ReliableStats>>,
}

impl RegisteredLink {
    /// Snapshot of the protocol counters.
    pub fn stats(&self) -> ReliableStats {
        self.stats.borrow().clone()
    }

    /// Registers the protocol counters (and both internal channels) as
    /// polled telemetry probes under `path`: `<path>.sent`,
    /// `.retransmits`, `.delivered`, `.checksum_drops`, `.dup_drops`,
    /// `.gap_drops`, `.acks_sent`, `.ack_checksum_drops`, plus the
    /// channel probe sets under `<path>.data` and `<path>.ack`.
    /// Evaluated only at snapshot time (observation-only).
    pub fn publish_telemetry(&self, tel: &Telemetry, path: &str) {
        macro_rules! probe_field {
            ($field:ident) => {
                let s = Rc::clone(&self.stats);
                tel.probe(format!("{path}.{}", stringify!($field)), move || {
                    s.borrow().$field
                });
            };
        }
        probe_field!(sent);
        probe_field!(retransmits);
        probe_field!(delivered);
        probe_field!(checksum_drops);
        probe_field!(dup_drops);
        probe_field!(gap_drops);
        probe_field!(acks_sent);
        probe_field!(ack_checksum_drops);
        self.data.publish_telemetry(tel, &format!("{path}.data"));
        self.ack.publish_telemetry(tel, &format!("{path}.ack"));
    }
}

impl<T: Payload> ReliableLink<T> {
    /// Registers both endpoints as components and both internal
    /// channels as sequentials on `clk`.
    pub fn register(self, sim: &mut Simulator, clk: ClockId) -> RegisteredLink {
        let tx = sim.add_component(clk, self.tx);
        let rx = sim.add_component(clk, self.rx);
        sim.add_sequential(clk, self.data.sequential());
        sim.add_sequential(clk, self.ack.sequential());
        RegisteredLink {
            tx,
            rx,
            data: self.data,
            ack: self.ack,
            stats: self.stats,
        }
    }
}

/// Builds a reliable link carrying payloads popped from `upstream` to
/// pushes on `downstream`, with internal channels `<name>.data` and
/// `<name>.ack` of the given kinds.
///
/// The wrapped stream is delivered bit-identically and in order under
/// any stall schedule and any recoverable fault schedule injected on
/// the internal channels; the price is latency (framing + ack round
/// trips + retransmission) and the replay-buffer bound
/// ([`ReliableConfig::window`]).
pub fn reliable_link<T: Payload>(
    name: &str,
    cfg: ReliableConfig,
    upstream: In<T>,
    downstream: Out<T>,
    data_kind: ChannelKind,
    ack_kind: ChannelKind,
) -> ReliableLink<T> {
    assert!(cfg.window > 0, "reliable window must be nonzero");
    assert!(cfg.timeout > 0, "reliable timeout must be nonzero");
    let (data_tx, data_rx, data) = channel::<ReliablePacket>(format!("{name}.data"), data_kind);
    let (ack_tx, ack_rx, ack) = channel::<ReliablePacket>(format!("{name}.ack"), ack_kind);
    let stats = Rc::new(RefCell::new(ReliableStats::default()));
    let tx = ReliableTx {
        name: format!("{name}.tx"),
        cfg,
        input: upstream,
        data_out: data_tx,
        ack_in: ack_rx,
        next_seq: 0,
        base: 0,
        replay: VecDeque::with_capacity(cfg.window),
        since_event: 0,
        resend_at: None,
        stats: Rc::clone(&stats),
    };
    let rx = ReliableRx {
        name: format!("{name}.rx"),
        data_in: data_rx,
        out: downstream,
        ack_out: ack_tx,
        expected: 0,
        ack_pending: false,
        stats: Rc::clone(&stats),
    };
    ReliableLink {
        tx,
        rx,
        data,
        ack,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultConfig;
    use craft_sim::{ClockSpec, Picoseconds};

    #[test]
    fn packet_roundtrip_and_verify() {
        let p = ReliablePacket::frame(7, &0xdead_beefu32);
        assert!(p.verify());
        let rt = ReliablePacket::from_words(&p.to_words());
        assert_eq!(rt, p);
        assert!(rt.verify());

        let mut corrupted = p.clone();
        corrupted.words[0] ^= 1 << 13;
        assert!(!corrupted.verify());
        let mut seq_flip = p.clone();
        seq_flip.seq ^= 1 << 40;
        assert!(!seq_flip.verify());
        let mut sum_flip = p;
        sum_flip.checksum ^= 1;
        assert!(!sum_flip.verify());

        // Short frames reassemble defensively instead of panicking.
        assert!(!ReliablePacket::from_words(&[42]).verify());
        assert!(!ReliablePacket::from_words(&[]).verify());

        let ack = ReliablePacket::ack(9);
        assert!(ack.verify());
        assert!(ack.words.is_empty());
    }

    /// Harness: source channel -> reliable link -> sink channel, all on
    /// one clock. Drives `n` values in, returns what came out plus the
    /// link for stats/fault access.
    fn run_link(
        cfg: ReliableConfig,
        fault: Option<(FaultConfig, u64)>,
        n: u32,
        cycles: u64,
    ) -> (Vec<u32>, ReliableStats) {
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("clk", Picoseconds::from_ghz(1.0)));
        let (mut src_tx, src_rx, src_h) = channel::<u32>("src", ChannelKind::Buffer(4));
        let (dst_tx, mut dst_rx, dst_h) = channel::<u32>("dst", ChannelKind::Buffer(4));
        let link = reliable_link(
            "rl",
            cfg,
            src_rx,
            dst_tx,
            ChannelKind::Buffer(2),
            ChannelKind::Buffer(2),
        );
        if let Some((fc, seed)) = fault {
            link.data.inject_faults(fc, seed);
        }
        let reg = link.register(&mut sim, clk);
        sim.add_sequential(clk, src_h.sequential());
        sim.add_sequential(clk, dst_h.sequential());

        let mut got = Vec::new();
        let mut next = 0u32;
        for _ in 0..cycles {
            if next < n && src_tx.push_nb(next).is_ok() {
                next += 1;
            }
            sim.run_cycles(clk, 1);
            if let Some(v) = dst_rx.pop_nb() {
                got.push(v);
            }
            if got.len() == n as usize {
                break;
            }
        }
        (got, reg.stats())
    }

    #[test]
    fn clean_link_delivers_in_order() {
        let (got, stats) = run_link(ReliableConfig::default(), None, 20, 400);
        assert_eq!(got, (0..20).collect::<Vec<_>>());
        assert_eq!(stats.sent, 20);
        assert_eq!(stats.delivered, 20);
        assert_eq!(stats.retransmits, 0);
        assert_eq!(stats.checksum_drops, 0);
    }

    #[test]
    fn drops_are_recovered_by_retransmission() {
        let cfg = ReliableConfig {
            window: 4,
            timeout: 8,
        };
        let (got, stats) = run_link(cfg, Some((FaultConfig::drop(0.3), 17)), 20, 4000);
        assert_eq!(got, (0..20).collect::<Vec<_>>());
        assert!(stats.retransmits > 0, "p=0.3 loss must force resends");
        assert_eq!(stats.delivered, 20);
    }

    #[test]
    fn bit_flips_are_detected_and_recovered() {
        let cfg = ReliableConfig {
            window: 4,
            timeout: 8,
        };
        let (got, stats) = run_link(cfg, Some((FaultConfig::bit_flip(0.3), 23)), 20, 4000);
        assert_eq!(got, (0..20).collect::<Vec<_>>());
        assert!(
            stats.checksum_drops > 0,
            "p=0.3 corruption must trip the checksum"
        );
        assert_eq!(stats.delivered, 20);
    }

    #[test]
    fn duplicates_are_dropped() {
        let cfg = ReliableConfig {
            window: 4,
            timeout: 8,
        };
        let (got, stats) = run_link(cfg, Some((FaultConfig::duplicate(0.5), 5)), 20, 4000);
        assert_eq!(got, (0..20).collect::<Vec<_>>());
        assert!(stats.dup_drops > 0, "p=0.5 duplication must be filtered");
    }

    #[test]
    fn stuck_data_wire_starves_delivery() {
        // Permanent stuck-valid on the data channel is unrecoverable:
        // nothing is delivered after onset, no matter how long we wait.
        let (got, stats) = run_link(
            ReliableConfig::default(),
            Some((FaultConfig::stuck_valid(2), 0)),
            8,
            500,
        );
        assert!(got.len() < 8, "stuck wire must starve the stream");
        assert_eq!(stats.delivered, got.len() as u64);
        // The data FIFO wedges full (the consumer sees valid stuck
        // deasserted), so even retransmissions cannot get through.
        assert!(stats.sent < 8);
    }
}
