//! Simulation time as integer picoseconds.
//!
//! All kernel bookkeeping is integral so that simulations are exactly
//! reproducible; floating point only appears in analysis layers.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A duration or timestamp measured in picoseconds.
///
/// `Picoseconds` is a transparent newtype over `u64` ([C-NEWTYPE]) so a
/// raw cycle count can never be confused with a wall-time quantity.
///
/// ```
/// use craft_sim::Picoseconds;
/// let period = Picoseconds::from_ghz(1.1);
/// assert_eq!(period, Picoseconds::new(909));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Picoseconds(pub u64);

impl Picoseconds {
    /// Zero duration.
    pub const ZERO: Picoseconds = Picoseconds(0);
    /// Largest representable instant; used as "never" by the scheduler.
    pub const MAX: Picoseconds = Picoseconds(u64::MAX);

    /// Creates a duration of `ps` picoseconds.
    pub const fn new(ps: u64) -> Self {
        Picoseconds(ps)
    }

    /// Creates a duration of `ns` nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        Picoseconds(ns * 1_000)
    }

    /// Creates a clock period from a frequency in GHz, rounded down to
    /// the nearest picosecond.
    pub fn from_ghz(ghz: f64) -> Self {
        assert!(ghz > 0.0, "frequency must be positive");
        Picoseconds((1_000.0 / ghz) as u64)
    }

    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This duration expressed in (fractional) nanoseconds.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating subtraction; clamps at zero instead of wrapping.
    pub const fn saturating_sub(self, rhs: Self) -> Self {
        Picoseconds(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition, `None` on overflow.
    pub const fn checked_add(self, rhs: Self) -> Option<Self> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Picoseconds(v)),
            None => None,
        }
    }
}

impl fmt::Display for Picoseconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ns", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ps", self.0)
        }
    }
}

impl Add for Picoseconds {
    type Output = Picoseconds;
    fn add(self, rhs: Self) -> Self {
        Picoseconds(self.0 + rhs.0)
    }
}

impl AddAssign for Picoseconds {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for Picoseconds {
    type Output = Picoseconds;
    fn sub(self, rhs: Self) -> Self {
        Picoseconds(self.0 - rhs.0)
    }
}

impl SubAssign for Picoseconds {
    fn sub_assign(&mut self, rhs: Self) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Picoseconds {
    type Output = Picoseconds;
    fn mul(self, rhs: u64) -> Self {
        Picoseconds(self.0 * rhs)
    }
}

impl Div<u64> for Picoseconds {
    type Output = Picoseconds;
    fn div(self, rhs: u64) -> Self {
        Picoseconds(self.0 / rhs)
    }
}

impl Rem for Picoseconds {
    type Output = Picoseconds;
    fn rem(self, rhs: Self) -> Self {
        Picoseconds(self.0 % rhs.0)
    }
}

impl Sum for Picoseconds {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Picoseconds::ZERO, Add::add)
    }
}

impl From<u64> for Picoseconds {
    fn from(ps: u64) -> Self {
        Picoseconds(ps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ghz_conversion_rounds_down() {
        assert_eq!(Picoseconds::from_ghz(1.0), Picoseconds(1000));
        assert_eq!(Picoseconds::from_ghz(2.0), Picoseconds(500));
        assert_eq!(Picoseconds::from_ghz(1.1), Picoseconds(909));
    }

    #[test]
    fn arithmetic() {
        let a = Picoseconds(100);
        let b = Picoseconds(30);
        assert_eq!(a + b, Picoseconds(130));
        assert_eq!(a - b, Picoseconds(70));
        assert_eq!(a * 3, Picoseconds(300));
        assert_eq!(a / 4, Picoseconds(25));
        assert_eq!(a % b, Picoseconds(10));
        assert_eq!(b.saturating_sub(a), Picoseconds::ZERO);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(Picoseconds(5).to_string(), "5ps");
        assert_eq!(Picoseconds(1500).to_string(), "1.500ns");
        assert_eq!(Picoseconds(2_000_000).to_string(), "2.000us");
    }

    #[test]
    fn sum_of_durations() {
        let total: Picoseconds = [1u64, 2, 3].iter().map(|&p| Picoseconds(p)).sum();
        assert_eq!(total, Picoseconds(6));
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn zero_frequency_panics() {
        let _ = Picoseconds::from_ghz(0.0);
    }
}
