//! The simulation kernel: a multi-clock, two-phase, cycle-driven
//! scheduler with deterministic ordering.
//!
//! # Execution model
//!
//! Time is an integer picosecond counter. Each registered
//! [`ClockSpec`] produces rising edges; the kernel repeatedly:
//!
//! 1. finds the earliest pending edge time `t` across all domains,
//! 2. **evaluate phase** — ticks every component of every domain with an
//!    edge at `t` (domains in id order, components in registration
//!    order),
//! 3. **commit phase** — commits every [`Sequential`] registered on
//!    those domains (same deterministic order),
//! 4. applies deferred clock requests (stretch/override) and schedules
//!    each ticked domain's next edge.
//!
//! Because reads during evaluate always observe state committed at an
//! earlier instant, the model is flip-flop accurate and insensitive to
//! registration order for well-formed designs.

use crate::clock::{ClockId, ClockSpec, ClockState};
use crate::component::{ClockRequest, Component, Sequential, TickCtx};
use crate::time::Picoseconds;
use std::cell::RefCell;
use std::rc::Rc;

/// Handle to a component registered with a [`Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ComponentId(usize);

struct ComponentEntry {
    clock: ClockId,
    component: Box<dyn Component>,
}

struct SequentialEntry {
    state: Rc<RefCell<dyn Sequential>>,
}

/// Cycle-driven multi-clock simulator.
///
/// ```
/// use craft_sim::{ClockSpec, Component, Picoseconds, Simulator, TickCtx};
///
/// struct Counter { n: u64 }
/// impl Component for Counter {
///     fn name(&self) -> &str { "counter" }
///     fn tick(&mut self, _ctx: &mut TickCtx<'_>) { self.n += 1; }
/// }
///
/// let mut sim = Simulator::new();
/// let clk = sim.add_clock(ClockSpec::new("main", Picoseconds::from_ghz(1.0)));
/// sim.add_component(clk, Counter { n: 0 });
/// sim.run_cycles(clk, 10);
/// assert_eq!(sim.cycles(clk), 10);
/// ```
pub struct Simulator {
    clocks: Vec<ClockState>,
    components: Vec<ComponentEntry>,
    /// Component indices per clock domain, in registration order.
    by_clock: Vec<Vec<usize>>,
    sequentials: Vec<SequentialEntry>,
    seq_by_clock: Vec<Vec<usize>>,
    now: Picoseconds,
    /// Total evaluate/commit instants processed.
    instants: u64,
    /// Total component ticks delivered (a wall-clock-cost proxy).
    ticks_delivered: u64,
    stop_requested: bool,
    clock_requests: Vec<ClockRequest>,
    edge_scratch: Vec<usize>,
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulator {
    /// Creates an empty simulator at time zero.
    pub fn new() -> Self {
        Simulator {
            clocks: Vec::new(),
            components: Vec::new(),
            by_clock: Vec::new(),
            sequentials: Vec::new(),
            seq_by_clock: Vec::new(),
            now: Picoseconds::ZERO,
            instants: 0,
            ticks_delivered: 0,
            stop_requested: false,
            clock_requests: Vec::new(),
            edge_scratch: Vec::new(),
        }
    }

    /// Registers a clock domain and returns its id.
    pub fn add_clock(&mut self, spec: ClockSpec) -> ClockId {
        let id = ClockId(self.clocks.len());
        self.clocks.push(ClockState::new(spec));
        self.by_clock.push(Vec::new());
        self.seq_by_clock.push(Vec::new());
        id
    }

    /// Registers `component` on clock domain `clock`.
    ///
    /// # Panics
    /// Panics if `clock` was not returned by this simulator's
    /// [`add_clock`](Self::add_clock).
    pub fn add_component<C: Component + 'static>(
        &mut self,
        clock: ClockId,
        component: C,
    ) -> ComponentId {
        assert!(clock.0 < self.clocks.len(), "unknown clock domain {clock}");
        let id = ComponentId(self.components.len());
        self.components.push(ComponentEntry {
            clock,
            component: Box::new(component),
        });
        self.by_clock[clock.0].push(id.0);
        id
    }

    /// Registers shared sequential state (typically a channel) for the
    /// commit phase of `clock`.
    ///
    /// # Panics
    /// Panics if `clock` is unknown.
    pub fn add_sequential(&mut self, clock: ClockId, state: Rc<RefCell<dyn Sequential>>) {
        assert!(clock.0 < self.clocks.len(), "unknown clock domain {clock}");
        let idx = self.sequentials.len();
        self.sequentials.push(SequentialEntry { state });
        self.seq_by_clock[clock.0].push(idx);
    }

    /// Current simulation time.
    pub fn now(&self) -> Picoseconds {
        self.now
    }

    /// Rising edges delivered on `clock` so far.
    pub fn cycles(&self, clock: ClockId) -> u64 {
        self.clocks[clock.0].cycles
    }

    /// Total component ticks delivered across all domains. This grows
    /// with simulation *work* and is used as a wall-cost proxy in
    /// speedup experiments.
    pub fn ticks_delivered(&self) -> u64 {
        self.ticks_delivered
    }

    /// Total evaluate/commit instants processed.
    pub fn instants(&self) -> u64 {
        self.instants
    }

    /// Pauses `clock`: no further edges until [`resume_clock`](Self::resume_clock).
    pub fn pause_clock(&mut self, clock: ClockId) {
        self.clocks[clock.0].paused = true;
    }

    /// Resumes a paused clock; its next edge fires one period from now.
    pub fn resume_clock(&mut self, clock: ClockId) {
        let st = &mut self.clocks[clock.0];
        if st.paused {
            st.paused = false;
            st.next_edge = self
                .now
                .checked_add(st.spec.period)
                .expect("simulation time overflow");
        }
    }

    /// True when a component called [`TickCtx::request_stop`].
    pub fn stopped(&self) -> bool {
        self.stop_requested
    }

    /// Clears a pending stop request so `run_*` can be called again.
    pub fn clear_stop(&mut self) {
        self.stop_requested = false;
    }

    fn next_instant(&self) -> Option<Picoseconds> {
        self.clocks
            .iter()
            .filter(|c| !c.paused)
            .map(|c| c.next_edge)
            .min()
    }

    /// Advances by exactly one instant (one batch of simultaneous
    /// edges). Returns `false` when no clock has a pending edge.
    pub fn step(&mut self) -> bool {
        let Some(t) = self.next_instant() else {
            return false;
        };
        self.now = t;
        self.instants += 1;

        // Gather domains with an edge now, in id order.
        self.edge_scratch.clear();
        for (i, c) in self.clocks.iter().enumerate() {
            if !c.paused && c.next_edge == t {
                self.edge_scratch.push(i);
            }
        }
        let edges = std::mem::take(&mut self.edge_scratch);

        // Evaluate phase.
        for &ci in &edges {
            let cycle = self.clocks[ci].cycles;
            for comp_pos in 0..self.by_clock[ci].len() {
                let comp_idx = self.by_clock[ci][comp_pos];
                let entry = &mut self.components[comp_idx];
                let mut ctx = TickCtx {
                    now: t,
                    cycle,
                    clock: entry.clock,
                    clock_requests: &mut self.clock_requests,
                    stop: &mut self.stop_requested,
                };
                entry.component.tick(&mut ctx);
                self.ticks_delivered += 1;
            }
        }

        // Commit phase.
        for &ci in &edges {
            for &seq_idx in &self.seq_by_clock[ci] {
                self.sequentials[seq_idx].state.borrow_mut().commit();
            }
        }

        // Apply deferred clock requests, then schedule next edges.
        for req in self.clock_requests.drain(..) {
            match req {
                ClockRequest::Stretch { clock, extra } => {
                    let st = &mut self.clocks[clock.0];
                    let base = st.next_period_override.unwrap_or(st.spec.period);
                    st.next_period_override =
                        Some(base.checked_add(extra).expect("clock stretch overflow"));
                }
                ClockRequest::OverridePeriod { clock, period } => {
                    self.clocks[clock.0].next_period_override = Some(period);
                }
                ClockRequest::SetNominalPeriod { clock, period } => {
                    assert!(period > Picoseconds::ZERO, "clock period must be nonzero");
                    self.clocks[clock.0].spec.period = period;
                }
            }
        }
        for &ci in &edges {
            self.clocks[ci].advance();
        }
        self.edge_scratch = edges;
        true
    }

    /// Runs until simulation time reaches or passes `deadline`, a stop
    /// is requested, or no edges remain.
    pub fn run_until_time(&mut self, deadline: Picoseconds) {
        while !self.stop_requested {
            match self.next_instant() {
                Some(t) if t <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
    }

    /// Runs until `clock` has received `n` more rising edges, a stop is
    /// requested, or no edges remain.
    pub fn run_cycles(&mut self, clock: ClockId, n: u64) {
        let target = self.clocks[clock.0].cycles + n;
        while !self.stop_requested && self.clocks[clock.0].cycles < target {
            if !self.step() {
                break;
            }
        }
    }

    /// Runs until `done()` returns true (checked after every instant), a
    /// stop is requested, or `max_cycles` edges elapse on `clock`.
    /// Returns `true` if the predicate fired.
    pub fn run_until(
        &mut self,
        clock: ClockId,
        max_cycles: u64,
        mut done: impl FnMut() -> bool,
    ) -> bool {
        let limit = self.clocks[clock.0].cycles + max_cycles;
        while !self.stop_requested && self.clocks[clock.0].cycles < limit {
            if done() {
                return true;
            }
            if !self.step() {
                break;
            }
        }
        done()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    struct Probe {
        name: String,
        hits: Rc<Cell<u64>>,
        last_cycle: Rc<Cell<u64>>,
    }

    impl Component for Probe {
        fn name(&self) -> &str {
            &self.name
        }
        fn tick(&mut self, ctx: &mut TickCtx<'_>) {
            self.hits.set(self.hits.get() + 1);
            self.last_cycle.set(ctx.cycle());
        }
    }

    fn probe(name: &str) -> (Probe, Rc<Cell<u64>>, Rc<Cell<u64>>) {
        let hits = Rc::new(Cell::new(0));
        let last = Rc::new(Cell::new(0));
        (
            Probe {
                name: name.into(),
                hits: Rc::clone(&hits),
                last_cycle: Rc::clone(&last),
            },
            hits,
            last,
        )
    }

    #[test]
    fn single_clock_ticks_once_per_cycle() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("c", Picoseconds(1000)));
        let (p, hits, last) = probe("p");
        sim.add_component(clk, p);
        sim.run_cycles(clk, 5);
        assert_eq!(hits.get(), 5);
        assert_eq!(last.get(), 4);
        assert_eq!(sim.now(), Picoseconds(4000));
    }

    #[test]
    fn unrelated_clocks_interleave_by_time() {
        let mut sim = Simulator::new();
        let fast = sim.add_clock(ClockSpec::new("fast", Picoseconds(100)));
        let slow = sim.add_clock(ClockSpec::new("slow", Picoseconds(250)));
        let (pf, hf, _) = probe("f");
        let (ps, hs, _) = probe("s");
        sim.add_component(fast, pf);
        sim.add_component(slow, ps);
        sim.run_until_time(Picoseconds(1000));
        // fast edges: 0,100,...,1000 -> 11; slow: 0,250,500,750,1000 -> 5
        assert_eq!(hf.get(), 11);
        assert_eq!(hs.get(), 5);
    }

    #[test]
    fn pause_and_resume() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("c", Picoseconds(100)));
        let (p, hits, _) = probe("p");
        sim.add_component(clk, p);
        sim.run_cycles(clk, 3);
        sim.pause_clock(clk);
        sim.run_until_time(Picoseconds(10_000));
        assert_eq!(hits.get(), 3);
        sim.resume_clock(clk);
        sim.run_cycles(clk, 2);
        assert_eq!(hits.get(), 5);
    }

    struct Stopper {
        at: u64,
    }
    impl Component for Stopper {
        fn name(&self) -> &str {
            "stopper"
        }
        fn tick(&mut self, ctx: &mut TickCtx<'_>) {
            if ctx.cycle() == self.at {
                ctx.request_stop();
            }
        }
    }

    #[test]
    fn stop_request_halts_run() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("c", Picoseconds(100)));
        sim.add_component(clk, Stopper { at: 7 });
        sim.run_cycles(clk, 1_000);
        assert!(sim.stopped());
        assert_eq!(sim.cycles(clk), 8); // edge 7 completed, then halt
    }

    struct Stretcher;
    impl Component for Stretcher {
        fn name(&self) -> &str {
            "stretcher"
        }
        fn tick(&mut self, ctx: &mut TickCtx<'_>) {
            if ctx.cycle() == 1 {
                let clock = ctx.clock();
                ctx.stretch_clock(clock, Picoseconds(50));
            }
        }
    }

    #[test]
    fn stretch_delays_next_edge_only() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("c", Picoseconds(100)));
        sim.add_component(clk, Stretcher);
        sim.run_cycles(clk, 4);
        // Edges at 0, 100, 250 (stretched), 350.
        assert_eq!(sim.now(), Picoseconds(350));
    }

    #[test]
    fn sequential_commit_runs_after_eval() {
        struct Latch {
            staged: u64,
            value: u64,
        }
        impl Sequential for Latch {
            fn commit(&mut self) {
                self.value = self.staged;
            }
        }
        struct Writer {
            latch: Rc<RefCell<Latch>>,
            observed_before_commit: Rc<Cell<u64>>,
        }
        impl Component for Writer {
            fn name(&self) -> &str {
                "writer"
            }
            fn tick(&mut self, ctx: &mut TickCtx<'_>) {
                let mut l = self.latch.borrow_mut();
                // Reads must see the value committed at a previous edge.
                self.observed_before_commit.set(l.value);
                l.staged = ctx.cycle() + 1;
            }
        }
        let latch = Rc::new(RefCell::new(Latch { staged: 0, value: 0 }));
        let seen = Rc::new(Cell::new(u64::MAX));
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("c", Picoseconds(100)));
        sim.add_component(
            clk,
            Writer {
                latch: Rc::clone(&latch),
                observed_before_commit: Rc::clone(&seen),
            },
        );
        sim.add_sequential(clk, latch.clone());
        sim.run_cycles(clk, 1);
        assert_eq!(seen.get(), 0); // saw pre-commit value
        assert_eq!(latch.borrow().value, 1); // commit applied after eval
        sim.run_cycles(clk, 1);
        assert_eq!(seen.get(), 1);
        assert_eq!(latch.borrow().value, 2);
    }

    #[test]
    fn run_until_predicate() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("c", Picoseconds(100)));
        let (p, hits, _) = probe("p");
        sim.add_component(clk, p);
        let h2 = Rc::clone(&hits);
        let fired = sim.run_until(clk, 1_000, move || h2.get() >= 5);
        assert!(fired);
        assert_eq!(hits.get(), 5);
    }

    #[test]
    fn run_until_respects_cycle_limit() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("c", Picoseconds(100)));
        let fired = sim.run_until(clk, 10, || false);
        assert!(!fired);
        assert_eq!(sim.cycles(clk), 10);
    }
}
