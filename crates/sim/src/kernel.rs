//! The simulation kernel: a multi-clock, two-phase, cycle-driven
//! scheduler with deterministic ordering.
//!
//! # Execution model
//!
//! Time is an integer picosecond counter. Each registered
//! [`ClockSpec`] produces rising edges; the kernel repeatedly:
//!
//! 1. finds the earliest pending edge time `t` across all domains,
//! 2. **evaluate phase** — ticks every component of every domain with an
//!    edge at `t` (domains in id order, components in registration
//!    order),
//! 3. **commit phase** — commits every [`Sequential`] registered on
//!    those domains (same deterministic order),
//! 4. applies deferred clock requests (stretch/override) and schedules
//!    each ticked domain's next edge.
//!
//! Because reads during evaluate always observe state committed at an
//! earlier instant, the model is flip-flop accurate and insensitive to
//! registration order for well-formed designs.
//!
//! # Scheduling
//!
//! Step 1 does not rescan every domain. The kernel keeps an indexed
//! next-edge structure — a min-heap of `(next_edge, clock)` pairs with
//! lazy invalidation (an entry is stale when its clock is paused or
//! has since been rescheduled; stale entries are dropped when popped) —
//! so finding the earliest instant is O(log #clocks). When exactly one
//! unpaused domain exists (the common case for single-clock benches)
//! even the heap is bypassed: the next instant is that domain's
//! `next_edge`, read directly.
//!
//! # Quiescence gating
//!
//! Components may opt into being skipped while idle: a component that
//! registered a wake token ([`Simulator::set_wake_token`]) and reports
//! [`Component::is_quiescent`] after a tick is put to sleep, and its
//! ticks are elided until some activity source sets the token (e.g. a
//! channel push landing in its input). Wake-up is checked at the
//! sleeper's own edges, in registration order, so delivery order among
//! awake components is exactly what an ungated run produces. Likewise,
//! sequentials registered with a dirty token
//! ([`Simulator::add_sequential_gated`]) have clean commits elided and
//! receive an arithmetic catch-up ([`Sequential::commit_skipped`])
//! before their next real commit or at the end of every `run_*` call.
//! Gating changes [`Simulator::ticks_delivered`] (it is a work proxy)
//! but never [`Simulator::cycles`], simulation time, or any committed
//! state — determinism is the contract, and
//! [`Simulator::set_gating`] exists so tests can prove it.
//!
//! # Compiled instant plan
//!
//! When the schedule is steady-state — every unpaused clock on one
//! period and phase — [`Simulator::arm_plan`] freezes it into a flat
//! plan (see the `plan` module) and both phases switch to a fast path:
//! the evaluate phase walks an `active` worklist of awake components
//! instead of scanning every registration, and the commit phase walks
//! only the sequentials whose dirty token actually transitioned
//! (delivered by notify sinks) plus the always-commit list. The
//! interpreted loop remains the golden reference; the plan reproduces
//! its observable behaviour exactly and *de-opts* (disarms) on any
//! irregular event — structural changes, clock pause/resume or
//! stretch/override, gating/profiling toggles, watchdog trips.

use crate::activity::{ActivityToken, NotifySink};
use crate::checkpoint::{KernelDigest, WatchdogState};
use crate::clock::{ClockId, ClockSpec, ClockState};
use crate::component::{ClockRequest, Component, Sequential, TickCtx};
use crate::error::{CompDiag, HangReport, SimError};
use crate::plan::{PlanDesc, PlanNode, PlanReject, PlanState};
use crate::telemetry::TickProfile;
use crate::time::Picoseconds;
use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::rc::Rc;

/// Handle to a component registered with a [`Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ComponentId(usize);

struct ComponentEntry {
    clock: ClockId,
    component: Box<dyn Component>,
    /// Activity source that can rouse this component; `None` means the
    /// component never sleeps.
    wake: Option<ActivityToken>,
    /// While `true`, evaluate-phase ticks are elided until `wake` fires.
    asleep: bool,
}

struct SequentialEntry {
    state: Rc<RefCell<dyn Sequential>>,
    /// Set by writers when a commit has staged work; `None` means the
    /// sequential commits unconditionally every edge.
    dirty: Option<ActivityToken>,
    /// Clean commits elided since the last real commit / catch-up.
    skipped: u64,
}

/// Cycle-driven multi-clock simulator.
///
/// ```
/// use craft_sim::{ClockSpec, Component, Picoseconds, Simulator, TickCtx};
///
/// struct Counter { n: u64 }
/// impl Component for Counter {
///     fn name(&self) -> &str { "counter" }
///     fn tick(&mut self, _ctx: &mut TickCtx<'_>) { self.n += 1; }
/// }
///
/// let mut sim = Simulator::new();
/// let clk = sim.add_clock(ClockSpec::new("main", Picoseconds::from_ghz(1.0)));
/// sim.add_component(clk, Counter { n: 0 });
/// sim.run_cycles(clk, 10);
/// assert_eq!(sim.cycles(clk), 10);
/// ```
pub struct Simulator {
    clocks: Vec<ClockState>,
    components: Vec<ComponentEntry>,
    /// Component indices per clock domain, in registration order.
    by_clock: Vec<Vec<usize>>,
    sequentials: Vec<SequentialEntry>,
    seq_by_clock: Vec<Vec<usize>>,
    now: Picoseconds,
    /// Total evaluate/commit instants processed.
    instants: u64,
    /// Total component ticks delivered (a wall-clock-cost proxy).
    ticks_delivered: u64,
    /// Ticks elided because the component was asleep.
    ticks_skipped: u64,
    /// Sequential commits elided because the dirty token was clear.
    commits_skipped: u64,
    /// Master switch for quiescence gating (on by default).
    gating: bool,
    stop_requested: bool,
    clock_requests: Vec<ClockRequest>,
    edge_scratch: Vec<usize>,
    /// Indexed next-edge structure: min-heap of `(next_edge, clock)`
    /// with lazy invalidation (entry is stale when the clock is paused
    /// or `next_edge` moved). Unused while `single_active` is `Some`.
    edge_heap: BinaryHeap<Reverse<(Picoseconds, usize)>>,
    /// Whether `edge_heap` holds an entry for every unpaused clock's
    /// current edge. Cleared by structural changes (add/pause/resume,
    /// single-clock mode) and restored by a rebuild on demand.
    heap_synced: bool,
    /// `Some(i)` when clock `i` is the only unpaused domain — the
    /// fast path that bypasses the heap and the edge gather entirely.
    single_active: Option<usize>,
    /// First internal arithmetic fault (time/stretch overflow). The
    /// offending clock is paused so runs terminate; `*_checked` run
    /// methods surface the error, plain runs leave it queryable via
    /// [`Simulator::fatal`].
    fatal: Option<SimError>,
    /// Shared progress flag for the hang watchdog: activity sources
    /// (channel pushes/pops, component wake-ups) set it; the
    /// `*_checked` run methods clear it once per reference-clock cycle
    /// and count how long it stays clear.
    progress: ActivityToken,
    /// When set, every delivered tick is timed with `Instant` and
    /// attributed to its component (telemetry's tick-profiling hook).
    tick_profiling: bool,
    /// Per-component `(nanos, ticks)` accumulated while profiling was
    /// on, indexed like `components`.
    tick_costs: Vec<(u64, u64)>,
    /// `true` between [`Simulator::eval_instant`] and the matching
    /// [`Simulator::commit_instant`] — the fired-clock list in
    /// `instant_edges` is live.
    mid_instant: bool,
    /// Clocks that fired at the instant currently being processed,
    /// carried from the evaluate phase to the commit phase.
    instant_edges: Vec<usize>,
    /// Compiled steady-state schedule, when armed
    /// ([`Simulator::arm_plan`]). `eval_instant`/`commit_instant`
    /// dispatch to the plan fast path while this is `Some`; any
    /// irregular event disarms it and the interpreted loop resumes.
    plan: Option<Box<PlanState>>,
    /// De-opts (plan disarms) so far — `Rc` so telemetry probes can
    /// observe it live (`sim.plan.deopt_count`).
    plan_deopts: Rc<Cell<u64>>,
    /// Instants executed by the compiled plan (`sim.plan.instants`).
    plan_instants: Rc<Cell<u64>>,
    /// 1 while a plan is armed, 0 otherwise (`sim.plan.armed`).
    plan_armed_flag: Rc<Cell<u64>>,
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulator {
    /// Creates an empty simulator at time zero.
    pub fn new() -> Self {
        Simulator {
            clocks: Vec::new(),
            components: Vec::new(),
            by_clock: Vec::new(),
            sequentials: Vec::new(),
            seq_by_clock: Vec::new(),
            now: Picoseconds::ZERO,
            instants: 0,
            ticks_delivered: 0,
            ticks_skipped: 0,
            commits_skipped: 0,
            gating: true,
            stop_requested: false,
            clock_requests: Vec::new(),
            edge_scratch: Vec::new(),
            edge_heap: BinaryHeap::new(),
            heap_synced: false,
            single_active: None,
            fatal: None,
            progress: ActivityToken::new(),
            tick_profiling: false,
            tick_costs: Vec::new(),
            mid_instant: false,
            instant_edges: Vec::new(),
            plan: None,
            plan_deopts: Rc::new(Cell::new(0)),
            plan_instants: Rc::new(Cell::new(0)),
            plan_armed_flag: Rc::new(Cell::new(0)),
        }
    }

    /// Registers a clock domain and returns its id.
    pub fn add_clock(&mut self, spec: ClockSpec) -> ClockId {
        self.disarm_plan();
        let id = ClockId(self.clocks.len());
        self.clocks.push(ClockState::new(spec));
        self.by_clock.push(Vec::new());
        self.seq_by_clock.push(Vec::new());
        self.heap_synced = false;
        self.recompute_single_active();
        id
    }

    /// Registers `component` on clock domain `clock`.
    ///
    /// # Panics
    /// Panics if `clock` was not returned by this simulator's
    /// [`add_clock`](Self::add_clock).
    pub fn add_component<C: Component + 'static>(
        &mut self,
        clock: ClockId,
        component: C,
    ) -> ComponentId {
        assert!(clock.0 < self.clocks.len(), "unknown clock domain {clock}");
        self.disarm_plan();
        let id = ComponentId(self.components.len());
        self.components.push(ComponentEntry {
            clock,
            component: Box::new(component),
            wake: None,
            asleep: false,
        });
        self.by_clock[clock.0].push(id.0);
        id
    }

    /// Attaches a wake token to a registered component, opting it into
    /// quiescence gating: once the component reports
    /// [`Component::is_quiescent`] after a tick it sleeps until some
    /// activity source sets the token.
    ///
    /// Hand clones of the same token to everything that can make the
    /// component runnable again — typically its input channels (see
    /// `craft-connections`' `In::set_wake_token`).
    pub fn set_wake_token(&mut self, id: ComponentId, token: ActivityToken) {
        self.disarm_plan();
        self.components[id.0].wake = Some(token);
    }

    /// Registers shared sequential state (typically a channel) for the
    /// commit phase of `clock`.
    ///
    /// # Panics
    /// Panics if `clock` is unknown.
    pub fn add_sequential(&mut self, clock: ClockId, state: Rc<RefCell<dyn Sequential>>) {
        assert!(clock.0 < self.clocks.len(), "unknown clock domain {clock}");
        self.disarm_plan();
        let idx = self.sequentials.len();
        self.sequentials.push(SequentialEntry {
            state,
            dirty: None,
            skipped: 0,
        });
        self.seq_by_clock[clock.0].push(idx);
    }

    /// Like [`add_sequential`](Self::add_sequential), but commits are
    /// elided on edges where `dirty` is clear (no writer staged
    /// anything). Elided commits are reported in bulk via
    /// [`Sequential::commit_skipped`] before the next real commit and
    /// at the end of every `run_*` call, so statistics kept per cycle
    /// stay exact.
    ///
    /// The token starts set, guaranteeing the first commit runs.
    ///
    /// # Panics
    /// Panics if `clock` is unknown.
    pub fn add_sequential_gated(
        &mut self,
        clock: ClockId,
        state: Rc<RefCell<dyn Sequential>>,
        dirty: ActivityToken,
    ) {
        assert!(clock.0 < self.clocks.len(), "unknown clock domain {clock}");
        self.disarm_plan();
        dirty.set();
        let idx = self.sequentials.len();
        self.sequentials.push(SequentialEntry {
            state,
            dirty: Some(dirty),
            skipped: 0,
        });
        self.seq_by_clock[clock.0].push(idx);
    }

    /// Current simulation time.
    pub fn now(&self) -> Picoseconds {
        self.now
    }

    /// Rising edges delivered on `clock` so far.
    pub fn cycles(&self, clock: ClockId) -> u64 {
        self.clocks[clock.0].cycles
    }

    /// Total component ticks delivered across all domains. This grows
    /// with simulation *work* and is used as a wall-cost proxy in
    /// speedup experiments. Quiescence gating lowers it; it is *not*
    /// part of the determinism contract (`cycles`/results are).
    pub fn ticks_delivered(&self) -> u64 {
        self.ticks_delivered
    }

    /// Ticks elided because their component was asleep. Together with
    /// [`ticks_delivered`](Self::ticks_delivered) this accounts for
    /// every component-edge the schedule produced.
    pub fn ticks_skipped(&self) -> u64 {
        self.ticks_skipped
    }

    /// Sequential commits elided because nothing was staged.
    pub fn commits_skipped(&self) -> u64 {
        self.commits_skipped
    }

    /// Total evaluate/commit instants processed.
    pub fn instants(&self) -> u64 {
        self.instants
    }

    /// Exact kernel-progress digest: time, scheduler counters, and the
    /// full clock table. Two simulations that processed the same
    /// instant sequence produce equal digests, so a replay-based
    /// restore verifies itself against the digest recorded at capture.
    /// Compiled-plan *arming* state is deliberately excluded — the
    /// compiled and interpreted paths are pinned tick- and
    /// commit-counter-identical, so arming is unobservable here.
    pub fn kernel_digest(&self) -> KernelDigest {
        KernelDigest {
            now_ps: self.now.0,
            instants: self.instants,
            ticks_delivered: self.ticks_delivered,
            ticks_skipped: self.ticks_skipped,
            commits_skipped: self.commits_skipped,
            clocks: self
                .clocks
                .iter()
                .map(|c| (c.cycles, c.next_edge.0, c.paused))
                .collect(),
        }
    }

    /// Whether quiescence gating is enabled (it is by default).
    pub fn gating(&self) -> bool {
        self.gating
    }

    /// Enables or disables per-component wall-clock tick profiling
    /// (telemetry's tick-time hook). While on, every delivered tick is
    /// timed and attributed to its component; the accumulated profile
    /// is read back via [`tick_profile`](Self::tick_profile).
    /// Profiling is observation-only — it never changes cycles, results
    /// or delivery order — but the `Instant` reads cost wall clock, so
    /// it is off by default.
    pub fn set_tick_profiling(&mut self, on: bool) {
        if on {
            // The plan fast path has no timing hooks.
            self.disarm_plan();
        }
        self.tick_profiling = on;
        if on && self.tick_costs.len() < self.components.len() {
            self.tick_costs.resize(self.components.len(), (0, 0));
        }
    }

    /// Whether tick profiling is currently enabled.
    pub fn tick_profiling(&self) -> bool {
        self.tick_profiling
    }

    /// Per-component wall-clock attribution accumulated while
    /// [`set_tick_profiling`](Self::set_tick_profiling) was on, sorted
    /// by descending total nanoseconds. Components that never ticked
    /// under profiling are omitted.
    pub fn tick_profile(&self) -> Vec<TickProfile> {
        let mut rows: Vec<TickProfile> = self
            .components
            .iter()
            .enumerate()
            .filter_map(|(i, e)| {
                let &(nanos, ticks) = self.tick_costs.get(i)?;
                if ticks == 0 {
                    return None;
                }
                Some(TickProfile {
                    name: e.component.name().to_string(),
                    clock: self.clocks[e.clock.0].spec.name.clone(),
                    ticks,
                    nanos,
                })
            })
            .collect();
        rows.sort_by(|a, b| b.nanos.cmp(&a.nanos).then_with(|| a.name.cmp(&b.name)));
        rows
    }

    /// Enables or disables quiescence gating. Disabling wakes every
    /// sleeping component and flushes pending commit catch-ups, so a
    /// subsequent run behaves exactly like an ungated simulator.
    /// Results are identical either way; only wall clock and
    /// [`ticks_delivered`](Self::ticks_delivered) differ.
    pub fn set_gating(&mut self, enabled: bool) {
        self.disarm_plan();
        self.gating = enabled;
        if !enabled {
            for entry in &mut self.components {
                entry.asleep = false;
            }
            self.flush_skipped_commits();
        }
    }

    /// Delivers pending [`Sequential::commit_skipped`] catch-ups so
    /// externally read statistics are exact. Called automatically at
    /// the end of every `run_*` method; needed manually only around
    /// raw [`step`](Self::step) loops.
    pub fn flush_skipped_commits(&mut self) {
        // Settle compiled-plan elisions first (without disarming): the
        // plan tracks skipped commits as `epoch - seq_seen` instead of
        // per-entry counters.
        if let Some(plan) = &mut self.plan {
            for (rank, &si) in plan.seq_order.iter().enumerate() {
                let pending = plan.epoch - plan.seq_seen[rank];
                if pending > 0 {
                    self.sequentials[si as usize]
                        .state
                        .borrow_mut()
                        .commit_skipped(pending);
                    self.commits_skipped += pending;
                    plan.seq_seen[rank] = plan.epoch;
                }
            }
        }
        for seq in &mut self.sequentials {
            if seq.skipped > 0 {
                seq.state.borrow_mut().commit_skipped(seq.skipped);
                seq.skipped = 0;
            }
        }
    }

    /// Pauses `clock`: no further edges until [`resume_clock`](Self::resume_clock).
    pub fn pause_clock(&mut self, clock: ClockId) {
        self.disarm_plan();
        self.clocks[clock.0].paused = true;
        self.recompute_single_active();
    }

    /// Resumes a paused clock. The next edge fires one **full period
    /// after `now`**, even when the clock was paused mid-period: a
    /// pausible clock's period, once interrupted, restarts from the
    /// resume point rather than crediting time elapsed before the
    /// pause. This is intentional — `craft-gals::pausible` relies on a
    /// resumed receiver getting a complete, glitch-free period in
    /// which to settle — and pinned by the
    /// `resume_mid_period_restarts_full_period` test.
    pub fn resume_clock(&mut self, clock: ClockId) {
        if self.clocks[clock.0].paused {
            self.disarm_plan();
        }
        let st = &mut self.clocks[clock.0];
        if st.paused {
            let Some(next) = self.now.checked_add(st.spec.period) else {
                // Cannot schedule another edge: leave the clock paused
                // and record the fault instead of panicking.
                let name = st.spec.name.clone();
                let now = self.now;
                self.record_fatal(SimError::TimeOverflow { clock: name, now });
                return;
            };
            st.paused = false;
            st.next_edge = next;
            if self.heap_synced {
                self.edge_heap.push(Reverse((st.next_edge, clock.0)));
            }
            self.recompute_single_active();
        }
    }

    /// True when a component called [`TickCtx::request_stop`].
    pub fn stopped(&self) -> bool {
        self.stop_requested
    }

    /// The first internal arithmetic fault recorded this run, if any.
    /// Plain `run_*` methods terminate on such faults (the offending
    /// clock stops producing edges) but return normally; this is how a
    /// caller distinguishes "finished" from "died of overflow". The
    /// `*_checked` variants surface the same value as an `Err` and
    /// clear it.
    pub fn fatal(&self) -> Option<&SimError> {
        self.fatal.as_ref()
    }

    /// Takes (and clears) the recorded fatal error.
    pub fn take_fatal(&mut self) -> Option<SimError> {
        self.fatal.take()
    }

    fn record_fatal(&mut self, err: SimError) {
        // Keep the first fault: later ones are usually a consequence.
        if self.fatal.is_none() {
            self.fatal = Some(err);
        }
        self.stop_requested = true;
    }

    /// A clone of the kernel's progress token. Hand clones to every
    /// activity source that should count as forward progress for the
    /// hang watchdog — typically data channels (see
    /// `craft-connections`' `ChannelHandle::set_progress_token`).
    /// Component wake-ups set it automatically.
    ///
    /// [`run_until_checked`](Self::run_until_checked) counts
    /// reference-clock cycles during which the token stays clear;
    /// without any wired source every cycle looks idle, so wire the
    /// token before using a watchdog.
    pub fn progress_token(&self) -> ActivityToken {
        self.progress.clone()
    }

    /// Clears a pending stop request so `run_*` can be called again.
    pub fn clear_stop(&mut self) {
        self.stop_requested = false;
    }

    /// `Some(i)` iff clock `i` is the only unpaused domain.
    fn recompute_single_active(&mut self) {
        let mut it = self.clocks.iter().enumerate().filter(|(_, c)| !c.paused);
        self.single_active = match (it.next(), it.next()) {
            (Some((i, _)), None) => Some(i),
            _ => None,
        };
        if self.single_active.is_some() {
            // The heap is not maintained on the fast path; rebuild it
            // lazily if multi-domain scheduling ever resumes.
            self.heap_synced = false;
        }
    }

    fn rebuild_heap(&mut self) {
        self.edge_heap.clear();
        for (i, c) in self.clocks.iter().enumerate() {
            if !c.paused {
                self.edge_heap.push(Reverse((c.next_edge, i)));
            }
        }
        self.heap_synced = true;
    }

    fn next_instant(&mut self) -> Option<Picoseconds> {
        if let Some(i) = self.single_active {
            return Some(self.clocks[i].next_edge);
        }
        if !self.heap_synced {
            self.rebuild_heap();
        }
        // Lazy invalidation: drop stale entries (paused or rescheduled
        // clocks) until a live one surfaces.
        while let Some(&Reverse((t, i))) = self.edge_heap.peek() {
            let c = &self.clocks[i];
            if !c.paused && c.next_edge == t {
                return Some(t);
            }
            self.edge_heap.pop();
        }
        None
    }

    /// Advances by exactly one instant (one batch of simultaneous
    /// edges). Returns `false` when no clock has a pending edge.
    ///
    /// Note on statistics: commits elided by quiescence gating are
    /// only caught up at `run_*` boundaries; call
    /// [`flush_skipped_commits`](Self::flush_skipped_commits) before
    /// reading per-cycle statistics from a raw `step` loop.
    pub fn step(&mut self) -> bool {
        if !self.eval_instant() {
            return false;
        }
        self.commit_instant();
        true
    }

    /// Time of the earliest pending edge, without advancing. `&mut`
    /// because the lazily invalidated edge heap may need a rebuild.
    pub fn peek_next_instant(&mut self) -> Option<Picoseconds> {
        self.next_instant()
    }

    /// The evaluate half of [`step`](Self::step): advances time to the
    /// earliest pending instant and ticks every component with an edge
    /// there, but performs **no commits and no clock rescheduling** —
    /// those happen in the matching [`commit_instant`](Self::commit_instant).
    ///
    /// This split is the hook the parallel epoch scheduler uses: all
    /// shards evaluate an instant concurrently (reads observe state
    /// committed at earlier instants only), synchronize on a barrier,
    /// then all commit. A plain `step()` is `eval_instant()` +
    /// `commit_instant()`.
    ///
    /// Returns `false` (and opens no instant) when no edges remain.
    ///
    /// # Panics
    /// Panics if an instant is already open (missing `commit_instant`).
    pub fn eval_instant(&mut self) -> bool {
        assert!(
            !self.mid_instant,
            "eval_instant called with an instant already open"
        );
        if self.plan.is_some() {
            return self.plan_eval();
        }
        let Some(t) = self.next_instant() else {
            return false;
        };
        self.now = t;
        self.instants += 1;
        if self.tick_profiling && self.tick_costs.len() < self.components.len() {
            self.tick_costs.resize(self.components.len(), (0, 0));
        }

        // Gather domains with an edge now, in id order. On the
        // single-clock fast path that is just the active clock; in
        // multi-domain mode, drain the heap's `== t` prefix, which
        // pops in ascending clock id for equal times (duplicates and
        // stale entries are filtered).
        self.edge_scratch.clear();
        if let Some(i) = self.single_active {
            self.edge_scratch.push(i);
        } else {
            while let Some(&Reverse((et, i))) = self.edge_heap.peek() {
                if et != t {
                    break;
                }
                self.edge_heap.pop();
                let c = &self.clocks[i];
                if !c.paused && c.next_edge == t && self.edge_scratch.last() != Some(&i) {
                    self.edge_scratch.push(i);
                }
            }
        }
        let edges = std::mem::take(&mut self.edge_scratch);

        // Evaluate phase.
        for &ci in &edges {
            let cycle = self.clocks[ci].cycles;
            for comp_pos in 0..self.by_clock[ci].len() {
                let comp_idx = self.by_clock[ci][comp_pos];
                let entry = &mut self.components[comp_idx];
                if entry.asleep {
                    let woke = entry.wake.as_ref().is_some_and(ActivityToken::take);
                    if woke {
                        entry.asleep = false;
                        // A sleeper coming back to life is forward
                        // progress even before its channels move data.
                        self.progress.set();
                    } else {
                        self.ticks_skipped += 1;
                        continue;
                    }
                }
                let mut ctx = TickCtx {
                    now: t,
                    cycle,
                    clock: entry.clock,
                    clock_requests: &mut self.clock_requests,
                    stop: &mut self.stop_requested,
                };
                if self.tick_profiling {
                    let t0 = std::time::Instant::now();
                    entry.component.tick(&mut ctx);
                    let dt = t0.elapsed().as_nanos() as u64;
                    let slot = &mut self.tick_costs[comp_idx];
                    slot.0 += dt;
                    slot.1 += 1;
                } else {
                    entry.component.tick(&mut ctx);
                }
                self.ticks_delivered += 1;
                // The quiescence check runs post-tick so it sees
                // everything the component just staged. The wake token
                // is deliberately NOT cleared here: activity flagged
                // earlier this instant (e.g. a pop freeing space) must
                // survive into the next edge's wake check.
                if self.gating && entry.wake.is_some() && entry.component.is_quiescent() {
                    entry.asleep = true;
                }
            }
        }
        self.instant_edges = edges;
        self.mid_instant = true;
        true
    }

    /// The commit half of [`step`](Self::step): commits every
    /// sequential on the clocks that fired at the instant opened by
    /// [`eval_instant`](Self::eval_instant), applies deferred clock
    /// requests, and schedules the fired clocks' next edges.
    ///
    /// # Panics
    /// Panics if no instant is open.
    pub fn commit_instant(&mut self) {
        assert!(
            self.mid_instant,
            "commit_instant without a matching eval_instant"
        );
        if self.plan.is_some() {
            self.plan_commit();
            return;
        }
        self.mid_instant = false;
        let t = self.now;
        let edges = std::mem::take(&mut self.instant_edges);

        // Commit phase. Gated sequentials whose dirty token is clear
        // are elided; their per-cycle bookkeeping is reconciled via
        // `commit_skipped` immediately before the next real commit (so
        // catch-up arithmetic always runs against the state the
        // skipped cycles actually had).
        for &ci in &edges {
            for &seq_idx in &self.seq_by_clock[ci] {
                let seq = &mut self.sequentials[seq_idx];
                let dirty = match &seq.dirty {
                    Some(token) if self.gating => token.take(),
                    _ => true,
                };
                if dirty {
                    let mut state = seq.state.borrow_mut();
                    if seq.skipped > 0 {
                        state.commit_skipped(seq.skipped);
                        seq.skipped = 0;
                    }
                    state.commit();
                } else {
                    seq.skipped += 1;
                    self.commits_skipped += 1;
                }
            }
        }

        // Apply deferred clock requests, then schedule next edges.
        self.apply_clock_requests();
        for &ci in &edges {
            if self.clocks[ci].advance() {
                if self.heap_synced {
                    self.edge_heap
                        .push(Reverse((self.clocks[ci].next_edge, ci)));
                }
            } else {
                // `advance` paused the clock; record the fault and let
                // the scheduler forget about this domain.
                let name = self.clocks[ci].spec.name.clone();
                self.record_fatal(SimError::TimeOverflow {
                    clock: name,
                    now: t,
                });
                self.recompute_single_active();
            }
        }
        self.edge_scratch = edges;
    }

    /// Applies (and drains) deferred [`ClockRequest`]s — the shared
    /// tail of the interpreted and compiled commit phases. Records a
    /// fatal on stretch overflow.
    fn apply_clock_requests(&mut self) {
        if self.clock_requests.is_empty() {
            return;
        }
        let t = self.now;
        let mut request_fault: Option<SimError> = None;
        for req in self.clock_requests.drain(..) {
            match req {
                ClockRequest::Stretch { clock, extra } => {
                    let st = &mut self.clocks[clock.0];
                    let base = st.next_period_override.unwrap_or(st.spec.period);
                    match base.checked_add(extra) {
                        Some(stretched) => st.next_period_override = Some(stretched),
                        None => {
                            request_fault.get_or_insert(SimError::ClockStretchOverflow {
                                clock: st.spec.name.clone(),
                                now: t,
                            });
                        }
                    }
                }
                ClockRequest::OverridePeriod { clock, period } => {
                    self.clocks[clock.0].next_period_override = Some(period);
                }
                ClockRequest::SetNominalPeriod { clock, period } => {
                    assert!(period > Picoseconds::ZERO, "clock period must be nonzero");
                    self.clocks[clock.0].spec.period = period;
                }
            }
        }
        if let Some(err) = request_fault {
            self.record_fatal(err);
        }
    }

    /// Compiles the current steady-state schedule into an instant plan
    /// and arms it: while armed, [`eval_instant`](Self::eval_instant) /
    /// [`commit_instant`](Self::commit_instant) (and therefore every
    /// `run_*` method) execute a dispatch-lean fast path that walks
    /// only awake components and only dirty sequentials, skipping the
    /// per-edge scans entirely.
    ///
    /// Arming requires a *regular* schedule: quiescence gating on, no
    /// tick profiling, no open instant, no pending fatal, and every
    /// unpaused clock sharing one period and phase with no override
    /// pending. Otherwise a [`PlanReject`] explains why and the
    /// interpreted path — the golden reference — simply remains in
    /// charge.
    ///
    /// The plan preserves the interpreted path's observable behaviour
    /// exactly: committed state, `cycles`, `ticks_delivered`,
    /// `ticks_skipped`, `commits_skipped`, progress/watchdog timing and
    /// hang reports are all identical. Any irregular event — structural
    /// mutation, gating/profiling toggles, clock pause/resume or
    /// stretch/override requests, an externally moved clock edge, a
    /// watchdog trip — automatically disarms the plan (a *de-opt*,
    /// counted in [`plan_deopt_count`](Self::plan_deopt_count)) and the
    /// interpreted loop resumes mid-run with no state loss: activity
    /// token flags stay authoritative while armed (notify sinks are
    /// pure acceleration), so nothing needs reconstructing.
    ///
    /// Arming when already armed is a no-op.
    pub fn arm_plan(&mut self) -> Result<(), PlanReject> {
        if self.plan.is_some() {
            return Ok(());
        }
        if self.mid_instant {
            return Err(PlanReject::MidInstant);
        }
        if !self.gating {
            return Err(PlanReject::GatingDisabled);
        }
        if self.tick_profiling {
            return Err(PlanReject::TickProfiling);
        }
        if self.fatal.is_some() {
            return Err(PlanReject::FatalPending);
        }
        let clocks: Vec<usize> = (0..self.clocks.len())
            .filter(|&i| !self.clocks[i].paused)
            .collect();
        let Some((&first, rest)) = clocks.split_first() else {
            return Err(PlanReject::NoActiveClock);
        };
        let f = &self.clocks[first];
        if f.next_period_override.is_some() {
            return Err(PlanReject::IrregularClocks);
        }
        for &ci in rest {
            let c = &self.clocks[ci];
            if c.spec.period != f.spec.period
                || c.next_edge != f.next_edge
                || c.next_period_override.is_some()
            {
                return Err(PlanReject::IrregularClocks);
            }
        }

        // Zero the per-entry skip counters so the plan's epoch-based
        // accounting starts from a settled state.
        self.flush_skipped_commits();

        let mut order: Vec<u32> = Vec::new();
        for &ci in &clocks {
            order.extend(self.by_clock[ci].iter().map(|&i| i as u32));
        }
        let mut seq_order: Vec<u32> = Vec::new();
        for &ci in &clocks {
            seq_order.extend(self.seq_by_clock[ci].iter().map(|&i| i as u32));
        }

        let wake_sink = NotifySink::new();
        let dirty_sink = NotifySink::new();
        let mut active: Vec<u32> = Vec::new();
        let mut deferred: Vec<u32> = Vec::new();
        for (rank, &idx) in order.iter().enumerate() {
            let entry = &self.components[idx as usize];
            if let Some(token) = &entry.wake {
                match token.attach_notify(&wake_sink, rank as u32) {
                    // A sleeper whose flag is already set is due a wake
                    // check at the next instant; no sink notification
                    // will come for an already-set flag, so queue it.
                    Some(was_set) => {
                        if entry.asleep && was_set {
                            deferred.push(rank as u32);
                        }
                    }
                    None => {
                        for &j in &order[..rank] {
                            if let Some(t) = &self.components[j as usize].wake {
                                t.detach_notify();
                            }
                        }
                        return Err(PlanReject::SharedWakeToken);
                    }
                }
            }
            if !entry.asleep {
                active.push(rank as u32);
            }
        }
        let mut always: Vec<u32> = Vec::new();
        for (rank, &si) in seq_order.iter().enumerate() {
            let seq = &self.sequentials[si as usize];
            match &seq.dirty {
                Some(token) => match token.attach_notify(&dirty_sink, rank as u32) {
                    // An already-dirty sequential must commit at the
                    // next instant: seed the sink by hand.
                    Some(true) => dirty_sink.push(rank as u32),
                    Some(false) => {}
                    None => {
                        for &j in &order {
                            if let Some(t) = &self.components[j as usize].wake {
                                t.detach_notify();
                            }
                        }
                        for &j in &seq_order[..rank] {
                            if let Some(t) = &self.sequentials[j as usize].dirty {
                                t.detach_notify();
                            }
                        }
                        return Err(PlanReject::SharedDirtyToken);
                    }
                },
                None => always.push(rank as u32),
            }
        }

        let seq_seen = vec![0u64; seq_order.len()];
        // The plan does not maintain the edge heap; force a rebuild
        // whenever the interpreted scheduler next needs it.
        self.heap_synced = false;
        self.plan_armed_flag.set(1);
        self.plan = Some(Box::new(PlanState {
            clocks,
            order,
            active,
            wake_sink,
            wake_scratch: Vec::new(),
            deferred,
            pending: Vec::new(),
            seq_order,
            always,
            dirty_sink,
            dirty_scratch: Vec::new(),
            epoch: 0,
            seq_seen,
        }));
        Ok(())
    }

    /// Disarms the compiled plan (a *de-opt*): settles the plan's
    /// skipped-commit accounting, detaches every notify sink, and hands
    /// control back to the interpreted path. Safe at any point,
    /// including between an `eval_instant` and its `commit_instant` —
    /// token flags remain the source of truth while armed, so the
    /// interpreted loop resumes with exactly the state it would have
    /// had. No-op when no plan is armed.
    pub fn disarm_plan(&mut self) {
        let Some(plan) = self.plan.take() else {
            return;
        };
        for (rank, &si) in plan.seq_order.iter().enumerate() {
            let pending = plan.epoch - plan.seq_seen[rank];
            if pending > 0 {
                self.sequentials[si as usize]
                    .state
                    .borrow_mut()
                    .commit_skipped(pending);
                self.commits_skipped += pending;
            }
            if let Some(token) = &self.sequentials[si as usize].dirty {
                token.detach_notify();
            }
        }
        for &idx in &plan.order {
            if let Some(token) = &self.components[idx as usize].wake {
                token.detach_notify();
            }
        }
        self.plan_armed_flag.set(0);
        self.plan_deopts.set(self.plan_deopts.get() + 1);
        self.heap_synced = false;
        self.recompute_single_active();
    }

    /// Whether a compiled instant plan is currently armed.
    pub fn plan_armed(&self) -> bool {
        self.plan.is_some()
    }

    /// How many times a compiled plan has been disarmed (de-opted).
    pub fn plan_deopt_count(&self) -> u64 {
        self.plan_deopts.get()
    }

    /// Instants executed by the compiled fast path (a subset of
    /// [`instants`](Self::instants)).
    pub fn plan_instants(&self) -> u64 {
        self.plan_instants.get()
    }

    /// Live handle to the de-opt counter, for telemetry probes.
    pub fn plan_deopt_handle(&self) -> Rc<Cell<u64>> {
        Rc::clone(&self.plan_deopts)
    }

    /// Live handle to the compiled-instant counter, for telemetry.
    pub fn plan_instants_handle(&self) -> Rc<Cell<u64>> {
        Rc::clone(&self.plan_instants)
    }

    /// Live handle to the armed flag (1 armed / 0 not), for telemetry.
    pub fn plan_armed_handle(&self) -> Rc<Cell<u64>> {
        Rc::clone(&self.plan_armed_flag)
    }

    /// Snapshot of the armed plan's frozen schedule (`None` when
    /// interpreted). `craft-soc`'s `schedplan` renders this as the
    /// instant-plan IR.
    pub fn plan_desc(&self) -> Option<PlanDesc> {
        let plan = self.plan.as_ref()?;
        Some(PlanDesc {
            clocks: plan
                .clocks
                .iter()
                .map(|&ci| self.clocks[ci].spec.name.clone())
                .collect(),
            nodes: plan
                .order
                .iter()
                .map(|&idx| {
                    let e = &self.components[idx as usize];
                    PlanNode {
                        name: e.component.name().to_string(),
                        clock: self.clocks[e.clock.0].spec.name.clone(),
                        gated: e.wake.is_some(),
                    }
                })
                .collect(),
            gated_sequentials: plan.seq_order.len() - plan.always.len(),
            always_commit_sequentials: plan.always.len(),
        })
    }

    /// The compiled evaluate phase: wake-candidate drain, then a tick
    /// walk over the `active` worklist only. Mirrors the interpreted
    /// evaluate phase observably — same delivery order, same wake and
    /// progress timing, same tick accounting.
    fn plan_eval(&mut self) -> bool {
        let mut plan = self.plan.take().expect("plan_eval without a plan");
        // Uniform-clock invariant: every plan clock shares this edge.
        let t = self.clocks[plan.clocks[0]].next_edge;
        self.now = t;
        self.instants += 1;
        self.plan_instants.set(self.plan_instants.get() + 1);

        // This instant's wake candidates: deferred checks from the
        // previous instant plus sink notifications raised since the
        // walk last drained it (late-eval sets and commit-phase sets).
        // Candidates are *hints*, not wakes: the flag is checked — and
        // consumed — only when the merge walk below reaches the
        // candidate's rank, which is exactly where the interpreted
        // scan performs its asleep/take check. Taking the flag any
        // earlier (at notify time or at instant start) would let a
        // later set from an earlier-rank tick this instant re-raise
        // the flag and schedule a spurious wake for the next instant.
        plan.pending.clear();
        plan.pending.append(&mut plan.deferred);
        plan.wake_sink.drain_into(&mut plan.pending);
        plan.pending.sort_unstable();
        plan.pending.dedup();

        // Merge walk in ascending rank order over the awake set and
        // the wake candidates; rank order *is* the interpreted
        // delivery order.
        let mut i = 0usize; // next awake rank (plan.active)
        let mut j = 0usize; // next wake candidate (plan.pending)
        let mut delivered = 0u64;
        loop {
            let rank = match (plan.active.get(i).copied(), plan.pending.get(j).copied()) {
                (None, None) => break,
                (Some(a), Some(p)) if a == p => {
                    // The candidate's component is awake: the
                    // interpreted scan never touches an awake
                    // component's flag, so the hint is stale. Its tick
                    // happens via the active branch next iteration.
                    j += 1;
                    continue;
                }
                (Some(a), Some(p)) if a < p => a,
                (_, Some(p)) => {
                    // The candidate's scan position (no awake rank
                    // ahead of it): wake-or-drop.
                    j += 1;
                    let entry = &mut self.components[plan.order[p as usize] as usize];
                    if !(entry.asleep && entry.wake.as_ref().is_some_and(ActivityToken::take)) {
                        continue;
                    }
                    entry.asleep = false;
                    self.progress.set();
                    // Every rank processed so far is < p, so inserting
                    // at the walk cursor keeps `active` sorted.
                    plan.active.insert(i, p);
                    p
                }
                (Some(a), None) => a,
            };
            let entry = &mut self.components[plan.order[rank as usize] as usize];
            let mut ctx = TickCtx {
                now: t,
                cycle: self.clocks[entry.clock.0].cycles,
                clock: entry.clock,
                clock_requests: &mut self.clock_requests,
                stop: &mut self.stop_requested,
            };
            entry.component.tick(&mut ctx);
            delivered += 1;
            if entry.wake.is_some() && entry.component.is_quiescent() {
                // Same contract as the interpreted loop: the wake flag
                // is NOT cleared on sleep. An already-set flag produces
                // no future sink notification, so queue the wake check
                // for the next instant explicitly.
                entry.asleep = true;
                plan.active.remove(i);
                if entry.wake.as_ref().is_some_and(ActivityToken::is_set) {
                    plan.deferred.push(rank);
                }
            } else {
                i += 1;
            }
            // Absorb notifications raised by this tick. A rank still
            // ahead of the walk joins this instant's candidates (its
            // scan position hasn't passed); one at or behind the walk
            // waits for the next instant — both exactly what the
            // interpreted scan does.
            if !plan.wake_sink.is_empty() {
                plan.wake_scratch.clear();
                plan.wake_sink.drain_into(&mut plan.wake_scratch);
                for k in 0..plan.wake_scratch.len() {
                    let r = plan.wake_scratch[k];
                    if r > rank {
                        if let Err(pos) = plan.pending[j..].binary_search(&r) {
                            plan.pending.insert(j + pos, r);
                        }
                    } else {
                        plan.deferred.push(r);
                    }
                }
            }
        }
        self.ticks_delivered += delivered;
        self.ticks_skipped += plan.order.len() as u64 - delivered;

        // Publish the fired-clock list so a mid-instant de-opt hands
        // the interpreted commit phase a coherent open instant.
        self.instant_edges.clear();
        self.instant_edges.extend_from_slice(&plan.clocks);
        self.mid_instant = true;
        self.plan = Some(plan);
        true
    }

    /// The compiled commit phase: commits only dirty + always-commit
    /// sequentials (epoch-based skip accounting), then runs the shared
    /// clock-request/advance tail. Any clock irregularity observed
    /// here — a stretch/override request, an advance failure — de-opts.
    fn plan_commit(&mut self) {
        let mut plan = self.plan.take().expect("plan_commit without a plan");
        self.mid_instant = false;

        plan.dirty_scratch.clear();
        plan.dirty_sink.drain_into(&mut plan.dirty_scratch);
        plan.dirty_scratch.sort_unstable();
        plan.dirty_scratch.dedup();
        let epoch = plan.epoch;
        let (mut di, mut ai) = (0usize, 0usize);
        loop {
            // Merge the dirty and always lists in ascending rank order
            // (= interpreted commit order); the two sets are disjoint.
            let rank = match (plan.dirty_scratch.get(di), plan.always.get(ai)) {
                (None, None) => break,
                (Some(&d), None) => {
                    di += 1;
                    d
                }
                (None, Some(&a)) => {
                    ai += 1;
                    a
                }
                (Some(&d), Some(&a)) => {
                    if d < a {
                        di += 1;
                        d
                    } else {
                        ai += 1;
                        a
                    }
                }
            };
            let seq = &mut self.sequentials[plan.seq_order[rank as usize] as usize];
            if let Some(dirty) = &seq.dirty {
                // Clear before committing so a re-arm `set()` inside
                // `commit` queues next instant's notification.
                dirty.take();
            }
            let pending = epoch - plan.seq_seen[rank as usize];
            let mut state = seq.state.borrow_mut();
            if pending > 0 {
                state.commit_skipped(pending);
                self.commits_skipped += pending;
            }
            state.commit();
            plan.seq_seen[rank as usize] = epoch + 1;
        }
        plan.epoch = epoch + 1;

        // Shared tail. Clock requests break the uniform-schedule
        // invariant from the next instant on: apply them faithfully,
        // then de-opt.
        let deopt = !self.clock_requests.is_empty();
        self.apply_clock_requests();
        let mut advance_failed = false;
        let t = self.now;
        for &ci in &plan.clocks {
            if !self.clocks[ci].advance() {
                let name = self.clocks[ci].spec.name.clone();
                self.record_fatal(SimError::TimeOverflow {
                    clock: name,
                    now: t,
                });
                self.recompute_single_active();
                advance_failed = true;
            }
        }
        self.heap_synced = false;
        self.plan = Some(plan);
        if deopt || advance_failed {
            self.disarm_plan();
        }
    }

    /// Number of registered clock domains.
    pub fn clock_count(&self) -> usize {
        self.clocks.len()
    }

    /// Name of a registered clock domain.
    pub fn clock_name(&self, clock: ClockId) -> String {
        self.clocks[clock.0].spec.name.clone()
    }

    /// Scheduled time of `clock`'s next rising edge, or `None` while it
    /// is paused. This is the value a parallel shard publishes for the
    /// clocks it owns after every commit.
    pub fn clock_next_edge(&self, clock: ClockId) -> Option<Picoseconds> {
        let st = &self.clocks[clock.0];
        (!st.paused).then_some(st.next_edge)
    }

    /// Overwrites `clock`'s scheduled next edge. Parallel shards use
    /// this to adopt the authoritative schedule of clocks they merely
    /// *follow* (the owning shard applies stretches/overrides and
    /// publishes the result). No effect on a paused clock.
    pub fn set_clock_next_edge(&mut self, clock: ClockId, at: Picoseconds) {
        let st = &self.clocks[clock.0];
        if st.paused || st.next_edge == at {
            // Adopting the value the clock already has (the parallel
            // scheduler's common case under uniform clocking) is a
            // no-op and in particular does not de-opt a compiled plan.
            return;
        }
        self.disarm_plan();
        self.clocks[clock.0].next_edge = at;
        // The heap entry for the old edge is now stale; rebuild on
        // demand (same lazy-invalidation path pause/resume uses).
        self.heap_synced = false;
    }

    /// Takes (and clears) the kernel's progress flag — what
    /// [`run_until_checked`](Self::run_until_checked) does internally
    /// once per instant. External watchdog drivers (the parallel epoch
    /// scheduler) poll it the same way.
    pub fn take_progress(&mut self) -> bool {
        self.progress.take()
    }

    /// Snapshots every registered component and sequential into a
    /// [`HangReport`], for callers running their own watchdog (the
    /// parallel epoch scheduler aggregates one of these per shard).
    pub fn diagnose_hang(&self, idle_cycles: u64) -> HangReport {
        self.diagnose(idle_cycles)
    }

    /// Runs until simulation time reaches or passes `deadline`, a stop
    /// is requested, or no edges remain.
    pub fn run_until_time(&mut self, deadline: Picoseconds) {
        while !self.stop_requested {
            match self.next_instant() {
                Some(t) if t <= deadline => {
                    self.step();
                }
                _ => break,
            }
        }
        self.flush_skipped_commits();
    }

    /// Runs until `clock` has received `n` more rising edges, a stop is
    /// requested, or no edges remain.
    pub fn run_cycles(&mut self, clock: ClockId, n: u64) {
        let target = self.clocks[clock.0].cycles + n;
        while !self.stop_requested && self.clocks[clock.0].cycles < target {
            if !self.step() {
                break;
            }
        }
        self.flush_skipped_commits();
    }

    /// Runs until `done()` returns true, a stop is requested,
    /// `max_cycles` edges elapse on `clock`, or no edges remain.
    /// Returns `true` if the predicate fired.
    ///
    /// The predicate is evaluated **exactly once per instant
    /// boundary** (including the boundary the run starts and ends on),
    /// so predicates with side effects observe each boundary once.
    pub fn run_until(
        &mut self,
        clock: ClockId,
        max_cycles: u64,
        mut done: impl FnMut() -> bool,
    ) -> bool {
        let limit = self.clocks[clock.0].cycles + max_cycles;
        loop {
            if done() {
                self.flush_skipped_commits();
                return true;
            }
            if self.stop_requested || self.clocks[clock.0].cycles >= limit || !self.step() {
                self.flush_skipped_commits();
                return false;
            }
        }
    }

    /// Like [`run_until`](Self::run_until), but with a hang watchdog
    /// and typed errors. Returns:
    ///
    /// * `Ok(true)` — the predicate fired;
    /// * `Ok(false)` — stop request, `max_cycles` exhausted, or no
    ///   edges remain (the plain-`run_until` `false` outcomes);
    /// * `Err(SimError::Hang)` — `no_progress_limit` consecutive
    ///   `clock` cycles elapsed with no activity on the kernel's
    ///   [`progress token`](Self::progress_token) (no channel push/pop,
    ///   no component wake), with a [`HangReport`] diagnosing every
    ///   registered component and channel;
    /// * `Err(SimError::TimeOverflow)` /
    ///   `Err(SimError::ClockStretchOverflow)` — an internal arithmetic
    ///   fault that previously `expect()`-panicked.
    ///
    /// Like `run_until`, the predicate is evaluated exactly once per
    /// instant boundary.
    ///
    /// # Panics
    /// Panics if `no_progress_limit` is zero (every run would
    /// instantly be a hang).
    pub fn run_until_checked(
        &mut self,
        clock: ClockId,
        max_cycles: u64,
        no_progress_limit: u64,
        done: impl FnMut() -> bool,
    ) -> Result<bool, SimError> {
        let mut wd = WatchdogState {
            idle: 0,
            last_cycle: self.clocks[clock.0].cycles,
        };
        self.run_until_checked_with(clock, max_cycles, no_progress_limit, &mut wd, done)
    }

    /// [`run_until_checked`](Self::run_until_checked) with the
    /// watchdog accumulators externalized in `wd`, so a supervised run
    /// can be split into segments (e.g. around a checkpoint capture)
    /// and still trip the watchdog on exactly the cycle an
    /// uninterrupted call would: carry the same `wd` across segments.
    /// The classic entry point seeds `wd` with `idle: 0, last_cycle:
    /// <current cycle>`.
    pub fn run_until_checked_with(
        &mut self,
        clock: ClockId,
        max_cycles: u64,
        no_progress_limit: u64,
        wd: &mut WatchdogState,
        mut done: impl FnMut() -> bool,
    ) -> Result<bool, SimError> {
        assert!(
            no_progress_limit > 0,
            "no_progress_limit must be at least one cycle"
        );
        let limit = self.clocks[clock.0].cycles + max_cycles;
        loop {
            if self.fatal.is_some() {
                self.flush_skipped_commits();
                return Err(self.fatal.take().expect("just checked"));
            }
            if done() {
                self.flush_skipped_commits();
                return Ok(true);
            }
            if self.stop_requested || self.clocks[clock.0].cycles >= limit || !self.step() {
                self.flush_skipped_commits();
                // A fault recorded during the final step surfaces as
                // the error it is, not as a bare "didn't finish".
                if let Some(err) = self.fatal.take() {
                    return Err(err);
                }
                return Ok(false);
            }
            let cycle = self.clocks[clock.0].cycles;
            if self.progress.take() {
                wd.idle = 0;
            } else {
                wd.idle += cycle - wd.last_cycle;
            }
            wd.last_cycle = cycle;
            if wd.idle >= no_progress_limit {
                // Watchdog trip is a de-opt trigger: diagnose from the
                // interpreted state so the report is identical to an
                // interpreted run's (and later runs stay interpreted).
                self.disarm_plan();
                self.flush_skipped_commits();
                let report = self.diagnose(wd.idle);
                return Err(SimError::Hang {
                    clock: self.clocks[clock.0].spec.name.clone(),
                    cycle,
                    now: self.now,
                    report,
                });
            }
        }
    }

    /// Snapshots every registered component and sequential for a
    /// [`HangReport`].
    fn diagnose(&self, idle_cycles: u64) -> HangReport {
        let components = self
            .components
            .iter()
            .map(|e| CompDiag {
                name: e.component.name().to_string(),
                clock: self.clocks[e.clock.0].spec.name.clone(),
                asleep: e.asleep,
                quiescent: e.component.is_quiescent(),
                wait: e.component.wait_reason(),
            })
            .collect();
        let channels = self
            .sequentials
            .iter()
            .filter_map(|s| s.state.borrow().diagnose())
            .collect();
        HangReport {
            idle_cycles,
            components,
            channels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    struct Probe {
        name: String,
        hits: Rc<Cell<u64>>,
        last_cycle: Rc<Cell<u64>>,
    }

    impl Component for Probe {
        fn name(&self) -> &str {
            &self.name
        }
        fn tick(&mut self, ctx: &mut TickCtx<'_>) {
            self.hits.set(self.hits.get() + 1);
            self.last_cycle.set(ctx.cycle());
        }
    }

    fn probe(name: &str) -> (Probe, Rc<Cell<u64>>, Rc<Cell<u64>>) {
        let hits = Rc::new(Cell::new(0));
        let last = Rc::new(Cell::new(0));
        (
            Probe {
                name: name.into(),
                hits: Rc::clone(&hits),
                last_cycle: Rc::clone(&last),
            },
            hits,
            last,
        )
    }

    #[test]
    fn single_clock_ticks_once_per_cycle() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("c", Picoseconds(1000)));
        let (p, hits, last) = probe("p");
        sim.add_component(clk, p);
        sim.run_cycles(clk, 5);
        assert_eq!(hits.get(), 5);
        assert_eq!(last.get(), 4);
        assert_eq!(sim.now(), Picoseconds(4000));
    }

    #[test]
    fn unrelated_clocks_interleave_by_time() {
        let mut sim = Simulator::new();
        let fast = sim.add_clock(ClockSpec::new("fast", Picoseconds(100)));
        let slow = sim.add_clock(ClockSpec::new("slow", Picoseconds(250)));
        let (pf, hf, _) = probe("f");
        let (ps, hs, _) = probe("s");
        sim.add_component(fast, pf);
        sim.add_component(slow, ps);
        sim.run_until_time(Picoseconds(1000));
        // fast edges: 0,100,...,1000 -> 11; slow: 0,250,500,750,1000 -> 5
        assert_eq!(hf.get(), 11);
        assert_eq!(hs.get(), 5);
    }

    #[test]
    fn pause_and_resume() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("c", Picoseconds(100)));
        let (p, hits, _) = probe("p");
        sim.add_component(clk, p);
        sim.run_cycles(clk, 3);
        sim.pause_clock(clk);
        sim.run_until_time(Picoseconds(10_000));
        assert_eq!(hits.get(), 3);
        sim.resume_clock(clk);
        sim.run_cycles(clk, 2);
        assert_eq!(hits.get(), 5);
    }

    struct Stopper {
        at: u64,
    }
    impl Component for Stopper {
        fn name(&self) -> &str {
            "stopper"
        }
        fn tick(&mut self, ctx: &mut TickCtx<'_>) {
            if ctx.cycle() == self.at {
                ctx.request_stop();
            }
        }
    }

    #[test]
    fn stop_request_halts_run() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("c", Picoseconds(100)));
        sim.add_component(clk, Stopper { at: 7 });
        sim.run_cycles(clk, 1_000);
        assert!(sim.stopped());
        assert_eq!(sim.cycles(clk), 8); // edge 7 completed, then halt
    }

    struct Stretcher;
    impl Component for Stretcher {
        fn name(&self) -> &str {
            "stretcher"
        }
        fn tick(&mut self, ctx: &mut TickCtx<'_>) {
            if ctx.cycle() == 1 {
                let clock = ctx.clock();
                ctx.stretch_clock(clock, Picoseconds(50));
            }
        }
    }

    #[test]
    fn stretch_delays_next_edge_only() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("c", Picoseconds(100)));
        sim.add_component(clk, Stretcher);
        sim.run_cycles(clk, 4);
        // Edges at 0, 100, 250 (stretched), 350.
        assert_eq!(sim.now(), Picoseconds(350));
    }

    #[test]
    fn sequential_commit_runs_after_eval() {
        struct Latch {
            staged: u64,
            value: u64,
        }
        impl Sequential for Latch {
            fn commit(&mut self) {
                self.value = self.staged;
            }
        }
        struct Writer {
            latch: Rc<RefCell<Latch>>,
            observed_before_commit: Rc<Cell<u64>>,
        }
        impl Component for Writer {
            fn name(&self) -> &str {
                "writer"
            }
            fn tick(&mut self, ctx: &mut TickCtx<'_>) {
                let mut l = self.latch.borrow_mut();
                // Reads must see the value committed at a previous edge.
                self.observed_before_commit.set(l.value);
                l.staged = ctx.cycle() + 1;
            }
        }
        let latch = Rc::new(RefCell::new(Latch {
            staged: 0,
            value: 0,
        }));
        let seen = Rc::new(Cell::new(u64::MAX));
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("c", Picoseconds(100)));
        sim.add_component(
            clk,
            Writer {
                latch: Rc::clone(&latch),
                observed_before_commit: Rc::clone(&seen),
            },
        );
        sim.add_sequential(clk, latch.clone());
        sim.run_cycles(clk, 1);
        assert_eq!(seen.get(), 0); // saw pre-commit value
        assert_eq!(latch.borrow().value, 1); // commit applied after eval
        sim.run_cycles(clk, 1);
        assert_eq!(seen.get(), 1);
        assert_eq!(latch.borrow().value, 2);
    }

    #[test]
    fn run_until_predicate() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("c", Picoseconds(100)));
        let (p, hits, _) = probe("p");
        sim.add_component(clk, p);
        let h2 = Rc::clone(&hits);
        let fired = sim.run_until(clk, 1_000, move || h2.get() >= 5);
        assert!(fired);
        assert_eq!(hits.get(), 5);
    }

    #[test]
    fn run_until_respects_cycle_limit() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("c", Picoseconds(100)));
        let fired = sim.run_until(clk, 10, || false);
        assert!(!fired);
        assert_eq!(sim.cycles(clk), 10);
    }

    /// Regression: `run_until` must evaluate a side-effecting predicate
    /// exactly once per instant boundary, on every exit path. The seed
    /// kernel called `done()` twice at the final boundary when the
    /// run ended because no edges remained.
    #[test]
    fn run_until_evaluates_predicate_once_per_boundary() {
        // Timeout path: N steps -> N+1 boundaries.
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("c", Picoseconds(100)));
        let calls = Rc::new(Cell::new(0u64));
        let c2 = Rc::clone(&calls);
        let fired = sim.run_until(clk, 10, move || {
            c2.set(c2.get() + 1);
            false
        });
        assert!(!fired);
        assert_eq!(calls.get(), 11, "10 instants -> 11 boundaries");

        // No-edges path (paused clock): a single boundary, a single call.
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("c", Picoseconds(100)));
        sim.pause_clock(clk);
        let calls = Rc::new(Cell::new(0u64));
        let c2 = Rc::clone(&calls);
        let fired = sim.run_until(clk, 10, move || {
            c2.set(c2.get() + 1);
            false
        });
        assert!(!fired);
        assert_eq!(calls.get(), 1, "no edges -> exactly one evaluation");

        // Predicate-fires path: counting boundaries, not double-counting.
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("c", Picoseconds(100)));
        let calls = Rc::new(Cell::new(0u64));
        let c2 = Rc::clone(&calls);
        let fired = sim.run_until(clk, 100, move || {
            c2.set(c2.get() + 1);
            c2.get() > 5
        });
        assert!(fired);
        assert_eq!(calls.get(), 6);
        assert_eq!(sim.cycles(clk), 5);
    }

    /// Pins the pausible-clock contract `craft-gals::pausible` relies
    /// on: resuming a clock paused mid-period restarts a *full* period
    /// from the resume point — elapsed pre-pause time is not credited.
    #[test]
    fn resume_mid_period_restarts_full_period() {
        let mut sim = Simulator::new();
        let _a = sim.add_clock(ClockSpec::new("a", Picoseconds(100)));
        let b = sim.add_clock(ClockSpec::new("b", Picoseconds(130)));
        // Run until a's edge at 300 (b has edges at 0,130,260).
        sim.run_until_time(Picoseconds(300));
        assert_eq!(sim.now(), Picoseconds(300));
        // b is mid-period: its next edge would be 390.
        sim.pause_clock(b);
        sim.run_until_time(Picoseconds(400));
        // Resume at now=400: next b edge is 400+130=530, NOT 390.
        sim.resume_clock(b);
        let b_cycles = sim.cycles(b);
        sim.run_until_time(Picoseconds(529));
        assert_eq!(sim.cycles(b), b_cycles, "no b edge before 530");
        sim.run_until_time(Picoseconds(530));
        assert_eq!(sim.cycles(b), b_cycles + 1, "b edge lands at 530");
    }

    /// The indexed edge heap and the single-clock fast path must agree
    /// with the reference min-scan across pause/resume/stretch and
    /// clock-count transitions.
    #[test]
    fn heap_schedule_matches_min_scan_reference() {
        // Mirror of the kernel's edge sequence computed naively.
        fn reference(periods: &[u64], until: u64) -> Vec<(u64, Vec<usize>)> {
            let mut next: Vec<u64> = periods.iter().map(|_| 0).collect();
            let mut out = Vec::new();
            loop {
                let t = *next.iter().min().expect("nonempty");
                if t > until {
                    return out;
                }
                let who: Vec<usize> = (0..periods.len()).filter(|&i| next[i] == t).collect();
                for &i in &who {
                    next[i] += periods[i];
                }
                out.push((t, who));
            }
        }

        struct Recorder {
            log: Rc<RefCell<Vec<(u64, usize)>>>,
            idx: usize,
        }
        impl Component for Recorder {
            fn name(&self) -> &str {
                "rec"
            }
            fn tick(&mut self, ctx: &mut TickCtx<'_>) {
                self.log.borrow_mut().push((ctx.now().as_ps(), self.idx));
            }
        }

        let periods = [70u64, 100, 100, 130, 35];
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new();
        for (idx, &p) in periods.iter().enumerate() {
            let clk = sim.add_clock(ClockSpec::new(format!("c{idx}"), Picoseconds(p)));
            sim.add_component(
                clk,
                Recorder {
                    log: Rc::clone(&log),
                    idx,
                },
            );
        }
        sim.run_until_time(Picoseconds(2_000));

        let expect: Vec<(u64, usize)> = reference(&periods, 2_000)
            .into_iter()
            .flat_map(|(t, who)| who.into_iter().map(move |i| (t, i)))
            .collect();
        assert_eq!(*log.borrow(), expect);
    }

    #[test]
    fn fast_path_survives_pause_resume_transitions() {
        let mut sim = Simulator::new();
        let a = sim.add_clock(ClockSpec::new("a", Picoseconds(100)));
        let b = sim.add_clock(ClockSpec::new("b", Picoseconds(100)));
        let (pa, ha, _) = probe("a");
        let (pb, hb, _) = probe("b");
        sim.add_component(a, pa);
        sim.add_component(b, pb);
        // Multi-domain, then single (b paused), then multi again.
        sim.run_cycles(a, 3);
        sim.pause_clock(b);
        sim.run_cycles(a, 3);
        sim.resume_clock(b);
        sim.run_cycles(a, 3);
        assert_eq!(ha.get(), 9);
        // b ticked alongside a (same period/phase) until paused after
        // its 3rd cycle; resumed at t=500 its edges (600,700,800) land
        // on a's final three instants again.
        assert_eq!(hb.get(), 3 + 3);
        assert_eq!(sim.cycles(a), 9);
    }

    /// A quiescent component with a wake token sleeps; channel-style
    /// activity on the token rouses it; cycle counts are untouched.
    #[test]
    fn gating_skips_quiescent_components_and_wakes_on_token() {
        struct Dozer {
            work: Rc<Cell<u64>>,
            ticks: Rc<Cell<u64>>,
        }
        impl Component for Dozer {
            fn name(&self) -> &str {
                "dozer"
            }
            fn tick(&mut self, _ctx: &mut TickCtx<'_>) {
                self.ticks.set(self.ticks.get() + 1);
                if self.work.get() > 0 {
                    self.work.set(self.work.get() - 1);
                }
            }
        }
        impl Dozer {
            fn quiescent(&self) -> bool {
                self.work.get() == 0
            }
        }
        // Forward is_quiescent through the trait.
        struct DozerC(Dozer);
        impl Component for DozerC {
            fn name(&self) -> &str {
                self.0.name()
            }
            fn tick(&mut self, ctx: &mut TickCtx<'_>) {
                self.0.tick(ctx)
            }
            fn is_quiescent(&self) -> bool {
                self.0.quiescent()
            }
        }

        let work = Rc::new(Cell::new(2u64));
        let ticks = Rc::new(Cell::new(0u64));
        let token = ActivityToken::new();
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("c", Picoseconds(100)));
        let id = sim.add_component(
            clk,
            DozerC(Dozer {
                work: Rc::clone(&work),
                ticks: Rc::clone(&ticks),
            }),
        );
        sim.set_wake_token(id, token.clone());

        // Two busy ticks, then the second tick drains work -> sleeps.
        sim.run_cycles(clk, 10);
        assert_eq!(ticks.get(), 2, "slept after work drained");
        assert_eq!(sim.cycles(clk), 10, "cycle count unaffected by sleep");
        assert_eq!(sim.ticks_skipped(), 8);

        // Activity arrives: wakes on its next edge, works once, sleeps.
        work.set(1);
        token.set();
        sim.run_cycles(clk, 5);
        assert_eq!(ticks.get(), 3);
        assert_eq!(sim.cycles(clk), 15);

        // Gating off: ticks every edge again.
        sim.set_gating(false);
        sim.run_cycles(clk, 4);
        assert_eq!(ticks.get(), 7);
    }

    /// Time overflow no longer panics: the run terminates, the fault is
    /// recorded, and the checked variant surfaces it as `Err`.
    #[test]
    fn time_overflow_is_recorded_not_panicked() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("huge", Picoseconds(u64::MAX - 5)));
        sim.run_cycles(clk, 100); // would previously panic
        assert!(sim.cycles(clk) < 100, "clock died before the target");
        assert!(matches!(sim.fatal(), Some(SimError::TimeOverflow { .. })));
        assert!(sim.stopped());

        // The checked variant reports the same fault as a typed error.
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("huge", Picoseconds(u64::MAX - 5)));
        let err = sim
            .run_until_checked(clk, 100, 1_000, || false)
            .expect_err("overflow must surface");
        assert!(matches!(err, SimError::TimeOverflow { ref clock, .. } if clock == "huge"));
        assert!(sim.fatal().is_none(), "checked run consumed the fault");
    }

    /// Clock-stretch overflow is likewise recorded instead of panicking.
    #[test]
    fn stretch_overflow_is_recorded_not_panicked() {
        struct BigStretch;
        impl Component for BigStretch {
            fn name(&self) -> &str {
                "big-stretch"
            }
            fn tick(&mut self, ctx: &mut TickCtx<'_>) {
                let clock = ctx.clock();
                ctx.stretch_clock(clock, Picoseconds::MAX);
            }
        }
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("c", Picoseconds(100)));
        sim.add_component(clk, BigStretch);
        let err = sim
            .run_until_checked(clk, 10, 1_000, || false)
            .expect_err("stretch overflow must surface");
        assert!(matches!(err, SimError::ClockStretchOverflow { .. }));
    }

    /// Resuming a clock too close to the end of time records the fault
    /// and leaves the clock paused.
    #[test]
    fn resume_near_end_of_time_records_overflow() {
        let mut sim = Simulator::new();
        let a = sim.add_clock(ClockSpec::new("a", Picoseconds(u64::MAX - 5)));
        let b = sim.add_clock(ClockSpec::new("b", Picoseconds(u64::MAX - 5)));
        sim.pause_clock(b);
        sim.run_cycles(a, 2); // now sits at MAX-5
        assert_eq!(sim.now(), Picoseconds(u64::MAX - 5));
        sim.clear_stop();
        sim.take_fatal();
        sim.resume_clock(b);
        assert!(
            matches!(sim.fatal(), Some(SimError::TimeOverflow { ref clock, .. }) if clock == "b")
        );
    }

    /// The watchdog fires on a design that makes no progress, and the
    /// report diagnoses components and channels.
    #[test]
    fn watchdog_detects_no_progress_and_diagnoses() {
        struct Waiter;
        impl Component for Waiter {
            fn name(&self) -> &str {
                "waiter"
            }
            fn tick(&mut self, _ctx: &mut TickCtx<'_>) {}
            fn wait_reason(&self) -> Option<String> {
                Some("waiting for a token that never comes".into())
            }
        }
        struct StuckQueue;
        impl Sequential for StuckQueue {
            fn commit(&mut self) {}
            fn diagnose(&self) -> Option<crate::SeqDiag> {
                Some(crate::SeqDiag {
                    name: "stuck-q".into(),
                    occupancy: 3,
                    pending: true,
                    note: "test fixture".into(),
                })
            }
        }
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("core", Picoseconds(100)));
        sim.add_component(clk, Waiter);
        sim.add_sequential(clk, Rc::new(RefCell::new(StuckQueue)));
        let err = sim
            .run_until_checked(clk, 10_000, 64, || false)
            .expect_err("must hang");
        let SimError::Hang {
            clock,
            cycle,
            report,
            ..
        } = err
        else {
            panic!("expected Hang, got {err}");
        };
        assert_eq!(clock, "core");
        assert_eq!(cycle, 64, "fired exactly at the idle limit");
        assert_eq!(report.idle_cycles, 64);
        assert_eq!(report.components.len(), 1);
        assert_eq!(
            report.components[0].wait.as_deref(),
            Some("waiting for a token that never comes")
        );
        assert_eq!(report.channels.len(), 1);
        assert!(report.channels[0].pending);
    }

    /// Progress on the token holds the watchdog off; the run then
    /// completes normally (predicate or cycle limit).
    #[test]
    fn watchdog_spares_runs_that_make_progress() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("core", Picoseconds(100)));
        let (p, hits, _) = probe("p");
        sim.add_component(clk, p);
        let token = sim.progress_token();
        // An external source marks progress every instant (as channels
        // do on every push/pop).
        let h2 = Rc::clone(&hits);
        let t2 = token.clone();
        let done = move || {
            t2.set();
            h2.get() >= 500
        };
        let fired = sim
            .run_until_checked(clk, 10_000, 16, done)
            .expect("no hang while progress flows");
        assert!(fired);
        assert_eq!(hits.get(), 500);

        // Source goes quiet: the same sim now hangs.
        let err = sim
            .run_until_checked(clk, 10_000, 16, || false)
            .expect_err("silence must trip the watchdog");
        assert!(matches!(err, SimError::Hang { .. }));
    }

    /// A component waking from sleep counts as progress even before
    /// any channel traffic.
    #[test]
    fn wake_transition_counts_as_progress() {
        struct Sleeper {
            quiescent: Rc<Cell<bool>>,
        }
        impl Component for Sleeper {
            fn name(&self) -> &str {
                "sleeper"
            }
            fn tick(&mut self, _ctx: &mut TickCtx<'_>) {}
            fn is_quiescent(&self) -> bool {
                self.quiescent.get()
            }
        }
        let quiescent = Rc::new(Cell::new(true));
        let wake = ActivityToken::new();
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("core", Picoseconds(100)));
        let id = sim.add_component(
            clk,
            Sleeper {
                quiescent: Rc::clone(&quiescent),
            },
        );
        sim.set_wake_token(id, wake.clone());
        // Tick 0 puts it to sleep. Setting the wake token just before
        // the watchdog would fire resets the idle counter.
        let mut boundary = 0u64;
        let w2 = wake.clone();
        let res = sim.run_until_checked(clk, 40, 16, move || {
            boundary += 1;
            if boundary.is_multiple_of(10) {
                w2.set();
            }
            false
        });
        assert!(matches!(res, Ok(false)), "cycle limit, not hang: {res:?}");
        assert_eq!(sim.cycles(clk), 40);
    }

    /// Gated sequentials skip clean commits and reconcile exactly via
    /// `commit_skipped` before the next real commit and at run end.
    #[test]
    fn gated_sequential_commit_catch_up_is_exact() {
        #[derive(Default)]
        struct CycleCounter {
            commits: u64,
            cycles: u64,
        }
        impl Sequential for CycleCounter {
            fn commit(&mut self) {
                self.commits += 1;
                self.cycles += 1;
            }
            fn commit_skipped(&mut self, skipped: u64) {
                self.cycles += skipped;
            }
        }

        let seq = Rc::new(RefCell::new(CycleCounter::default()));
        let dirty = ActivityToken::new();
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("c", Picoseconds(100)));
        sim.add_sequential_gated(clk, seq.clone(), dirty.clone());

        sim.run_cycles(clk, 10);
        // Initial token is set -> first commit real, rest skipped, all
        // caught up by the run_cycles flush.
        assert_eq!(seq.borrow().commits, 1);
        assert_eq!(seq.borrow().cycles, 10);
        assert_eq!(sim.commits_skipped(), 9);

        // Mark dirty: next edge commits for real, catch-up already done.
        dirty.set();
        sim.run_cycles(clk, 3);
        assert_eq!(seq.borrow().commits, 2);
        assert_eq!(seq.borrow().cycles, 13);
    }

    /// A worker that sleeps when its work pool is empty.
    struct Worker {
        name: String,
        work: Rc<Cell<u64>>,
        ticks: Rc<Cell<u64>>,
    }
    impl Component for Worker {
        fn name(&self) -> &str {
            &self.name
        }
        fn tick(&mut self, _ctx: &mut TickCtx<'_>) {
            self.ticks.set(self.ticks.get() + 1);
            if self.work.get() > 0 {
                self.work.set(self.work.get() - 1);
            }
        }
        fn is_quiescent(&self) -> bool {
            self.work.get() == 0
        }
    }

    /// Never-sleeping driver that feeds both workers and a gated latch
    /// on fixed schedules, exercising every wake path: waking a
    /// component *behind* it in delivery order (deferred to the next
    /// instant) and *ahead* of it (same instant).
    struct Driver {
        n: u64,
        early_work: Rc<Cell<u64>>,
        early_tok: ActivityToken,
        late_work: Rc<Cell<u64>>,
        late_tok: ActivityToken,
        latch: Rc<RefCell<DirtyLatch>>,
        latch_dirty: ActivityToken,
    }
    impl Component for Driver {
        fn name(&self) -> &str {
            "driver"
        }
        fn tick(&mut self, _ctx: &mut TickCtx<'_>) {
            self.n += 1;
            if self.n.is_multiple_of(5) {
                self.early_work.set(self.early_work.get() + 2);
                self.early_tok.set();
            }
            if self.n.is_multiple_of(7) {
                self.late_work.set(self.late_work.get() + 1);
                self.late_tok.set();
            }
            if self.n.is_multiple_of(3) {
                self.latch.borrow_mut().staged = self.n;
                self.latch_dirty.set();
            }
        }
    }

    #[derive(Default)]
    struct DirtyLatch {
        staged: u64,
        value: u64,
        commits: u64,
        cycles: u64,
    }
    impl Sequential for DirtyLatch {
        fn commit(&mut self) {
            self.value = self.staged;
            self.commits += 1;
            self.cycles += 1;
        }
        fn commit_skipped(&mut self, skipped: u64) {
            self.cycles += skipped;
        }
    }

    #[derive(Default)]
    struct PlainCounter {
        commits: u64,
    }
    impl Sequential for PlainCounter {
        fn commit(&mut self) {
            self.commits += 1;
        }
    }

    struct PlanFixture {
        sim: Simulator,
        clk: ClockId,
        early_ticks: Rc<Cell<u64>>,
        late_ticks: Rc<Cell<u64>>,
        latch: Rc<RefCell<DirtyLatch>>,
        counter: Rc<RefCell<PlainCounter>>,
    }

    fn plan_fixture() -> PlanFixture {
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("c", Picoseconds(100)));
        let early_work = Rc::new(Cell::new(1u64));
        let early_ticks = Rc::new(Cell::new(0u64));
        let early_tok = ActivityToken::new();
        let late_work = Rc::new(Cell::new(0u64));
        let late_ticks = Rc::new(Cell::new(0u64));
        let late_tok = ActivityToken::new();
        let latch = Rc::new(RefCell::new(DirtyLatch::default()));
        let latch_dirty = ActivityToken::new();
        let counter = Rc::new(RefCell::new(PlainCounter::default()));

        let early = sim.add_component(
            clk,
            Worker {
                name: "early".into(),
                work: Rc::clone(&early_work),
                ticks: Rc::clone(&early_ticks),
            },
        );
        sim.set_wake_token(early, early_tok.clone());
        sim.add_component(
            clk,
            Driver {
                n: 0,
                early_work,
                early_tok,
                late_work: Rc::clone(&late_work),
                late_tok: late_tok.clone(),
                latch: Rc::clone(&latch),
                latch_dirty: latch_dirty.clone(),
            },
        );
        let late = sim.add_component(
            clk,
            Worker {
                name: "late".into(),
                work: late_work,
                ticks: Rc::clone(&late_ticks),
            },
        );
        sim.set_wake_token(late, late_tok);
        sim.add_sequential_gated(clk, latch.clone(), latch_dirty);
        sim.add_sequential(clk, counter.clone());
        PlanFixture {
            sim,
            clk,
            early_ticks,
            late_ticks,
            latch,
            counter,
        }
    }

    #[derive(Debug, PartialEq)]
    struct FixtureOutcome {
        cycles: u64,
        now: Picoseconds,
        instants: u64,
        ticks_delivered: u64,
        ticks_skipped: u64,
        commits_skipped: u64,
        early_ticks: u64,
        late_ticks: u64,
        latch_value: u64,
        latch_commits: u64,
        latch_cycles: u64,
        counter_commits: u64,
    }

    fn fixture_outcome(f: &PlanFixture) -> FixtureOutcome {
        FixtureOutcome {
            cycles: f.sim.cycles(f.clk),
            now: f.sim.now(),
            instants: f.sim.instants(),
            ticks_delivered: f.sim.ticks_delivered(),
            ticks_skipped: f.sim.ticks_skipped(),
            commits_skipped: f.sim.commits_skipped(),
            early_ticks: f.early_ticks.get(),
            late_ticks: f.late_ticks.get(),
            latch_value: f.latch.borrow().value,
            latch_commits: f.latch.borrow().commits,
            latch_cycles: f.latch.borrow().cycles,
            counter_commits: f.counter.borrow().commits,
        }
    }

    /// The compiled plan reproduces the interpreted path's observable
    /// behaviour *exactly* — cycles, tick/commit accounting, committed
    /// state — across sleep, deferred wake, same-instant wake and
    /// gated-commit paths.
    #[test]
    fn plan_matches_interpreted_exactly() {
        let mut interp = plan_fixture();
        interp.sim.run_cycles(interp.clk, 1000);
        assert_eq!(interp.sim.plan_instants(), 0);

        let mut compiled = plan_fixture();
        compiled.sim.arm_plan().expect("steady-state schedule arms");
        compiled.sim.run_cycles(compiled.clk, 1000);
        assert!(compiled.sim.plan_armed(), "no de-opt in a steady run");
        assert_eq!(compiled.sim.plan_instants(), 1000);
        assert_eq!(compiled.sim.plan_deopt_count(), 0);

        assert_eq!(fixture_outcome(&interp), fixture_outcome(&compiled));
        // Gating did real work, so the identity above is meaningful.
        assert!(interp.sim.ticks_skipped() > 0);
        assert!(interp.sim.commits_skipped() > 0);
    }

    /// A mid-run de-opt (and later re-arm) loses nothing: the hybrid
    /// run is indistinguishable from a fully interpreted one.
    #[test]
    fn plan_deopt_mid_run_preserves_state() {
        let mut interp = plan_fixture();
        interp.sim.run_cycles(interp.clk, 1000);

        let mut hybrid = plan_fixture();
        hybrid.sim.arm_plan().expect("arms");
        hybrid.sim.run_cycles(hybrid.clk, 400);
        // `set_gating` is a de-opt trigger even when the value does not
        // change — gating itself stays on, so semantics are untouched.
        hybrid.sim.set_gating(true);
        assert!(!hybrid.sim.plan_armed());
        assert_eq!(hybrid.sim.plan_deopt_count(), 1);
        hybrid.sim.run_cycles(hybrid.clk, 300);
        hybrid.sim.arm_plan().expect("re-arms mid-run");
        hybrid.sim.run_cycles(hybrid.clk, 300);
        assert!(hybrid.sim.plan_armed());

        assert_eq!(fixture_outcome(&interp), fixture_outcome(&hybrid));
        assert_eq!(hybrid.sim.plan_instants(), 700);
    }

    /// Arming is opportunistic: every irregular precondition is
    /// rejected with a reason and leaves the interpreted path active.
    #[test]
    fn arm_plan_rejects_irregular_schedules() {
        use crate::plan::PlanReject;

        let mut sim = Simulator::new();
        assert_eq!(sim.arm_plan(), Err(PlanReject::NoActiveClock));

        let clk = sim.add_clock(ClockSpec::new("c", Picoseconds(100)));
        sim.set_gating(false);
        assert_eq!(sim.arm_plan(), Err(PlanReject::GatingDisabled));
        sim.set_gating(true);

        sim.set_tick_profiling(true);
        assert_eq!(sim.arm_plan(), Err(PlanReject::TickProfiling));
        sim.set_tick_profiling(false);

        sim.pause_clock(clk);
        assert_eq!(sim.arm_plan(), Err(PlanReject::NoActiveClock));
        sim.resume_clock(clk);

        // A second clock with a different period is not steady-state.
        let mut multi = Simulator::new();
        multi.add_clock(ClockSpec::new("a", Picoseconds(100)));
        multi.add_clock(ClockSpec::new("b", Picoseconds(130)));
        assert_eq!(multi.arm_plan(), Err(PlanReject::IrregularClocks));

        // Two components sharing one wake token cannot be planned.
        let mut shared = Simulator::new();
        let sclk = shared.add_clock(ClockSpec::new("c", Picoseconds(100)));
        let tok = ActivityToken::new();
        let (p1, _, _) = probe("p1");
        let (p2, _, _) = probe("p2");
        let id1 = shared.add_component(sclk, p1);
        let id2 = shared.add_component(sclk, p2);
        shared.set_wake_token(id1, tok.clone());
        shared.set_wake_token(id2, tok.clone());
        assert_eq!(shared.arm_plan(), Err(PlanReject::SharedWakeToken));
        // The failed arm rolled its attachments back.
        assert!(!tok.notify_attached());
        shared.run_cycles(sclk, 3);
        assert_eq!(shared.cycles(sclk), 3);

        // Mid-instant arming is refused.
        let mut open = Simulator::new();
        let oclk = open.add_clock(ClockSpec::new("c", Picoseconds(100)));
        assert!(open.eval_instant());
        assert_eq!(open.arm_plan(), Err(PlanReject::MidInstant));
        open.commit_instant();
        assert_eq!(open.arm_plan(), Ok(()));
        assert_eq!(open.arm_plan(), Ok(()), "re-arming is a no-op");
        open.run_cycles(oclk, 2);
        assert_eq!(open.cycles(oclk), 3);
    }

    /// A clock stretch requested under the plan is applied faithfully
    /// and de-opts; the edge sequence matches the interpreted one.
    #[test]
    fn plan_deopts_on_clock_stretch() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("c", Picoseconds(100)));
        sim.add_component(clk, Stretcher);
        sim.arm_plan().expect("arms");
        sim.run_cycles(clk, 4);
        // Edges at 0, 100, 250 (stretched), 350 — same as interpreted.
        assert_eq!(sim.now(), Picoseconds(350));
        assert!(!sim.plan_armed(), "stretch must de-opt");
        assert_eq!(sim.plan_deopt_count(), 1);
        assert_eq!(sim.plan_instants(), 2, "compiled until the stretch");
    }

    /// Structural mutation and clock pausing de-opt; a paused schedule
    /// refuses to re-arm until resumed.
    #[test]
    fn plan_disarms_on_structural_changes() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("c", Picoseconds(100)));
        let (p, _, _) = probe("p");
        sim.add_component(clk, p);
        sim.arm_plan().expect("arms");

        let (q, qhits, _) = probe("q");
        sim.add_component(clk, q);
        assert!(!sim.plan_armed(), "add_component de-opts");

        sim.arm_plan().expect("re-arms with the new component");
        sim.run_cycles(clk, 5);
        assert_eq!(qhits.get(), 5, "late component is in the plan");

        sim.pause_clock(clk);
        assert!(!sim.plan_armed(), "pause de-opts");
        assert!(sim.arm_plan().is_err());
        sim.resume_clock(clk);
        sim.arm_plan().expect("arms again after resume");
        sim.run_cycles(clk, 5);
        assert_eq!(qhits.get(), 10);
    }

    /// The hang watchdog fires identically under the plan, de-opts,
    /// and produces the same diagnosis as the interpreted path.
    #[test]
    fn plan_hang_trip_matches_interpreted_diagnosis() {
        struct Idle;
        impl Component for Idle {
            fn name(&self) -> &str {
                "idle"
            }
            fn tick(&mut self, _ctx: &mut TickCtx<'_>) {}
            fn wait_reason(&self) -> Option<String> {
                Some("stuck forever".into())
            }
        }
        let run = |arm: bool| {
            let mut sim = Simulator::new();
            let clk = sim.add_clock(ClockSpec::new("core", Picoseconds(100)));
            sim.add_component(clk, Idle);
            sim.add_sequential(clk, Rc::new(RefCell::new(PlainCounter::default())));
            if arm {
                sim.arm_plan().expect("arms");
            }
            let err = sim
                .run_until_checked(clk, 10_000, 64, || false)
                .expect_err("must hang");
            assert!(!sim.plan_armed(), "hang trip must leave us interpreted");
            (err, sim.plan_deopt_count())
        };
        let (interp_err, d0) = run(false);
        let (compiled_err, d1) = run(true);
        assert_eq!(d0, 0);
        assert_eq!(d1, 1, "watchdog trip counts as a de-opt");
        let (
            SimError::Hang {
                clock: c0,
                cycle: y0,
                now: n0,
                report: r0,
            },
            SimError::Hang {
                clock: c1,
                cycle: y1,
                now: n1,
                report: r1,
            },
        ) = (interp_err, compiled_err)
        else {
            panic!("expected two hangs");
        };
        assert_eq!((c0, y0, n0, r0.idle_cycles), (c1, y1, n1, r1.idle_cycles));
        assert_eq!(r0.components.len(), r1.components.len());
        assert_eq!(r0.components[0].wait, r1.components[0].wait);
        assert_eq!(r0.components[0].asleep, r1.components[0].asleep);
    }

    /// `plan_desc` exposes the frozen schedule for introspection.
    #[test]
    fn plan_desc_reflects_schedule() {
        let mut f = plan_fixture();
        assert!(f.sim.plan_desc().is_none());
        f.sim.arm_plan().expect("arms");
        let desc = f.sim.plan_desc().expect("armed");
        assert_eq!(desc.clocks, vec!["c".to_string()]);
        let names: Vec<&str> = desc.nodes.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(names, vec!["early", "driver", "late"]);
        assert!(desc.nodes[0].gated && !desc.nodes[1].gated && desc.nodes[2].gated);
        assert_eq!(desc.gated_sequentials, 1);
        assert_eq!(desc.always_commit_sequentials, 1);
    }

    /// Tick profiling attributes every delivered tick and never
    /// perturbs cycles or delivery counts.
    #[test]
    fn tick_profiling_attributes_ticks() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("c", Picoseconds(100)));
        let (p, hits, _) = probe("busy");
        sim.add_component(clk, p);
        assert!(!sim.tick_profiling());
        assert!(sim.tick_profile().is_empty(), "nothing measured yet");

        sim.set_tick_profiling(true);
        // Components registered after enabling are picked up too.
        let (q, qhits, _) = probe("late");
        sim.add_component(clk, q);
        sim.run_cycles(clk, 8);
        assert_eq!(hits.get(), 8);
        assert_eq!(qhits.get(), 8);
        assert_eq!(sim.cycles(clk), 8);

        let rows = sim.tick_profile();
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.ticks, 8);
            assert_eq!(row.clock, "c");
        }
        assert!(rows.iter().any(|r| r.name == "busy"));
        assert!(rows.iter().any(|r| r.name == "late"));

        // Disabling freezes the profile.
        sim.set_tick_profiling(false);
        sim.run_cycles(clk, 4);
        assert_eq!(hits.get(), 12);
        assert!(sim.tick_profile().iter().all(|r| r.ticks == 8));
    }
}
