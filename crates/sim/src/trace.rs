//! Lightweight value-change tracing with VCD export.
//!
//! The flow in Fig. 1 of the paper produces FSDB traces for power
//! analysis; this module is the equivalent hook. Components that want
//! waveforms share a [`Trace`] via `Rc<RefCell<Trace>>` and record
//! changes; [`Trace::write_vcd`] renders a standard VCD file readable by
//! GTKWave.

use crate::time::Picoseconds;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Identifier of a declared trace signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SignalId(usize);

#[derive(Debug, Clone)]
struct SignalDecl {
    name: String,
    width: u32,
}

/// An in-memory value-change recording.
///
/// ```
/// use craft_sim::{Picoseconds, Trace};
/// let mut trace = Trace::new();
/// let sig = trace.declare("top.valid", 1);
/// trace.change(Picoseconds::new(0), sig, 0);
/// trace.change(Picoseconds::new(1000), sig, 1);
/// let vcd = trace.write_vcd();
/// assert!(vcd.contains("$var wire 1"));
/// ```
#[derive(Debug, Default)]
pub struct Trace {
    signals: Vec<SignalDecl>,
    changes: Vec<(Picoseconds, SignalId, u64)>,
    last_value: HashMap<SignalId, u64>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a signal of `width` bits (1..=64) named `name`
    /// (hierarchy separated by `.`).
    ///
    /// # Panics
    /// Panics if `width` is 0 or greater than 64.
    pub fn declare(&mut self, name: impl Into<String>, width: u32) -> SignalId {
        assert!((1..=64).contains(&width), "signal width must be 1..=64");
        let id = SignalId(self.signals.len());
        self.signals.push(SignalDecl {
            name: name.into(),
            width,
        });
        id
    }

    /// Records `value` on `signal` at time `at`. Consecutive identical
    /// values are deduplicated.
    pub fn change(&mut self, at: Picoseconds, signal: SignalId, value: u64) {
        if self.last_value.get(&signal) == Some(&value) {
            return;
        }
        self.last_value.insert(signal, value);
        self.changes.push((at, signal, value));
    }

    /// Number of recorded (deduplicated) value changes.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// True if no changes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Renders the trace as VCD text.
    pub fn write_vcd(&self) -> String {
        let mut out = String::new();
        out.push_str("$timescale 1ps $end\n");
        out.push_str("$scope module craftflow $end\n");
        for (i, s) in self.signals.iter().enumerate() {
            let code = vcd_code(i);
            let _ = writeln!(out, "$var wire {} {} {} $end", s.width, code, s.name);
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");

        let mut sorted: Vec<_> = self.changes.iter().collect();
        sorted.sort_by_key(|(t, s, _)| (*t, s.0));
        let mut last_time = None;
        for (t, sig, val) in sorted {
            if last_time != Some(*t) {
                let _ = writeln!(out, "#{}", t.as_ps());
                last_time = Some(*t);
            }
            let decl = &self.signals[sig.0];
            let code = vcd_code(sig.0);
            if decl.width == 1 {
                let _ = writeln!(out, "{}{}", val & 1, code);
            } else {
                let _ = writeln!(out, "b{:b} {}", val, code);
            }
        }
        out
    }
}

/// Maps an index to a short printable VCD identifier code.
fn vcd_code(mut i: usize) -> String {
    // VCD id chars: '!' (33) ..= '~' (126).
    let mut s = String::new();
    loop {
        s.push(char::from(33 + (i % 94) as u8));
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_identical_values() {
        let mut t = Trace::new();
        let s = t.declare("a", 1);
        t.change(Picoseconds(0), s, 1);
        t.change(Picoseconds(10), s, 1);
        t.change(Picoseconds(20), s, 0);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn vcd_contains_declarations_and_changes() {
        let mut t = Trace::new();
        let a = t.declare("top.valid", 1);
        let d = t.declare("top.data", 8);
        t.change(Picoseconds(0), a, 1);
        t.change(Picoseconds(0), d, 0xAB);
        t.change(Picoseconds(1000), a, 0);
        let vcd = t.write_vcd();
        assert!(vcd.contains("$var wire 1 ! top.valid $end"));
        assert!(vcd.contains("$var wire 8 \" top.data $end"));
        assert!(vcd.contains("#0"));
        assert!(vcd.contains("#1000"));
        assert!(vcd.contains("b10101011 \""));
    }

    #[test]
    fn vcd_codes_are_unique_for_many_signals() {
        let codes: Vec<String> = (0..500).map(vcd_code).collect();
        let mut dedup = codes.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len());
    }

    #[test]
    #[should_panic(expected = "signal width must be 1..=64")]
    fn zero_width_panics() {
        let mut t = Trace::new();
        let _ = t.declare("bad", 0);
    }
}
