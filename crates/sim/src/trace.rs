//! Lightweight value-change tracing with VCD export.
//!
//! The flow in Fig. 1 of the paper produces FSDB traces for power
//! analysis; this module is the equivalent hook. Components that want
//! waveforms share a [`Trace`] via `Rc<RefCell<Trace>>` and record
//! changes; [`Trace::write_vcd`] renders a standard VCD file readable by
//! GTKWave.

use crate::time::Picoseconds;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Identifier of a declared trace signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SignalId(usize);

#[derive(Debug, Clone)]
struct SignalDecl {
    name: String,
    width: u32,
}

/// An in-memory value-change recording.
///
/// ```
/// use craft_sim::{Picoseconds, Trace};
/// let mut trace = Trace::new();
/// let sig = trace.declare("top.valid", 1);
/// trace.change(Picoseconds::new(0), sig, 0);
/// trace.change(Picoseconds::new(1000), sig, 1);
/// let vcd = trace.write_vcd();
/// assert!(vcd.contains("$var wire 1"));
/// ```
#[derive(Debug, Default)]
pub struct Trace {
    signals: Vec<SignalDecl>,
    changes: Vec<(Picoseconds, SignalId, u64)>,
    /// `(time, value)` of the most recently *recorded* change per
    /// signal — the in-order dedup fast path. Only consulted when a new
    /// change does not precede it in time.
    last_change: HashMap<SignalId, (Picoseconds, u64)>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a signal of `width` bits (1..=64) named `name`
    /// (hierarchy separated by `.`).
    ///
    /// # Panics
    /// Panics if `width` is 0 or greater than 64.
    pub fn declare(&mut self, name: impl Into<String>, width: u32) -> SignalId {
        assert!((1..=64).contains(&width), "signal width must be 1..=64");
        let id = SignalId(self.signals.len());
        self.signals.push(SignalDecl {
            name: name.into(),
            width,
        });
        id
    }

    /// Records `value` on `signal` at time `at`. Changes may arrive
    /// out of timestamp order (different components flush at different
    /// times); rendering sorts them. Consecutive identical values are
    /// deduplicated: in-order duplicates are dropped at insertion, any
    /// duplicates only visible after sorting are dropped by
    /// [`write_vcd`](Self::write_vcd).
    pub fn change(&mut self, at: Picoseconds, signal: SignalId, value: u64) {
        match self.last_change.get(&signal) {
            // In-order duplicate of the last recorded change: drop now.
            Some(&(t, v)) if v == value && at >= t => return,
            // Out-of-order insert: keep it; render-time dedup decides.
            Some(&(t, _)) if at < t => {
                self.changes.push((at, signal, value));
                return;
            }
            _ => {}
        }
        self.last_change.insert(signal, (at, value));
        self.changes.push((at, signal, value));
    }

    /// Number of recorded value changes (in-order duplicates are
    /// already deduplicated; out-of-order redundancy is only removed
    /// when rendering).
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// True if no changes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Renders the trace as VCD text.
    ///
    /// Changes are sorted by timestamp (stably, so same-time changes
    /// keep insertion order), then per-signal consecutive duplicates —
    /// including those only adjacent after sorting out-of-order
    /// insertions — are dropped. An empty trace renders a valid header
    /// with declarations only.
    pub fn write_vcd(&self) -> String {
        let mut out = String::new();
        out.push_str("$timescale 1ps $end\n");
        out.push_str("$scope module craftflow $end\n");
        for (i, s) in self.signals.iter().enumerate() {
            let code = vcd_code(i);
            let _ = writeln!(out, "$var wire {} {} {} $end", s.width, code, s.name);
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");

        let mut sorted: Vec<_> = self.changes.iter().collect();
        sorted.sort_by_key(|(t, _, _)| *t);
        let mut rendered: HashMap<SignalId, u64> = HashMap::new();
        let mut last_time = None;
        for (t, sig, val) in sorted {
            if rendered.get(sig) == Some(val) {
                continue;
            }
            rendered.insert(*sig, *val);
            if last_time != Some(*t) {
                let _ = writeln!(out, "#{}", t.as_ps());
                last_time = Some(*t);
            }
            let decl = &self.signals[sig.0];
            let code = vcd_code(sig.0);
            if decl.width == 1 {
                let _ = writeln!(out, "{}{}", val & 1, code);
            } else {
                let _ = writeln!(out, "b{:b} {}", val, code);
            }
        }
        out
    }
}

/// Maps an index to a short printable VCD identifier code.
fn vcd_code(mut i: usize) -> String {
    // VCD id chars: '!' (33) ..= '~' (126).
    let mut s = String::new();
    loop {
        s.push(char::from(33 + (i % 94) as u8));
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_identical_values() {
        let mut t = Trace::new();
        let s = t.declare("a", 1);
        t.change(Picoseconds(0), s, 1);
        t.change(Picoseconds(10), s, 1);
        t.change(Picoseconds(20), s, 0);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn vcd_contains_declarations_and_changes() {
        let mut t = Trace::new();
        let a = t.declare("top.valid", 1);
        let d = t.declare("top.data", 8);
        t.change(Picoseconds(0), a, 1);
        t.change(Picoseconds(0), d, 0xAB);
        t.change(Picoseconds(1000), a, 0);
        let vcd = t.write_vcd();
        assert!(vcd.contains("$var wire 1 ! top.valid $end"));
        assert!(vcd.contains("$var wire 8 \" top.data $end"));
        assert!(vcd.contains("#0"));
        assert!(vcd.contains("#1000"));
        assert!(vcd.contains("b10101011 \""));
    }

    #[test]
    fn vcd_codes_are_unique_for_many_signals() {
        let codes: Vec<String> = (0..500).map(vcd_code).collect();
        let mut dedup = codes.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len());
    }

    /// An empty trace (even with declarations) renders a well-formed
    /// header and nothing else — pinned byte-for-byte.
    #[test]
    fn empty_trace_renders_valid_header() {
        let t = Trace::new();
        assert!(t.is_empty());
        assert_eq!(
            t.write_vcd(),
            "$timescale 1ps $end\n\
             $scope module craftflow $end\n\
             $upscope $end\n$enddefinitions $end\n"
        );

        let mut t = Trace::new();
        let _ = t.declare("lonely", 4);
        assert_eq!(
            t.write_vcd(),
            "$timescale 1ps $end\n\
             $scope module craftflow $end\n\
             $var wire 4 ! lonely $end\n\
             $upscope $end\n$enddefinitions $end\n"
        );
    }

    /// Beyond 94 signals the id codes go multi-character; declarations
    /// and change records must agree on the code.
    #[test]
    fn more_than_94_signals_use_multichar_codes() {
        let mut t = Trace::new();
        let sigs: Vec<SignalId> = (0..100).map(|i| t.declare(format!("s{i}"), 1)).collect();
        for (i, &s) in sigs.iter().enumerate() {
            t.change(Picoseconds(0), s, (i % 2) as u64);
        }
        let vcd = t.write_vcd();
        // Signal 94 wraps to the two-char code "!\"" ('!' then '"').
        assert_eq!(vcd_code(94), "!\"");
        assert!(vcd.contains("$var wire 1 !\" s94 $end"));
        assert!(vcd.contains("0!\"\n"), "change record uses the same code");
        // Signal 99 -> code "&\"".
        assert!(vcd.contains("$var wire 1 &\" s99 $end"));
        assert!(vcd.contains("1&\"\n"));
    }

    /// Out-of-order insertions are sorted into timestamp order, and
    /// duplicates that only become adjacent after sorting are dropped.
    #[test]
    fn out_of_order_changes_sort_and_dedup_correctly() {
        let mut t = Trace::new();
        let s = t.declare("sig", 1);
        t.change(Picoseconds(20), s, 1);
        // Earlier time, same value: must render at #10 and make the
        // #20 record redundant (the seed dropped this change instead).
        t.change(Picoseconds(10), s, 1);
        t.change(Picoseconds(30), s, 0);
        let vcd = t.write_vcd();
        assert_eq!(
            vcd.lines().skip(5).collect::<Vec<_>>(),
            vec!["#10", "1!", "#30", "0!"],
            "value rises at 10 (not 20), falls at 30"
        );

        // Distinct values out of order all render, in time order.
        let mut t = Trace::new();
        let s = t.declare("sig", 8);
        t.change(Picoseconds(300), s, 3);
        t.change(Picoseconds(100), s, 1);
        t.change(Picoseconds(200), s, 2);
        let vcd = t.write_vcd();
        assert_eq!(
            vcd.lines().skip(5).collect::<Vec<_>>(),
            vec!["#100", "b1 !", "#200", "b10 !", "#300", "b11 !"]
        );
    }

    /// Same-time changes on different signals keep insertion order.
    #[test]
    fn same_time_changes_keep_insertion_order() {
        let mut t = Trace::new();
        let a = t.declare("a", 1);
        let b = t.declare("b", 1);
        t.change(Picoseconds(0), b, 1);
        t.change(Picoseconds(0), a, 1);
        let vcd = t.write_vcd();
        let tail: Vec<_> = vcd.lines().skip(6).collect();
        assert_eq!(
            tail,
            vec!["#0", "1\"", "1!"],
            "b declared second, recorded first"
        );
    }

    #[test]
    #[should_panic(expected = "signal width must be 1..=64")]
    fn zero_width_panics() {
        let mut t = Trace::new();
        let _ = t.declare("bad", 0);
    }
}
