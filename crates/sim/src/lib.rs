//! # craft-sim — deterministic multi-clock simulation kernel
//!
//! The SystemC substitute underpinning the `craftflow` reproduction of
//! the DAC'18 modular VLSI flow. It provides:
//!
//! * [`Picoseconds`] integer time and [`ClockSpec`] clock domains,
//! * a two-phase (evaluate/commit) cycle-driven [`Simulator`] that is
//!   flip-flop accurate and fully deterministic,
//! * the [`Component`] (clocked process) and [`Sequential`]
//!   (commit-phase state) traits,
//! * pausible-clocking hooks ([`TickCtx::stretch_clock`]) used by the
//!   GALS layer,
//! * a compiled steady-state instant plan ([`Simulator::arm_plan`])
//!   that runs uniform-clock schedules dispatch-lean and transparently
//!   de-opts to the interpreted golden path on any irregular event,
//! * typed failures ([`SimError`]) with a no-progress hang watchdog
//!   ([`Simulator::run_until_checked`]) that diagnoses deadlocks via a
//!   per-component / per-channel [`HangReport`],
//! * [`Trace`] VCD-lite waveform recording and [`stats`] helpers,
//! * [`checkpoint`] plumbing — a typed [`CheckpointError`], the
//!   [`Checkpointable`] codec trait, and a length+checksum-framed
//!   snapshot container used by the SoC layer's replay-based
//!   checkpoint/restore.
//!
//! ## Example
//!
//! ```
//! use craft_sim::{ClockSpec, Component, Picoseconds, Simulator, TickCtx};
//!
//! struct Blinker { on: bool }
//! impl Component for Blinker {
//!     fn name(&self) -> &str { "blinker" }
//!     fn tick(&mut self, _ctx: &mut TickCtx<'_>) { self.on = !self.on; }
//! }
//!
//! let mut sim = Simulator::new();
//! let clk = sim.add_clock(ClockSpec::new("core", Picoseconds::from_ghz(1.1)));
//! sim.add_component(clk, Blinker { on: false });
//! sim.run_cycles(clk, 100);
//! assert_eq!(sim.cycles(clk), 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activity;
pub mod checkpoint;
mod clock;
mod component;
pub mod cover;
mod error;
mod kernel;
pub mod parallel;
mod plan;
pub mod stats;
pub mod telemetry;
mod time;
mod trace;

pub use activity::{ActivityToken, NotifySink};
pub use checkpoint::{
    CheckpointError, Checkpointable, KernelDigest, StateReader, StateWriter, WatchdogState,
};
pub use clock::{ClockId, ClockSpec};
pub use component::{Component, Sequential, TickCtx};
pub use error::{CompDiag, HangReport, SeqDiag, SimError};
pub use kernel::{ComponentId, Simulator};
pub use parallel::{
    publish_hang_idle, run_parallel, EpochOutcome, EpochSync, EpochVerdict, EpochWorker,
    SpinBarrier, WaitHist, WAIT_HIST_BUCKETS,
};
pub use plan::{PlanDesc, PlanNode, PlanReject};
pub use telemetry::{TelLaneCounters, Telemetry, TelemetrySnapshot, TickProfile};
pub use time::Picoseconds;
pub use trace::{SignalId, Trace};
