//! The component and sequential-state abstractions.
//!
//! A [`Component`] is the analogue of a SystemC clocked process: the
//! kernel calls [`Component::tick`] once per rising edge of the clock
//! domain the component was registered on. All state written during a
//! tick becomes visible to other components only after the commit phase
//! of the same edge (two-phase, flip-flop-accurate semantics).

use crate::clock::ClockId;
use crate::error::SeqDiag;
use crate::time::Picoseconds;

/// A clocked hardware process.
pub trait Component {
    /// Name used in traces and diagnostics. Must be non-empty.
    fn name(&self) -> &str;

    /// Called once per rising edge of the component's clock domain.
    ///
    /// During a tick the component must only *read* the committed state
    /// of shared channels/signals and *stage* writes; the kernel commits
    /// all staged writes after every component on this edge has ticked.
    fn tick(&mut self, ctx: &mut TickCtx<'_>);

    /// Opt-in quiescence hint: return `true` when a tick with the
    /// component's current inputs would be a no-op, so the kernel may
    /// skip this component until one of its activity sources fires
    /// (see [`crate::ActivityToken`]).
    ///
    /// The contract is strict: while quiescent and unsignalled, the
    /// component's externally visible behaviour (results, statistics
    /// that survive a run, stop/clock requests) must be identical
    /// whether or not its ticks are delivered. The check runs *after*
    /// the evaluate phase of the same edge, so it must account for
    /// state the component just staged — in particular, data pending
    /// in input channels but not yet committed counts as activity.
    ///
    /// Components that never sleep keep the default `false`; the
    /// kernel additionally only gates components that registered a
    /// wake token via [`crate::Simulator::set_wake_token`], so a
    /// `true` here without a token is ignored.
    fn is_quiescent(&self) -> bool {
        false
    }

    /// Diagnosis hook for the hang watchdog: a one-line explanation of
    /// what the component is currently waiting for (e.g. `"fetch: got
    /// 3/16 words"`), or `None` when it has nothing useful to say.
    ///
    /// Collected into [`crate::HangReport`] when a `*_checked` run
    /// detects no progress; purely informational, never affects
    /// simulation behaviour.
    fn wait_reason(&self) -> Option<String> {
        None
    }
}

/// Shared state (typically a channel) that participates in the commit
/// phase of its clock domain.
pub trait Sequential {
    /// Promotes writes staged during the evaluate phase to the visible
    /// state. Called exactly once per rising edge, after all components
    /// on that edge have ticked. Must not fail ([C-DTOR-FAIL] spirit).
    fn commit(&mut self);

    /// Catch-up hook for quiescence gating: the kernel elided `skipped`
    /// consecutive [`commit`](Self::commit) calls during which no write
    /// was staged (the sequential's dirty token stayed clear), and is
    /// about to either deliver a real commit or end the run.
    ///
    /// Implementations that keep per-cycle statistics (cycle counters,
    /// occupancy integrals) apply the arithmetic for `skipped` no-op
    /// cycles here; state-free sequentials keep the default no-op.
    /// Sequentials registered without a dirty token (plain
    /// [`crate::Simulator::add_sequential`]) never see this call.
    fn commit_skipped(&mut self, skipped: u64) {
        let _ = skipped;
    }

    /// Diagnosis hook for the hang watchdog: a snapshot of this
    /// sequential's observable state (channels report name, occupancy
    /// and injector status). `None` — the default — omits the
    /// sequential from [`crate::HangReport`] entirely.
    fn diagnose(&self) -> Option<SeqDiag> {
        None
    }
}

/// Per-edge context handed to [`Component::tick`].
#[derive(Debug)]
pub struct TickCtx<'a> {
    pub(crate) now: Picoseconds,
    pub(crate) cycle: u64,
    pub(crate) clock: ClockId,
    pub(crate) clock_requests: &'a mut Vec<ClockRequest>,
    pub(crate) stop: &'a mut bool,
}

/// A deferred request to alter a clock domain, applied after the edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ClockRequest {
    /// Lengthen the next period of `clock` by `extra` (pausible clocking).
    Stretch { clock: ClockId, extra: Picoseconds },
    /// Use `period` for the next period only (jitter/adaptive models).
    OverridePeriod { clock: ClockId, period: Picoseconds },
    /// Retarget the nominal period of `clock` (DVFS-style change).
    SetNominalPeriod { clock: ClockId, period: Picoseconds },
}

impl TickCtx<'_> {
    /// Current simulation time.
    pub fn now(&self) -> Picoseconds {
        self.now
    }

    /// Rising-edge count of this component's clock domain (0 on the
    /// first edge).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The clock domain this tick belongs to.
    pub fn clock(&self) -> ClockId {
        self.clock
    }

    /// Stretches the *next* period of `clock` by `extra` picoseconds.
    ///
    /// This is the primitive behind pausible clocking: a synchronizer
    /// that detects a potential metastability window requests that the
    /// receiving clock's next edge be delayed.
    pub fn stretch_clock(&mut self, clock: ClockId, extra: Picoseconds) {
        self.clock_requests
            .push(ClockRequest::Stretch { clock, extra });
    }

    /// Overrides the next period of `clock` (one edge only). Used by
    /// clock-generator models that add per-cycle jitter or adapt to
    /// supply noise.
    pub fn override_next_period(&mut self, clock: ClockId, period: Picoseconds) {
        self.clock_requests
            .push(ClockRequest::OverridePeriod { clock, period });
    }

    /// Permanently changes the nominal period of `clock`.
    pub fn set_nominal_period(&mut self, clock: ClockId, period: Picoseconds) {
        self.clock_requests
            .push(ClockRequest::SetNominalPeriod { clock, period });
    }

    /// Asks the kernel to stop after the current edge completes. Any
    /// in-flight `run_*` call returns once commits for this instant are
    /// done.
    pub fn request_stop(&mut self) {
        *self.stop = true;
    }
}
