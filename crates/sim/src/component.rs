//! The component and sequential-state abstractions.
//!
//! A [`Component`] is the analogue of a SystemC clocked process: the
//! kernel calls [`Component::tick`] once per rising edge of the clock
//! domain the component was registered on. All state written during a
//! tick becomes visible to other components only after the commit phase
//! of the same edge (two-phase, flip-flop-accurate semantics).

use crate::clock::ClockId;
use crate::time::Picoseconds;

/// A clocked hardware process.
pub trait Component {
    /// Name used in traces and diagnostics. Must be non-empty.
    fn name(&self) -> &str;

    /// Called once per rising edge of the component's clock domain.
    ///
    /// During a tick the component must only *read* the committed state
    /// of shared channels/signals and *stage* writes; the kernel commits
    /// all staged writes after every component on this edge has ticked.
    fn tick(&mut self, ctx: &mut TickCtx<'_>);
}

/// Shared state (typically a channel) that participates in the commit
/// phase of its clock domain.
pub trait Sequential {
    /// Promotes writes staged during the evaluate phase to the visible
    /// state. Called exactly once per rising edge, after all components
    /// on that edge have ticked. Must not fail ([C-DTOR-FAIL] spirit).
    fn commit(&mut self);
}

/// Per-edge context handed to [`Component::tick`].
#[derive(Debug)]
pub struct TickCtx<'a> {
    pub(crate) now: Picoseconds,
    pub(crate) cycle: u64,
    pub(crate) clock: ClockId,
    pub(crate) clock_requests: &'a mut Vec<ClockRequest>,
    pub(crate) stop: &'a mut bool,
}

/// A deferred request to alter a clock domain, applied after the edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ClockRequest {
    /// Lengthen the next period of `clock` by `extra` (pausible clocking).
    Stretch { clock: ClockId, extra: Picoseconds },
    /// Use `period` for the next period only (jitter/adaptive models).
    OverridePeriod { clock: ClockId, period: Picoseconds },
    /// Retarget the nominal period of `clock` (DVFS-style change).
    SetNominalPeriod { clock: ClockId, period: Picoseconds },
}

impl TickCtx<'_> {
    /// Current simulation time.
    pub fn now(&self) -> Picoseconds {
        self.now
    }

    /// Rising-edge count of this component's clock domain (0 on the
    /// first edge).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The clock domain this tick belongs to.
    pub fn clock(&self) -> ClockId {
        self.clock
    }

    /// Stretches the *next* period of `clock` by `extra` picoseconds.
    ///
    /// This is the primitive behind pausible clocking: a synchronizer
    /// that detects a potential metastability window requests that the
    /// receiving clock's next edge be delayed.
    pub fn stretch_clock(&mut self, clock: ClockId, extra: Picoseconds) {
        self.clock_requests
            .push(ClockRequest::Stretch { clock, extra });
    }

    /// Overrides the next period of `clock` (one edge only). Used by
    /// clock-generator models that add per-cycle jitter or adapt to
    /// supply noise.
    pub fn override_next_period(&mut self, clock: ClockId, period: Picoseconds) {
        self.clock_requests
            .push(ClockRequest::OverridePeriod { clock, period });
    }

    /// Permanently changes the nominal period of `clock`.
    pub fn set_nominal_period(&mut self, clock: ClockId, period: Picoseconds) {
        self.clock_requests
            .push(ClockRequest::SetNominalPeriod { clock, period });
    }

    /// Asks the kernel to stop after the current edge completes. Any
    /// in-flight `run_*` call returns once commits for this instant are
    /// done.
    pub fn request_stop(&mut self) {
        *self.stop = true;
    }
}
