//! Typed simulation errors and the hang-diagnosis report.
//!
//! The kernel historically `expect()`-panicked on internal arithmetic
//! faults (simulation-time overflow, runaway clock stretch) and could
//! only express "the run did not finish" as a bare `false` from
//! [`crate::Simulator::run_until`]. [`SimError`] turns both into typed,
//! inspectable values: arithmetic faults become
//! [`SimError::TimeOverflow`]/[`SimError::ClockStretchOverflow`], and a
//! deadlocked design — no token movement for N cycles while the run
//! predicate stays false — becomes [`SimError::Hang`] carrying a
//! [`HangReport`] with per-component quiescence/wait state and
//! per-channel occupancies, collected from the kernel's existing
//! registrations via [`crate::Component::wait_reason`] and
//! [`crate::Sequential::diagnose`].

use crate::time::Picoseconds;
use std::fmt;

/// Diagnosis snapshot of one registered [`crate::Component`].
#[derive(Debug, Clone)]
pub struct CompDiag {
    /// Component name.
    pub name: String,
    /// Name of the clock domain the component is registered on.
    pub clock: String,
    /// Whether quiescence gating had put the component to sleep.
    pub asleep: bool,
    /// The component's own [`crate::Component::is_quiescent`] answer.
    pub quiescent: bool,
    /// The component's explanation of what it is waiting for, if any
    /// (see [`crate::Component::wait_reason`]).
    pub wait: Option<String>,
}

/// Diagnosis snapshot of one registered [`crate::Sequential`] —
/// typically an LI channel (see [`crate::Sequential::diagnose`]).
#[derive(Debug, Clone)]
pub struct SeqDiag {
    /// Channel (or other sequential) name.
    pub name: String,
    /// Committed occupancy: tokens visible to the consumer.
    pub occupancy: usize,
    /// Whether any token is pending anywhere in the channel (committed
    /// or staged) — a `true` here on a hang usually marks the blockage.
    pub pending: bool,
    /// Human-readable status: stall/fault injector state, capacity.
    pub note: String,
}

/// Everything the kernel could observe about a hung simulation.
#[derive(Debug, Clone)]
pub struct HangReport {
    /// Consecutive reference-clock cycles without any progress signal.
    pub idle_cycles: u64,
    /// Per-component quiescence and wait state, in registration order.
    pub components: Vec<CompDiag>,
    /// Per-channel occupancy snapshots, in registration order.
    pub channels: Vec<SeqDiag>,
}

impl HangReport {
    /// Components that still claim to have work (not quiescent): the
    /// usual suspects for a deadlock cycle.
    pub fn busy_components(&self) -> impl Iterator<Item = &CompDiag> {
        self.components.iter().filter(|c| !c.quiescent)
    }

    /// Channels holding undelivered tokens.
    pub fn occupied_channels(&self) -> impl Iterator<Item = &SeqDiag> {
        self.channels.iter().filter(|c| c.pending)
    }
}

impl fmt::Display for HangReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "no progress for {} cycles; {} components ({} busy), {} channels ({} occupied)",
            self.idle_cycles,
            self.components.len(),
            self.busy_components().count(),
            self.channels.len(),
            self.occupied_channels().count()
        )?;
        for c in self.busy_components() {
            write!(f, "  component {} [{}]", c.name, c.clock)?;
            if c.asleep {
                write!(f, " asleep")?;
            }
            match &c.wait {
                Some(w) => writeln!(f, ": {w}")?,
                None => writeln!(f, ": busy (no wait reason reported)")?,
            }
        }
        for ch in self.occupied_channels() {
            writeln!(
                f,
                "  channel {}: occupancy {} ({})",
                ch.name, ch.occupancy, ch.note
            )?;
        }
        Ok(())
    }
}

/// A typed simulation failure, returned by the `*_checked` run methods
/// instead of panicking or looping forever.
#[derive(Debug, Clone)]
pub enum SimError {
    /// The design made no progress (no channel push/pop, no component
    /// wake) for the configured number of reference-clock cycles while
    /// the run predicate stayed false.
    Hang {
        /// Name of the reference clock the watchdog counted on.
        clock: String,
        /// Reference-clock cycle count when the watchdog fired.
        cycle: u64,
        /// Simulation time when the watchdog fired.
        now: Picoseconds,
        /// Per-component / per-channel diagnosis collected at firing.
        report: HangReport,
    },
    /// Advancing a clock's next edge overflowed the picosecond counter.
    TimeOverflow {
        /// Name of the clock whose schedule overflowed.
        clock: String,
        /// Simulation time when the overflow was detected.
        now: Picoseconds,
    },
    /// Accumulated [`crate::TickCtx::stretch_clock`] requests overflowed
    /// the next-period computation.
    ClockStretchOverflow {
        /// Name of the clock whose stretched period overflowed.
        clock: String,
        /// Simulation time when the overflow was detected.
        now: Picoseconds,
    },
}

impl SimError {
    /// The hang diagnosis, when this error is a hang.
    pub fn hang_report(&self) -> Option<&HangReport> {
        match self {
            SimError::Hang { report, .. } => Some(report),
            _ => None,
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Hang {
                clock,
                cycle,
                now,
                report,
            } => {
                write!(
                    f,
                    "simulation hang on clock {clock} at cycle {cycle} (t={now}): {report}"
                )
            }
            SimError::TimeOverflow { clock, now } => {
                write!(f, "simulation time overflow on clock {clock} at t={now}")
            }
            SimError::ClockStretchOverflow { clock, now } => {
                write!(f, "clock stretch overflow on clock {clock} at t={now}")
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let report = HangReport {
            idle_cycles: 64,
            components: vec![
                CompDiag {
                    name: "pe0".into(),
                    clock: "core".into(),
                    asleep: false,
                    quiescent: false,
                    wait: Some("fetch: got 3/16 words".into()),
                },
                CompDiag {
                    name: "pe1".into(),
                    clock: "core".into(),
                    asleep: true,
                    quiescent: true,
                    wait: None,
                },
            ],
            channels: vec![SeqDiag {
                name: "l0p1->1".into(),
                occupancy: 2,
                pending: true,
                note: "buffer(2), stuck-valid".into(),
            }],
        };
        assert_eq!(report.busy_components().count(), 1);
        assert_eq!(report.occupied_channels().count(), 1);
        let err = SimError::Hang {
            clock: "core".into(),
            cycle: 1000,
            now: Picoseconds(100_000),
            report,
        };
        let s = err.to_string();
        assert!(s.contains("hang"), "{s}");
        assert!(s.contains("pe0"), "{s}");
        assert!(s.contains("fetch: got 3/16 words"), "{s}");
        assert!(s.contains("l0p1->1"), "{s}");
        assert!(err.hang_report().is_some());

        let t = SimError::TimeOverflow {
            clock: "c".into(),
            now: Picoseconds::MAX,
        };
        assert!(t.to_string().contains("overflow"));
        assert!(t.hang_report().is_none());
    }
}
