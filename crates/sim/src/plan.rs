//! Compiled instant-plan state: the data behind the kernel's
//! dispatch-free steady-state fast path.
//!
//! When every unpaused clock shares one period and phase (the default
//! `Synchronous` SoC clocking), the per-instant schedule is static: the
//! same components are eligible at every edge, in the same delivery
//! order, and the same sequentials commit afterwards. [`PlanState`]
//! freezes that schedule at arm time — dense ranks instead of the
//! per-clock scan, an `active` worklist instead of per-component
//! asleep checks, and notify sinks (see `activity`) instead of the
//! commit-phase dirty-token sweep.
//!
//! The plan is an *accelerator*, never an authority: every activity
//! token keeps its flag as the source of truth, so the kernel can
//! disarm the plan between (or even inside) instants and the
//! interpreted loop resumes bit-identically. Irregular events —
//! clock pause/resume or stretch/override requests, structural
//! mutation, gating or profiling toggles, watchdog trips, externally
//! moved clock edges — all route through the kernel's plan guard and
//! de-opt (`Simulator::disarm_plan`), incrementing the
//! `sim.plan.deopt_count` telemetry counter.
//!
//! Invariants the kernel maintains while a plan is armed:
//!
//! * `active` holds exactly the ranks of awake scheduled components,
//!   ascending (= interpreted delivery order).
//! * For every **asleep** scheduled component whose wake flag is set,
//!   a wake candidate exists in `deferred` or in `wake_sink` — seeded
//!   at arm time, by the sink on each false→true flag transition, or
//!   by the sleep-time flag check. Candidates are hints: the flag is
//!   re-checked on drain, so stale entries are harmless.
//! * `epoch - seq_seen[rank]` is the number of commits a gated
//!   sequential has skipped since its last real commit; settling this
//!   (via `commit_skipped`) is all a disarm owes the sequentials.

use crate::activity::NotifySink;

/// Frozen steady-state schedule plus the mutable worklists the fast
/// path runs on. Boxed inside the kernel so arming and the per-phase
/// take/put-back are pointer moves.
pub(crate) struct PlanState {
    /// Unpaused clock ids, ascending; all share period and next edge.
    pub(crate) clocks: Vec<usize>,
    /// Component indices in interpreted delivery order (clock id
    /// order, registration order within a clock). A component's
    /// position here is its *rank*; sink slots and worklists speak
    /// ranks.
    pub(crate) order: Vec<u32>,
    /// Ranks of awake components, ascending.
    pub(crate) active: Vec<u32>,
    /// Receives ranks of components whose wake flag transitioned
    /// false→true.
    pub(crate) wake_sink: NotifySink,
    /// Drain buffer for `wake_sink`.
    pub(crate) wake_scratch: Vec<u32>,
    /// Wake candidates whose edge for this instant already passed (or
    /// that went to sleep with their flag still set): merged into the
    /// next instant's `pending` walk.
    pub(crate) deferred: Vec<u32>,
    /// This instant's sorted wake-candidate worklist. Candidates are
    /// checked (and their flag consumed) only when the merge walk
    /// reaches their rank — the exact point the interpreted scan would
    /// perform its asleep/take check — never earlier. Taking the flag
    /// at notify time or at instant start would let a later same-instant
    /// set re-raise the flag and schedule a spurious wake.
    pub(crate) pending: Vec<u32>,
    /// Sequential indices in interpreted commit order; position = rank.
    pub(crate) seq_order: Vec<u32>,
    /// Ranks of ungated sequentials (commit unconditionally), ascending.
    pub(crate) always: Vec<u32>,
    /// Receives ranks of gated sequentials whose dirty flag
    /// transitioned false→true.
    pub(crate) dirty_sink: NotifySink,
    /// Drain buffer for `dirty_sink`.
    pub(crate) dirty_scratch: Vec<u32>,
    /// Instants committed under this plan.
    pub(crate) epoch: u64,
    /// Per sequential rank: the epoch after its last real commit;
    /// `epoch - seq_seen[rank]` commits are owed as `commit_skipped`.
    pub(crate) seq_seen: Vec<u64>,
}

/// Why [`Simulator::arm_plan`](crate::Simulator::arm_plan) declined to
/// compile a plan. Arming is strictly opportunistic — every rejection
/// leaves the interpreted path (the golden reference) in charge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanReject {
    /// An instant is open (`eval_instant` without its commit).
    MidInstant,
    /// Quiescence gating is off; the plan's worklists are built on it.
    GatingDisabled,
    /// Tick profiling attributes per-component wall clock; the fast
    /// path deliberately has no timing hooks.
    TickProfiling,
    /// A fatal arithmetic fault is pending.
    FatalPending,
    /// No unpaused clock: nothing to schedule.
    NoActiveClock,
    /// Unpaused clocks disagree on period or phase, or a period
    /// override is pending — the instant schedule is not steady-state.
    IrregularClocks,
    /// Two scheduled components share one wake token; a single notify
    /// slot cannot serve both owners.
    SharedWakeToken,
    /// Two gated sequentials share one dirty token.
    SharedDirtyToken,
}

impl std::fmt::Display for PlanReject {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PlanReject::MidInstant => "an instant is open (eval without commit)",
            PlanReject::GatingDisabled => "quiescence gating is disabled",
            PlanReject::TickProfiling => "tick profiling is enabled",
            PlanReject::FatalPending => "a fatal fault is pending",
            PlanReject::NoActiveClock => "no unpaused clock",
            PlanReject::IrregularClocks => "unpaused clocks are not uniform",
            PlanReject::SharedWakeToken => "a wake token is shared between components",
            PlanReject::SharedDirtyToken => "a dirty token is shared between sequentials",
        };
        f.write_str(s)
    }
}

/// One scheduled node op in an armed plan, for introspection
/// (`craft-soc`'s `schedplan` renders these as the plan IR).
#[derive(Debug, Clone)]
pub struct PlanNode {
    /// Component name as registered.
    pub name: String,
    /// Clock domain name.
    pub clock: String,
    /// Whether the node participates in quiescence gating (has a wake
    /// token) — gated nodes are skipped while asleep, ungated nodes
    /// tick every instant.
    pub gated: bool,
}

/// Snapshot of an armed plan's frozen schedule.
#[derive(Debug, Clone)]
pub struct PlanDesc {
    /// Names of the clocks the plan drives (uniform period/phase).
    pub clocks: Vec<String>,
    /// Node ops in execution (rank) order.
    pub nodes: Vec<PlanNode>,
    /// Sequentials committed only when dirty.
    pub gated_sequentials: usize,
    /// Sequentials committed unconditionally every instant.
    pub always_commit_sequentials: usize,
}
