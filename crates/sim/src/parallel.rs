//! Conservative epoch synchronization for multi-worker simulation.
//!
//! The sequential kernel already splits every instant into an evaluate
//! phase (reads observe only state committed at earlier instants) and a
//! commit phase. That discipline is exactly what makes *parallel*
//! execution conservative-safe: if every worker evaluates the same
//! instant concurrently, synchronizes, then commits, no worker can ever
//! observe a neighbour's same-instant writes — which is precisely the
//! sequential semantics. Latency-insensitive channel buffering supplies
//! the lookahead: a cross-worker channel with capacity ≥ 1 registers
//! tokens for a full cycle, so the value a consumer pops at instant
//! `t` was committed at `t-1` or earlier and can travel through a
//! mailbox during the barrier window without changing any observable
//! outcome.
//!
//! The pieces here are kernel-level and graph-agnostic:
//!
//! * [`SpinBarrier`] — a sense-reversing barrier that spins briefly and
//!   then yields (the common case on CI boxes is more workers than
//!   cores, where pure spinning would be pathological);
//! * [`EpochSync`] — the shared per-run state: two barriers, the
//!   published next-edge table for every clock, parity-banked progress
//!   bits for the hang watchdog, and the stop/fatal/verdict flags;
//! * [`run_parallel`] — the per-worker epoch loop driving one
//!   [`Simulator`] through the globally merged instant sequence.
//!
//! Each worker owns a disjoint subset of the clocks. Owners apply
//! stretches/overrides and publish the resulting next edge after every
//! commit; every other worker *follows* that clock, adopting the
//! published schedule before each instant. The globally next instant is
//! the minimum over the published table, so all workers step through
//! the **identical** instant sequence the sequential kernel would
//! produce — cycle counts and committed state are bit-identical by
//! construction, with wall-clock the only degree of freedom.

use crate::clock::ClockId;
use crate::error::{HangReport, SimError};
use crate::kernel::Simulator;
use crate::time::Picoseconds;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// How many busy-wait iterations a barrier performs before it starts
/// yielding the thread. Kept small: with more workers than cores
/// (the degenerate but supported configuration) long spins would burn
/// the very wall clock the parallel mode is trying to save.
const SPIN_ITERS: u32 = 256;

/// A sense-reversing spin barrier for a fixed set of workers.
///
/// `wait` returns once all `n` workers have arrived. The last arrival
/// flips the generation; earlier arrivals spin on it briefly and then
/// `yield_now` so oversubscribed hosts stay live. A very generous
/// timeout (60 s without the generation flipping) panics instead of
/// deadlocking forever — the only way to reach it is a worker dying
/// mid-epoch, and a loud panic beats a silent CI hang.
pub struct SpinBarrier {
    count: u64,
    arrived: AtomicU64,
    generation: AtomicU64,
}

impl SpinBarrier {
    /// Barrier for `n` workers.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a barrier needs at least one worker");
        SpinBarrier {
            count: n as u64,
            arrived: AtomicU64::new(0),
            generation: AtomicU64::new(0),
        }
    }

    /// Blocks until all workers have arrived.
    pub fn wait(&self) {
        let generation = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.count {
            self.arrived.store(0, Ordering::Release);
            self.generation.fetch_add(1, Ordering::Release);
            return;
        }
        let mut spins = 0u32;
        let mut slow: Option<std::time::Instant> = None;
        while self.generation.load(Ordering::Acquire) == generation {
            if spins < SPIN_ITERS {
                spins += 1;
                std::hint::spin_loop();
            } else {
                let started = *slow.get_or_insert_with(std::time::Instant::now);
                if started.elapsed().as_secs() >= 60 {
                    panic!("epoch barrier timed out: a worker died mid-epoch");
                }
                std::thread::yield_now();
            }
        }
    }
}

/// Sentinel published for a clock with no schedulable edge (paused or
/// overflowed): sorts after every real time.
const NO_EDGE: u64 = u64::MAX;

/// Log2 bucket count of a [`WaitHist`]: bucket `i` covers waits in
/// `[2^i, 2^(i+1))` nanoseconds (bucket 0 also takes zero), so the top
/// bucket starts at ~4.3 s — far beyond any epoch barrier wait.
pub const WAIT_HIST_BUCKETS: usize = 32;

/// A fixed-size log2-bucketed histogram of per-epoch barrier waits.
///
/// One sample is recorded per traversed instant: the summed wall time
/// this worker spent at that instant's two barriers. Log2 buckets keep
/// the struct `Copy` (no allocation) while preserving the shape of the
/// distribution — enough to expose p50/p95/max imbalance per phase
/// where the old accumulated sum could only show the aggregate.
/// Quantiles are upper bounds: the reported value is the smallest
/// bucket boundary at or above the requested rank (exact for `max`).
#[derive(Debug, Clone, Copy)]
pub struct WaitHist {
    buckets: [u64; WAIT_HIST_BUCKETS],
    count: u64,
    max_ns: u64,
}

impl Default for WaitHist {
    fn default() -> Self {
        WaitHist {
            buckets: [0; WAIT_HIST_BUCKETS],
            count: 0,
            max_ns: 0,
        }
    }
}

impl PartialEq for WaitHist {
    fn eq(&self, other: &Self) -> bool {
        self.buckets == other.buckets && self.count == other.count && self.max_ns == other.max_ns
    }
}

impl Eq for WaitHist {}

impl WaitHist {
    /// Index of the bucket holding `ns`.
    fn bucket(ns: u64) -> usize {
        (63 - u64::leading_zeros(ns.max(1)) as usize).min(WAIT_HIST_BUCKETS - 1)
    }

    /// Records one per-instant wait sample.
    pub fn record(&mut self, ns: u64) {
        self.buckets[Self::bucket(ns)] += 1;
        self.count += 1;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Folds `other`'s samples into this histogram.
    pub fn merge(&mut self, other: &WaitHist) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The largest wait observed, exact.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Upper bound of the quantile `q` in `[0, 1]`: the upper boundary
    /// of the bucket containing the ranked sample, clamped to the
    /// observed maximum. Zero when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                let upper = if i + 1 >= 64 {
                    u64::MAX
                } else {
                    1u64 << (i + 1)
                };
                return upper.min(self.max_ns);
            }
        }
        self.max_ns
    }
}

/// How a parallel run ended. Mirrors the sequential `run_until_checked`
/// outcomes one-for-one so facades can reproduce its exact result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochVerdict {
    /// The run predicate fired (sequential `Ok(true)`).
    Predicate,
    /// A component requested stop (sequential `Ok(false)`).
    Stopped,
    /// The cycle budget on the reference clock ran out (`Ok(false)`).
    MaxCycles,
    /// No clock has a pending edge anywhere (`Ok(false)`).
    NoEvents,
    /// The hang watchdog fired (`Err(SimError::Hang)`).
    Hang,
    /// An internal arithmetic fault was recorded (`Err(overflow)`).
    Fatal,
}

/// Shared state for one parallel run: barriers, the published clock
/// schedule, watchdog progress bits, and the termination flags.
///
/// One `EpochSync` is created per worker set and [`reset`](Self::reset)
/// between runs (while no worker is inside the loop).
pub struct EpochSync {
    /// Barrier between the evaluate and commit phases of an instant.
    eval_done: SpinBarrier,
    /// Barrier after commit + publication; also the startup barrier.
    commit_done: SpinBarrier,
    /// Published next edge per clock (indexed by `ClockId::index`),
    /// written by the owning worker after each commit. `NO_EDGE` when
    /// the clock can produce no further edges.
    clock_edges: Vec<AtomicU64>,
    /// Per-worker progress bits, parity-banked by instant index: bank
    /// `i % 2` holds the bit for instant `i`. The decider aggregates
    /// the *previous* instant's bank, whose writes all barriers-before
    /// its read — the one-instant lag is the price of lock-freedom and
    /// is bounded and documented (hang detection fires at most one
    /// instant later than sequentially).
    progress: Vec<[AtomicBool; 2]>,
    /// Any worker observed `stop_requested` on its kernel.
    stop: AtomicBool,
    /// Any worker recorded an arithmetic fault.
    fatal: AtomicBool,
    /// Decider's termination verdict (0 = none, else `EpochVerdict`
    /// discriminant + 1). Written only by the decider.
    verdict: AtomicU64,
    /// Idle-cycle count backing a `Hang` verdict.
    hang_idle: AtomicU64,
}

impl EpochSync {
    /// Shared state for `workers` workers over `clocks` clock domains.
    pub fn new(workers: usize, clocks: usize) -> Self {
        EpochSync {
            eval_done: SpinBarrier::new(workers),
            commit_done: SpinBarrier::new(workers),
            clock_edges: (0..clocks).map(|_| AtomicU64::new(NO_EDGE)).collect(),
            progress: (0..workers)
                .map(|_| [AtomicBool::new(false), AtomicBool::new(false)])
                .collect(),
            stop: AtomicBool::new(false),
            fatal: AtomicBool::new(false),
            verdict: AtomicU64::new(0),
            hang_idle: AtomicU64::new(0),
        }
    }

    /// Clears the termination flags and progress banks for a new run.
    /// Must only be called while no worker is inside [`run_parallel`].
    pub fn reset(&self) {
        self.stop.store(false, Ordering::Release);
        self.fatal.store(false, Ordering::Release);
        self.verdict.store(0, Ordering::Release);
        self.hang_idle.store(0, Ordering::Release);
        for banks in &self.progress {
            banks[0].store(false, Ordering::Release);
            banks[1].store(false, Ordering::Release);
        }
    }

    fn publish_verdict(&self, v: EpochVerdict) {
        self.verdict.store(v as u64 + 1, Ordering::Release);
    }

    fn read_verdict(&self) -> Option<EpochVerdict> {
        match self.verdict.load(Ordering::Acquire) {
            0 => None,
            1 => Some(EpochVerdict::Predicate),
            2 => Some(EpochVerdict::Stopped),
            3 => Some(EpochVerdict::MaxCycles),
            4 => Some(EpochVerdict::NoEvents),
            5 => Some(EpochVerdict::Hang),
            _ => Some(EpochVerdict::Fatal),
        }
    }

    /// The aggregated progress bit of instant `instants` (1-based, as
    /// counted by [`EpochOutcome::instants`]): the OR over every
    /// worker's bank for that instant's parity. Valid once all workers
    /// have left [`run_parallel`] — the final instant's bit is never
    /// consumed *inside* a run (the decider always lags one instant),
    /// so a facade that chains runs reads it here and feeds it back as
    /// the carried bit of the next run's first boundary.
    pub fn aggregate_progress(&self, instants: u64) -> bool {
        let bank = (instants % 2) as usize;
        self.progress
            .iter()
            .any(|banks| banks[bank].load(Ordering::Acquire))
    }

    /// The globally next instant: minimum over the published table.
    fn global_next(&self) -> u64 {
        self.clock_edges
            .iter()
            .map(|e| e.load(Ordering::Acquire))
            .min()
            .unwrap_or(NO_EDGE)
    }
}

/// One worker's identity within an [`EpochSync`] worker set.
pub struct EpochWorker<'a> {
    /// The shared synchronization state.
    pub sync: &'a EpochSync,
    /// This worker's index (progress-bank slot).
    pub index: usize,
    /// The clocks this worker owns (publishes). Every clock must be
    /// owned by exactly one worker across the set.
    pub owned_clocks: &'a [ClockId],
    /// Whether this worker runs the `decide` hook (predicate, cycle
    /// budget, watchdog). Exactly one worker per set.
    pub decider: bool,
}

/// Per-worker statistics from one parallel run.
#[derive(Debug, Clone, Default)]
pub struct EpochOutcome {
    /// How the run ended (identical across all workers of a run).
    pub verdict: Option<EpochVerdict>,
    /// Global instants traversed (identical across workers).
    pub instants: u64,
    /// Instants at which this worker had local edges to process.
    pub fired_instants: u64,
    /// Wall nanoseconds this worker spent waiting at epoch barriers
    /// (the sum over every barrier, startup round included — kept for
    /// compatibility with the pre-histogram probe).
    pub barrier_wait_ns: u64,
    /// Per-instant barrier-wait distribution: one sample per traversed
    /// instant (that instant's eval + commit barrier waits summed).
    pub barrier_hist: WaitHist,
    /// Tokens absorbed by this worker's `drain` hook.
    pub drained_tokens: u64,
    /// The arithmetic fault recorded by *this* worker, if any.
    pub fatal: Option<SimError>,
    /// This worker's share of the hang diagnosis (verdict `Hang`).
    pub hang: Option<HangReport>,
}

/// Runs one worker's kernel through the globally merged instant
/// sequence until the worker set agrees to stop.
///
/// Per instant, every worker: (1) reads the shared flags and the
/// published clock table at the boundary — all workers see identical
/// values because flags are only written between the two barriers;
/// (2) adopts followed clocks' published schedules and runs `drain`
/// (mailbox intake for cross-worker channels); (3) evaluates the
/// instant if any local clock fires there; (4) barrier; (5) commits,
/// publishes owned clocks' next edges and its progress bit; the decider
/// additionally runs `decide` exactly once per boundary — the same
/// once-per-boundary contract the sequential `run_until` family pins;
/// (6) barrier.
///
/// `decide` receives the kernel and the aggregated progress bit of the
/// previous instant, and returns `Some(verdict)` to terminate the set.
/// It runs only on the worker marked [`EpochWorker::decider`].
pub fn run_parallel(
    sim: &mut Simulator,
    worker: &EpochWorker<'_>,
    drain: &mut dyn FnMut(&mut Simulator) -> u64,
    decide: &mut dyn FnMut(&mut Simulator, bool) -> Option<EpochVerdict>,
) -> EpochOutcome {
    let sync = worker.sync;
    let mut out = EpochOutcome::default();
    let mut owned = vec![false; sim.clock_count()];
    for c in worker.owned_clocks {
        owned[c.index()] = true;
    }

    // Startup round: publish the initial schedule of owned clocks, give
    // the decider its boundary-zero check (a predicate can be true
    // before the first instant, exactly as in sequential `run_until`),
    // and align on the commit barrier so every worker sees the full
    // table and any instant-zero verdict.
    for &c in worker.owned_clocks {
        let at = sim.clock_next_edge(c).map_or(NO_EDGE, |t| t.as_ps());
        sync.clock_edges[c.index()].store(at, Ordering::Release);
    }
    if sim.stopped() {
        sync.stop.store(true, Ordering::Release);
    }
    if worker.decider {
        if let Some(v) = decide(sim, true) {
            if let EpochVerdict::Hang = v {
                unreachable!("a watchdog cannot fire before the first instant");
            }
            sync.publish_verdict(v);
        }
    }
    barrier_timed(&sync.commit_done, &mut out.barrier_wait_ns);

    loop {
        // Boundary: decide whether the set continues. Everything read
        // here was published before the commit barrier all workers just
        // crossed, so every worker takes the same branch.
        if sync.fatal.load(Ordering::Acquire) {
            out.verdict = Some(EpochVerdict::Fatal);
            break;
        }
        if let Some(v) = sync.read_verdict() {
            out.verdict = Some(v);
            break;
        }
        if sync.stop.load(Ordering::Acquire) {
            out.verdict = Some(EpochVerdict::Stopped);
            break;
        }
        let t = sync.global_next();
        if t == NO_EDGE {
            out.verdict = Some(EpochVerdict::NoEvents);
            break;
        }
        out.instants += 1;

        // Pre-step: adopt followed clocks' authoritative schedules,
        // then absorb cross-worker tokens committed last instant.
        for (ci, is_owned) in owned.iter().enumerate() {
            if !is_owned {
                let at = sync.clock_edges[ci].load(Ordering::Acquire);
                sim.set_clock_next_edge(ClockId::from_index(ci), Picoseconds(at));
            }
        }
        out.drained_tokens += drain(sim);

        // Evaluate the instant if any local clock fires at `t`.
        let fired = sim.peek_next_instant() == Some(Picoseconds(t));
        if fired {
            sim.eval_instant();
        }
        let mut instant_wait = 0u64;
        barrier_timed(&sync.eval_done, &mut instant_wait);

        // Commit, then publish: owned clock schedules, the progress
        // bit for this instant (into the bank the previous instant is
        // no longer using), and any local stop/fault.
        if fired {
            sim.commit_instant();
            out.fired_instants += 1;
        }
        for &c in worker.owned_clocks {
            let at = sim.clock_next_edge(c).map_or(NO_EDGE, |e| e.as_ps());
            sync.clock_edges[c.index()].store(at, Ordering::Release);
        }
        let bank = (out.instants % 2) as usize;
        sync.progress[worker.index][bank].store(sim.take_progress(), Ordering::Release);
        if sim.fatal().is_some() {
            sync.fatal.store(true, Ordering::Release);
        }
        if sim.stopped() {
            sync.stop.store(true, Ordering::Release);
        }
        if worker.decider {
            // Aggregate the previous instant's progress: its writes all
            // happened before a barrier this worker has crossed. The
            // current instant's bits may still be in flight on other
            // workers — hence the one-instant watchdog lag.
            let prev_progress = if out.instants == 1 {
                true
            } else {
                let prev_bank = ((out.instants - 1) % 2) as usize;
                sync.progress
                    .iter()
                    .any(|banks| banks[prev_bank].load(Ordering::Acquire))
            };
            if let Some(v) = decide(sim, prev_progress) {
                sync.publish_verdict(v);
            }
        }
        barrier_timed(&sync.commit_done, &mut instant_wait);
        out.barrier_wait_ns += instant_wait;
        out.barrier_hist.record(instant_wait);
    }

    sim.flush_skipped_commits();
    if out.verdict == Some(EpochVerdict::Fatal) {
        out.fatal = sim.take_fatal();
    }
    if out.verdict == Some(EpochVerdict::Hang) {
        let idle = sync.hang_idle.load(Ordering::Acquire);
        out.hang = Some(sim.diagnose_hang(idle));
    }
    out
}

/// Records the idle-cycle count that backs a [`EpochVerdict::Hang`]
/// verdict the decider is about to publish.
pub fn publish_hang_idle(sync: &EpochSync, idle: u64) {
    sync.hang_idle.store(idle, Ordering::Release);
}

fn barrier_timed(b: &SpinBarrier, acc: &mut u64) {
    let t0 = std::time::Instant::now();
    b.wait();
    *acc += t0.elapsed().as_nanos() as u64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ClockSpec;
    use crate::component::{Component, TickCtx};
    use std::cell::RefCell;
    use std::rc::Rc;
    use std::sync::atomic::AtomicU64;
    use std::sync::{Arc, Mutex};

    struct Recorder {
        log: Rc<RefCell<Vec<(u64, u64)>>>,
        tag: u64,
    }
    impl Component for Recorder {
        fn name(&self) -> &str {
            "rec"
        }
        fn tick(&mut self, ctx: &mut TickCtx<'_>) {
            self.log.borrow_mut().push((ctx.now().as_ps(), self.tag));
        }
    }

    struct Stretcher {
        every: u64,
        extra: u64,
    }
    impl Component for Stretcher {
        fn name(&self) -> &str {
            "stretcher"
        }
        fn tick(&mut self, ctx: &mut TickCtx<'_>) {
            if ctx.cycle().is_multiple_of(self.every) {
                let clock = ctx.clock();
                ctx.stretch_clock(clock, Picoseconds(self.extra));
            }
        }
    }

    type TickLog = Rc<RefCell<Vec<(u64, u64)>>>;

    /// Builds a worker sim holding both clocks but only the given
    /// recorders; returns (sim, log).
    fn worker_sim(
        periods: &[u64],
        mine: &[usize],
        stretch_on: Option<usize>,
    ) -> (Simulator, TickLog) {
        let mut sim = Simulator::new();
        let log = Rc::new(RefCell::new(Vec::new()));
        let clocks: Vec<ClockId> = periods
            .iter()
            .enumerate()
            .map(|(i, &p)| sim.add_clock(ClockSpec::new(format!("c{i}"), Picoseconds(p))))
            .collect();
        for &i in mine {
            sim.add_component(
                clocks[i],
                Recorder {
                    log: Rc::clone(&log),
                    tag: i as u64,
                },
            );
        }
        if let Some(i) = stretch_on {
            sim.add_component(
                clocks[i],
                Stretcher {
                    every: 3,
                    extra: 45,
                },
            );
        }
        (sim, log)
    }

    /// Two workers, two clocks, one of them stretched by its owner:
    /// the merged parallel tick log must equal the sequential one.
    #[test]
    fn two_workers_match_sequential_schedule_under_stretch() {
        let periods = [100u64, 130];

        // Sequential reference: both recorders and the stretcher in one sim.
        let (mut seq, seq_log) = worker_sim(&periods, &[0, 1], Some(1));
        let seq_clk0 = ClockId::from_index(0);
        seq.run_until(seq_clk0, 40, || false);
        let mut expect = seq_log.borrow().clone();
        expect.sort_unstable();

        // Parallel: worker 0 owns clock 0 (and decides on it); worker 1
        // owns clock 1 and carries the stretcher.
        let sync = EpochSync::new(2, 2);
        let logs: Mutex<Vec<Vec<(u64, u64)>>> = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for w in 0..2usize {
                let sync = &sync;
                let logs = &logs;
                s.spawn(move || {
                    let (mut sim, log) = worker_sim(&periods, &[w], (w == 1).then_some(1));
                    let owned = [ClockId::from_index(w)];
                    let worker = EpochWorker {
                        sync,
                        index: w,
                        owned_clocks: &owned,
                        decider: w == 0,
                    };
                    let clk0 = ClockId::from_index(0);
                    let limit = sim.cycles(clk0) + 40;
                    let out = run_parallel(&mut sim, &worker, &mut |_| 0, &mut |sim, _| {
                        (sim.cycles(clk0) >= limit).then_some(EpochVerdict::MaxCycles)
                    });
                    assert_eq!(out.verdict, Some(EpochVerdict::MaxCycles));
                    logs.lock().unwrap().push(log.borrow().clone());
                });
            }
        });
        let mut got: Vec<(u64, u64)> = logs.lock().unwrap().concat();
        got.sort_unstable();
        assert_eq!(got, expect, "parallel tick schedule diverged");
    }

    /// A stop request on one worker terminates the whole set at the
    /// next boundary, with every worker reporting `Stopped`.
    #[test]
    fn stop_request_propagates_across_workers() {
        struct StopAt {
            cycle: u64,
        }
        impl Component for StopAt {
            fn name(&self) -> &str {
                "stop"
            }
            fn tick(&mut self, ctx: &mut TickCtx<'_>) {
                if ctx.cycle() == self.cycle {
                    ctx.request_stop();
                }
            }
        }
        let sync = EpochSync::new(2, 2);
        let verdicts: Mutex<Vec<(usize, Option<EpochVerdict>, u64)>> = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for w in 0..2usize {
                let sync = &sync;
                let verdicts = &verdicts;
                s.spawn(move || {
                    let mut sim = Simulator::new();
                    let c0 = sim.add_clock(ClockSpec::new("c0", Picoseconds(100)));
                    let c1 = sim.add_clock(ClockSpec::new("c1", Picoseconds(100)));
                    let mine = if w == 0 { c0 } else { c1 };
                    if w == 1 {
                        sim.add_component(mine, StopAt { cycle: 7 });
                    }
                    let owned = [mine];
                    let worker = EpochWorker {
                        sync,
                        index: w,
                        owned_clocks: &owned,
                        decider: w == 0,
                    };
                    let out = run_parallel(&mut sim, &worker, &mut |_| 0, &mut |_, _| None);
                    verdicts
                        .lock()
                        .unwrap()
                        .push((w, out.verdict, sim.cycles(mine)));
                });
            }
        });
        let v = verdicts.lock().unwrap();
        for (w, verdict, cycles) in v.iter() {
            assert_eq!(*verdict, Some(EpochVerdict::Stopped), "worker {w}");
            // Stop published after edge 7's commit; every worker halts
            // having delivered exactly 8 edges, like the sequential run.
            assert_eq!(*cycles, 8, "worker {w}");
        }
    }

    /// The decider's watchdog sees silence from all workers and hangs
    /// the set; a worker feeding progress holds it off.
    #[test]
    fn watchdog_aggregates_progress_across_workers() {
        for feed in [false, true] {
            let sync = EpochSync::new(2, 2);
            let hung = AtomicU64::new(0);
            std::thread::scope(|s| {
                for w in 0..2usize {
                    let sync = &sync;
                    let hung = &hung;
                    s.spawn(move || {
                        let mut sim = Simulator::new();
                        let c0 = sim.add_clock(ClockSpec::new("c0", Picoseconds(100)));
                        let c1 = sim.add_clock(ClockSpec::new("c1", Picoseconds(100)));
                        let mine = if w == 0 { c0 } else { c1 };
                        // Worker 1 optionally marks progress each instant.
                        let token = sim.progress_token();
                        let owned = [mine];
                        let worker = EpochWorker {
                            sync,
                            index: w,
                            owned_clocks: &owned,
                            decider: w == 0,
                        };
                        let mut idle = 0u64;
                        let mut last = 0u64;
                        let out = run_parallel(
                            &mut sim,
                            &worker,
                            &mut |_| {
                                if w == 1 && feed {
                                    token.set();
                                }
                                0
                            },
                            &mut |sim, progressed| {
                                let cycle = sim.cycles(c0);
                                if progressed {
                                    idle = 0;
                                } else {
                                    idle += cycle - last;
                                }
                                last = cycle;
                                if cycle >= 64 {
                                    return Some(EpochVerdict::MaxCycles);
                                }
                                if idle >= 16 {
                                    publish_hang_idle(worker.sync, idle);
                                    return Some(EpochVerdict::Hang);
                                }
                                None
                            },
                        );
                        if out.verdict == Some(EpochVerdict::Hang) {
                            hung.fetch_add(1, Ordering::AcqRel);
                            let report = out.hang.expect("hang carries a report");
                            assert_eq!(report.idle_cycles, 16);
                        }
                    });
                }
            });
            if feed {
                assert_eq!(hung.load(Ordering::Acquire), 0, "progress must hold it off");
            } else {
                assert_eq!(
                    hung.load(Ordering::Acquire),
                    2,
                    "both workers report the hang"
                );
            }
        }
    }

    /// Degenerate single-worker set: the epoch machinery must reproduce
    /// plain sequential behaviour exactly.
    #[test]
    fn single_worker_set_is_sequential() {
        let periods = [70u64, 100, 130];
        let (mut seq, seq_log) = worker_sim(&periods, &[0, 1, 2], Some(2));
        seq.run_until(ClockId::from_index(0), 30, || false);
        let seq_instants = seq.instants();

        let (mut par, par_log) = worker_sim(&periods, &[0, 1, 2], Some(2));
        let sync = EpochSync::new(1, 3);
        let owned: Vec<ClockId> = (0..3).map(ClockId::from_index).collect();
        let worker = EpochWorker {
            sync: &sync,
            index: 0,
            owned_clocks: &owned,
            decider: true,
        };
        let clk0 = ClockId::from_index(0);
        let out = run_parallel(&mut par, &worker, &mut |_| 0, &mut |sim, _| {
            (sim.cycles(clk0) >= 30).then_some(EpochVerdict::MaxCycles)
        });
        assert_eq!(out.verdict, Some(EpochVerdict::MaxCycles));
        assert_eq!(*par_log.borrow(), *seq_log.borrow());
        assert_eq!(out.instants, par.instants());
        assert_eq!(par.instants(), seq_instants);
        assert_eq!(out.fired_instants, out.instants, "sole worker fires all");
    }

    /// The barrier-wait histogram counts one sample per traversed
    /// instant and its quantile upper bounds bracket the exact max.
    #[test]
    fn wait_hist_buckets_and_quantiles() {
        let mut h = WaitHist::default();
        assert_eq!(h.quantile_ns(0.5), 0, "empty histogram reads zero");
        for ns in [0u64, 1, 2, 3, 100, 1000, 1_000_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.max_ns(), 1_000_000);
        // p50 falls in the bucket of the 4th-ranked sample (3 ns →
        // bucket 1, upper bound 4).
        assert_eq!(h.quantile_ns(0.5), 4);
        assert_eq!(h.quantile_ns(1.0), 1_000_000, "p100 clamps to max");
        assert!(h.quantile_ns(0.95) >= 1000);

        let mut other = WaitHist::default();
        other.record(5_000_000);
        h.merge(&other);
        assert_eq!(h.count(), 8);
        assert_eq!(h.max_ns(), 5_000_000);

        // The epoch loop feeds the histogram one sample per instant.
        let (mut sim, _log) = worker_sim(&[100], &[0], None);
        let sync = EpochSync::new(1, 1);
        let worker = EpochWorker {
            sync: &sync,
            index: 0,
            owned_clocks: &[ClockId::from_index(0)],
            decider: true,
        };
        let clk = ClockId::from_index(0);
        let out = run_parallel(&mut sim, &worker, &mut |_| 0, &mut |sim, _| {
            (sim.cycles(clk) >= 10).then_some(EpochVerdict::MaxCycles)
        });
        assert_eq!(out.barrier_hist.count(), out.instants);
        assert!(out.barrier_hist.max_ns() <= out.barrier_wait_ns);
    }

    #[test]
    fn barrier_releases_all_waiters() {
        let b = Arc::new(SpinBarrier::new(4));
        let hits = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let b = Arc::clone(&b);
                let hits = Arc::clone(&hits);
                s.spawn(move || {
                    for _ in 0..1000 {
                        b.wait();
                    }
                    hits.fetch_add(1, Ordering::AcqRel);
                });
            }
        });
        assert_eq!(hits.load(Ordering::Acquire), 4);
    }
}
