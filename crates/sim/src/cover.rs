//! Functional coverage collection — the reproduction's analogue of the
//! C++ coverage tooling in the paper's flow (Table 3: Testwell CTC++;
//! §4: "standard C++ code coverage tools were used to identify test
//! coverage holes").
//!
//! Components share a [`Coverage`] map and record named events; at the
//! end of a campaign [`Coverage::holes`] lists every declared bin that
//! never fired — the actionable "coverage holes" output.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// A shared functional-coverage map.
///
/// ```
/// use craft_sim::cover::Coverage;
/// let cov = Coverage::new();
/// cov.declare("pe.op.vecmul");
/// cov.declare("pe.op.dot");
/// cov.hit("pe.op.vecmul");
/// assert_eq!(cov.holes(), vec!["pe.op.dot".to_string()]);
/// assert!(cov.percent() > 49.0 && cov.percent() < 51.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Coverage {
    bins: Rc<RefCell<BTreeMap<String, u64>>>,
}

impl Coverage {
    /// An empty coverage map. Clones share the same underlying bins,
    /// so hand clones to every component in the testbench.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a bin that must be hit for full coverage. Idempotent.
    pub fn declare(&self, bin: impl Into<String>) {
        self.bins.borrow_mut().entry(bin.into()).or_insert(0);
    }

    /// Declares several bins at once.
    pub fn declare_all<I: IntoIterator<Item = S>, S: Into<String>>(&self, bins: I) {
        for b in bins {
            self.declare(b);
        }
    }

    /// Records one hit (auto-declares unknown bins — ad-hoc events are
    /// still interesting even if nobody planned them).
    pub fn hit(&self, bin: impl Into<String>) {
        *self.bins.borrow_mut().entry(bin.into()).or_insert(0) += 1;
    }

    /// Hit count of one bin (0 if undeclared).
    pub fn count(&self, bin: &str) -> u64 {
        self.bins.borrow().get(bin).copied().unwrap_or(0)
    }

    /// Every bin with its hit count, sorted by name — the raw map for
    /// callers that merge coverage across independent collectors (the
    /// sharded parallel SoC sums one of these per worker).
    pub fn bins(&self) -> Vec<(String, u64)> {
        self.bins
            .borrow()
            .iter()
            .map(|(k, &c)| (k.clone(), c))
            .collect()
    }

    /// Merges another collector's bins into this one, summing counts.
    pub fn absorb(&self, bins: &[(String, u64)]) {
        let mut map = self.bins.borrow_mut();
        for (k, c) in bins {
            *map.entry(k.clone()).or_insert(0) += c;
        }
    }

    /// Declared bins that were never hit, sorted.
    pub fn holes(&self) -> Vec<String> {
        self.bins
            .borrow()
            .iter()
            .filter(|(_, &c)| c == 0)
            .map(|(k, _)| k.clone())
            .collect()
    }

    /// Percentage of declared bins hit at least once (100.0 when no
    /// bins are declared).
    pub fn percent(&self) -> f64 {
        let bins = self.bins.borrow();
        if bins.is_empty() {
            return 100.0;
        }
        let hit = bins.values().filter(|&&c| c > 0).count();
        hit as f64 / bins.len() as f64 * 100.0
    }

    /// Full report, one bin per line.
    pub fn report(&self) -> String {
        let mut out = format!("coverage {:.1}%\n", self.percent());
        for (bin, count) in self.bins.borrow().iter() {
            let _ = fmt::Write::write_fmt(
                &mut out,
                format_args!(
                    "  {} {:40} {}\n",
                    if *count > 0 { "✓" } else { "✗" },
                    bin,
                    count
                ),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_bins() {
        let a = Coverage::new();
        let b = a.clone();
        a.declare("x");
        b.hit("x");
        assert_eq!(a.count("x"), 1);
        assert!(a.holes().is_empty());
    }

    #[test]
    fn holes_are_sorted_and_exact() {
        let c = Coverage::new();
        c.declare_all(["b", "a", "c"]);
        c.hit("b");
        assert_eq!(c.holes(), vec!["a".to_string(), "c".to_string()]);
        assert!((c.percent() - 33.333).abs() < 0.01);
    }

    #[test]
    fn adhoc_hits_autodeclare() {
        let c = Coverage::new();
        c.hit("surprise");
        assert_eq!(c.count("surprise"), 1);
        assert_eq!(c.percent(), 100.0);
    }

    #[test]
    fn report_marks_misses() {
        let c = Coverage::new();
        c.declare("hit.me");
        c.declare("missed");
        c.hit("hit.me");
        let r = c.report();
        assert!(r.contains("✓"), "{r}");
        assert!(r.contains("✗"), "{r}");
        assert!(r.contains("50.0%"), "{r}");
    }
}
