//! Hierarchical metrics registry and span tracing.
//!
//! The paper's flow (Fig. 1) leans on trace artifacts — FSDB waveforms,
//! per-unit activity reports — to close the loop between simulation and
//! physical design. This module is the reproduction's equivalent
//! observability layer:
//!
//! * a **metrics registry** of counters, gauges, latency histograms and
//!   polled probes, registered under dot-separated component paths
//!   (`soc.hub`, `soc.pe3`, `noc.l11p3->15`) and snapshotable at any
//!   cycle;
//! * **span tracing** for command lifetimes (hub dispatch → NoC
//!   traversal → PE execution → Done), cycle-stamped and ring-buffered
//!   with a configurable cap;
//! * JSON export of a [`TelemetrySnapshot`] without any external
//!   dependency (the shapes are serde-ready should one appear).
//!
//! Telemetry is strictly **observation-only**: attaching it to a model
//! must not change simulated cycles, results, or charged gates. The
//! intended wiring is `Option<Telemetry>` per component, so the
//! disabled path is a single `None` check.
//!
//! ```
//! use craft_sim::telemetry::Telemetry;
//! let tel = Telemetry::new();
//! let c = tel.counter("soc.hub.dispatched");
//! c.incr();
//! c.add(2);
//! let id = tel.span_begin("cmd.pe3", 10);
//! tel.span_end(id, "retire", 42);
//! let snap = tel.snapshot(100);
//! assert_eq!(snap.metrics[0].value, 3);
//! assert!(snap.to_json().starts_with('{'));
//! ```

use crate::stats::Histogram;
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::rc::Rc;

/// Default span ring-buffer capacity (events, not spans).
pub const DEFAULT_SPAN_CAP: usize = 4096;

/// A registered counter handle. Cheap to clone; all clones share the
/// same cell, and the owning [`Telemetry`] reads it at snapshot time.
#[derive(Debug, Clone)]
pub struct TelCounter(Rc<Cell<u64>>);

impl TelCounter {
    /// Adds one.
    pub fn incr(&self) {
        self.0.set(self.0.get() + 1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get() + n);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// A registered gauge handle (last-write-wins sampled value).
#[derive(Debug, Clone)]
pub struct TelGauge(Rc<Cell<u64>>);

impl TelGauge {
    /// Sets the gauge.
    pub fn set(&self, v: u64) {
        self.0.set(v);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// Lane-indexed counter array for batched lockstep runs: one shared
/// `Vec<u64>` (struct-of-arrays — the per-lane values live contiguously)
/// registered under `path.lane<i>` probe rows plus a `path.merged` row
/// that sums the lanes at snapshot time. Writers index by lane; the
/// registry polls lazily, so the hot loop touches one array slot.
#[derive(Debug, Clone)]
pub struct TelLaneCounters(Rc<RefCell<Vec<u64>>>);

impl TelLaneCounters {
    /// Adds `n` to lane `lane`'s counter.
    pub fn add(&self, lane: usize, n: u64) {
        self.0.borrow_mut()[lane] += n;
    }

    /// Overwrites lane `lane`'s counter (for end-of-run publication of
    /// externally accumulated per-lane totals).
    pub fn set(&self, lane: usize, n: u64) {
        self.0.borrow_mut()[lane] = n;
    }

    /// Lane `lane`'s current value.
    pub fn get(&self, lane: usize) -> u64 {
        self.0.borrow()[lane]
    }

    /// Sum over all lanes — the merged view the `path.merged` probe
    /// reports.
    pub fn merged(&self) -> u64 {
        self.0.borrow().iter().sum()
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.0.borrow().len()
    }
}

/// A registered latency-histogram handle (see [`Histogram`]).
#[derive(Debug, Clone)]
pub struct TelHistogram(Rc<RefCell<Histogram>>);

impl TelHistogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.0.borrow_mut().record(v);
    }

    /// Total samples recorded so far.
    pub fn total(&self) -> u64 {
        self.0.borrow().total()
    }
}

/// What kind of event a [`SpanEvent`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Span opened.
    Begin,
    /// Intermediate cycle-stamped point inside a span.
    Point,
    /// Span closed.
    End,
}

impl SpanKind {
    fn label(self) -> &'static str {
        match self {
            SpanKind::Begin => "begin",
            SpanKind::Point => "point",
            SpanKind::End => "end",
        }
    }
}

/// One cycle-stamped event in the span ring buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span correlation id (shared by Begin/Point/End of one span).
    pub span: u64,
    /// Event kind.
    pub kind: SpanKind,
    /// Human-readable label (`"cmd.pe3"`, `"retire"`, ...).
    pub label: String,
    /// Cycle stamp on the recording component's clock.
    pub cycle: u64,
}

/// Metric kinds as reported in a snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic event counter.
    Counter,
    /// Sampled last-write-wins value.
    Gauge,
    /// Lazily polled value (closure evaluated at snapshot time).
    Probe,
    /// Latency histogram (value = total samples).
    Histogram,
}

impl MetricKind {
    /// Snapshot/JSON label.
    pub fn label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Probe => "probe",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One metric row in a [`TelemetrySnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricRow {
    /// Dot-separated registry path.
    pub path: String,
    /// Metric kind.
    pub kind: MetricKind,
    /// Value (for histograms: total samples).
    pub value: u64,
    /// Bucket-granular p50 upper bound (histograms only).
    pub p50: Option<u64>,
    /// Bucket-granular p99 upper bound (histograms only).
    pub p99: Option<u64>,
}

/// Wall-clock attribution for one component's `tick()` calls, produced
/// by the kernel's tick-profiling hook
/// ([`crate::Simulator::set_tick_profiling`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TickProfile {
    /// Component name.
    pub name: String,
    /// Owning clock name.
    pub clock: String,
    /// Ticks delivered to this component while profiling was on.
    pub ticks: u64,
    /// Total wall-clock nanoseconds spent inside `tick()`.
    pub nanos: u64,
}

enum Metric {
    Counter(Rc<Cell<u64>>),
    Gauge(Rc<Cell<u64>>),
    Histogram(Rc<RefCell<Histogram>>),
    Probe(Box<dyn Fn() -> u64>),
}

impl std::fmt::Debug for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Metric::Counter(c) => write!(f, "Counter({})", c.get()),
            Metric::Gauge(g) => write!(f, "Gauge({})", g.get()),
            Metric::Histogram(_) => write!(f, "Histogram"),
            Metric::Probe(_) => write!(f, "Probe"),
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    metrics: Vec<(String, Metric)>,
    spans: VecDeque<SpanEvent>,
    span_cap: usize,
    spans_dropped: u64,
    spans_recorded: u64,
    next_span: u64,
    profiling: bool,
}

/// Shared telemetry handle: a hierarchical metrics registry plus a
/// span-event ring buffer. Clones share state (`Rc`), so one handle can
/// be threaded through hub, PEs, routers and the harness.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Rc<RefCell<Inner>>,
}

impl Telemetry {
    /// A fresh registry with the default span cap
    /// ([`DEFAULT_SPAN_CAP`] events).
    pub fn new() -> Self {
        Self::with_span_cap(DEFAULT_SPAN_CAP)
    }

    /// A fresh registry retaining at most `cap` span events; older
    /// events are dropped (and counted) once the ring is full.
    pub fn with_span_cap(cap: usize) -> Self {
        Telemetry {
            inner: Rc::new(RefCell::new(Inner {
                span_cap: cap,
                ..Inner::default()
            })),
        }
    }

    /// Registers (or re-fetches) a counter at `path`.
    pub fn counter(&self, path: impl Into<String>) -> TelCounter {
        let path = path.into();
        let mut inner = self.inner.borrow_mut();
        for (p, m) in &inner.metrics {
            if *p == path {
                if let Metric::Counter(c) = m {
                    return TelCounter(Rc::clone(c));
                }
            }
        }
        let cell = Rc::new(Cell::new(0));
        inner
            .metrics
            .push((path, Metric::Counter(Rc::clone(&cell))));
        TelCounter(cell)
    }

    /// Registers (or re-fetches) a gauge at `path`.
    pub fn gauge(&self, path: impl Into<String>) -> TelGauge {
        let path = path.into();
        let mut inner = self.inner.borrow_mut();
        for (p, m) in &inner.metrics {
            if *p == path {
                if let Metric::Gauge(g) = m {
                    return TelGauge(Rc::clone(g));
                }
            }
        }
        let cell = Rc::new(Cell::new(0));
        inner.metrics.push((path, Metric::Gauge(Rc::clone(&cell))));
        TelGauge(cell)
    }

    /// Registers a latency histogram at `path` with `n_buckets` buckets
    /// of `bucket_width` each (see [`Histogram::new`]).
    pub fn histogram(
        &self,
        path: impl Into<String>,
        bucket_width: u64,
        n_buckets: usize,
    ) -> TelHistogram {
        let h = Rc::new(RefCell::new(Histogram::new(bucket_width, n_buckets)));
        self.inner
            .borrow_mut()
            .metrics
            .push((path.into(), Metric::Histogram(Rc::clone(&h))));
        TelHistogram(h)
    }

    /// Registers a lane-indexed counter array at `path`: `lanes`
    /// per-lane probe rows (`path.lane<i>`) over one contiguous shared
    /// vector, plus a `path.merged` row summing them at snapshot time.
    /// The batched lockstep backend publishes per-lane fault/token
    /// counters through this.
    pub fn lane_counters(&self, path: impl Into<String>, lanes: usize) -> TelLaneCounters {
        let path = path.into();
        let store = Rc::new(RefCell::new(vec![0u64; lanes]));
        for lane in 0..lanes {
            let s = Rc::clone(&store);
            self.probe(format!("{path}.lane{lane}"), move || s.borrow()[lane]);
        }
        let s = Rc::clone(&store);
        self.probe(format!("{path}.merged"), move || s.borrow().iter().sum());
        TelLaneCounters(store)
    }

    /// Registers a polled probe at `path`: `f` is evaluated only at
    /// snapshot time, so probes cost nothing while the model runs.
    pub fn probe(&self, path: impl Into<String>, f: impl Fn() -> u64 + 'static) {
        self.inner
            .borrow_mut()
            .metrics
            .push((path.into(), Metric::Probe(Box::new(f))));
    }

    /// Registers an existing shared histogram (e.g. a component's
    /// internal latency histogram) for snapshot export.
    pub fn adopt_histogram(&self, path: impl Into<String>, h: Rc<RefCell<Histogram>>) {
        self.inner
            .borrow_mut()
            .metrics
            .push((path.into(), Metric::Histogram(h)));
    }

    /// Opens a span, recording a cycle-stamped `Begin` event, and
    /// returns its correlation id.
    pub fn span_begin(&self, label: impl Into<String>, cycle: u64) -> u64 {
        let mut inner = self.inner.borrow_mut();
        let id = inner.next_span;
        inner.next_span += 1;
        push_span(
            &mut inner,
            SpanEvent {
                span: id,
                kind: SpanKind::Begin,
                label: label.into(),
                cycle,
            },
        );
        id
    }

    /// Records an intermediate cycle-stamped point inside span `span`.
    pub fn span_point(&self, span: u64, label: impl Into<String>, cycle: u64) {
        push_span(
            &mut self.inner.borrow_mut(),
            SpanEvent {
                span,
                kind: SpanKind::Point,
                label: label.into(),
                cycle,
            },
        );
    }

    /// Closes span `span` with a cycle-stamped `End` event.
    pub fn span_end(&self, span: u64, label: impl Into<String>, cycle: u64) {
        push_span(
            &mut self.inner.borrow_mut(),
            SpanEvent {
                span,
                kind: SpanKind::End,
                label: label.into(),
                cycle,
            },
        );
    }

    /// Total span events recorded (including any later dropped).
    pub fn spans_recorded(&self) -> u64 {
        self.inner.borrow().spans_recorded
    }

    /// Span events evicted from the ring buffer.
    pub fn spans_dropped(&self) -> u64 {
        self.inner.borrow().spans_dropped
    }

    /// Requests per-component wall-clock tick profiling. The flag is
    /// read when the telemetry handle is attached to a simulator (e.g.
    /// by `Soc::build_with_telemetry`); it does not retroactively
    /// enable profiling on an already-built model.
    pub fn set_profiling(&self, on: bool) {
        self.inner.borrow_mut().profiling = on;
    }

    /// Whether tick profiling was requested.
    pub fn profiling(&self) -> bool {
        self.inner.borrow().profiling
    }

    /// Number of registered metrics.
    pub fn metric_count(&self) -> usize {
        self.inner.borrow().metrics.len()
    }

    /// Captures every metric, the span ring and (optionally) a tick
    /// profile into an exportable snapshot stamped with `cycle`.
    pub fn snapshot(&self, cycle: u64) -> TelemetrySnapshot {
        self.snapshot_with_profile(cycle, Vec::new())
    }

    /// Like [`Telemetry::snapshot`] but attaches a tick-time profile
    /// (from [`crate::Simulator::tick_profile`]).
    pub fn snapshot_with_profile(
        &self,
        cycle: u64,
        profile: Vec<TickProfile>,
    ) -> TelemetrySnapshot {
        let inner = self.inner.borrow();
        let mut metrics = Vec::with_capacity(inner.metrics.len());
        for (path, m) in &inner.metrics {
            let row = match m {
                Metric::Counter(c) => MetricRow {
                    path: path.clone(),
                    kind: MetricKind::Counter,
                    value: c.get(),
                    p50: None,
                    p99: None,
                },
                Metric::Gauge(g) => MetricRow {
                    path: path.clone(),
                    kind: MetricKind::Gauge,
                    value: g.get(),
                    p50: None,
                    p99: None,
                },
                Metric::Probe(f) => MetricRow {
                    path: path.clone(),
                    kind: MetricKind::Probe,
                    value: f(),
                    p50: None,
                    p99: None,
                },
                Metric::Histogram(h) => {
                    let h = h.borrow();
                    MetricRow {
                        path: path.clone(),
                        kind: MetricKind::Histogram,
                        value: h.total(),
                        p50: Some(h.quantile_upper_bound(0.5)),
                        p99: Some(h.quantile_upper_bound(0.99)),
                    }
                }
            };
            metrics.push(row);
        }
        TelemetrySnapshot {
            cycle,
            metrics,
            spans: inner.spans.iter().cloned().collect(),
            spans_recorded: inner.spans_recorded,
            spans_dropped: inner.spans_dropped,
            profile,
        }
    }
}

fn push_span(inner: &mut Inner, ev: SpanEvent) {
    inner.spans_recorded += 1;
    if inner.span_cap == 0 {
        inner.spans_dropped += 1;
        return;
    }
    if inner.spans.len() == inner.span_cap {
        inner.spans.pop_front();
        inner.spans_dropped += 1;
    }
    inner.spans.push_back(ev);
}

/// A point-in-time export of everything a [`Telemetry`] holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Cycle at which the snapshot was taken (caller-defined clock).
    pub cycle: u64,
    /// Every registered metric, in registration order.
    pub metrics: Vec<MetricRow>,
    /// Retained span events, oldest first.
    pub spans: Vec<SpanEvent>,
    /// Total span events ever recorded.
    pub spans_recorded: u64,
    /// Span events evicted by the ring cap.
    pub spans_dropped: u64,
    /// Per-component wall-clock tick attribution (empty unless
    /// profiling was enabled).
    pub profile: Vec<TickProfile>,
}

impl TelemetrySnapshot {
    /// Renders the snapshot as a self-contained JSON object.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"cycle\": {},", self.cycle);
        s.push_str("  \"metrics\": [\n");
        for (i, m) in self.metrics.iter().enumerate() {
            let comma = if i + 1 == self.metrics.len() { "" } else { "," };
            let mut extra = String::new();
            if let (Some(p50), Some(p99)) = (m.p50, m.p99) {
                let _ = write!(extra, ", \"p50\": {p50}, \"p99\": {p99}");
            }
            let _ = writeln!(
                s,
                "    {{\"path\": \"{}\", \"kind\": \"{}\", \"value\": {}{}}}{}",
                json_escape(&m.path),
                m.kind.label(),
                m.value,
                extra,
                comma
            );
        }
        s.push_str("  ],\n");
        let _ = writeln!(s, "  \"spans_recorded\": {},", self.spans_recorded);
        let _ = writeln!(s, "  \"spans_dropped\": {},", self.spans_dropped);
        s.push_str("  \"spans\": [\n");
        for (i, ev) in self.spans.iter().enumerate() {
            let comma = if i + 1 == self.spans.len() { "" } else { "," };
            let _ = writeln!(
                s,
                "    {{\"span\": {}, \"kind\": \"{}\", \"label\": \"{}\", \"cycle\": {}}}{}",
                ev.span,
                ev.kind.label(),
                json_escape(&ev.label),
                ev.cycle,
                comma
            );
        }
        s.push_str("  ],\n");
        s.push_str("  \"tick_profile\": [\n");
        for (i, p) in self.profile.iter().enumerate() {
            let comma = if i + 1 == self.profile.len() { "" } else { "," };
            let _ = writeln!(
                s,
                "    {{\"component\": \"{}\", \"clock\": \"{}\", \"ticks\": {}, \"nanos\": {}}}{}",
                json_escape(&p.name),
                json_escape(&p.clock),
                p.ticks,
                p.nanos,
                comma
            );
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Metric value at `path`, if registered.
    pub fn metric(&self, path: &str) -> Option<u64> {
        self.metrics
            .iter()
            .find(|m| m.path == path)
            .map(|m| m.value)
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let tel = Telemetry::new();
        let c = tel.counter("soc.hub.dispatched");
        c.incr();
        c.add(4);
        let g = tel.gauge("soc.hub.doorbell");
        g.set(7);
        g.set(3);
        let snap = tel.snapshot(99);
        assert_eq!(snap.cycle, 99);
        assert_eq!(snap.metric("soc.hub.dispatched"), Some(5));
        assert_eq!(snap.metric("soc.hub.doorbell"), Some(3));
        assert_eq!(snap.metric("missing"), None);
    }

    #[test]
    fn counter_reregistration_shares_state() {
        let tel = Telemetry::new();
        let a = tel.counter("x");
        let b = tel.counter("x");
        a.incr();
        b.incr();
        assert_eq!(a.get(), 2);
        assert_eq!(tel.metric_count(), 1, "same path registers once");
    }

    #[test]
    fn probes_poll_lazily() {
        let tel = Telemetry::new();
        let src = Rc::new(Cell::new(0u64));
        let src2 = Rc::clone(&src);
        tel.probe("noc.l0.occupancy", move || src2.get());
        src.set(41);
        assert_eq!(tel.snapshot(0).metric("noc.l0.occupancy"), Some(41));
        src.set(17);
        assert_eq!(tel.snapshot(1).metric("noc.l0.occupancy"), Some(17));
    }

    #[test]
    fn histogram_reports_quantiles() {
        let tel = Telemetry::new();
        let h = tel.histogram("soc.hub.latency", 10, 10);
        for v in [1, 5, 12, 95] {
            h.record(v);
        }
        let snap = tel.snapshot(0);
        let row = snap
            .metrics
            .iter()
            .find(|m| m.path == "soc.hub.latency")
            .unwrap();
        assert_eq!(row.kind, MetricKind::Histogram);
        assert_eq!(row.value, 4);
        assert_eq!(row.p50, Some(10));
        assert_eq!(row.p99, Some(100));
    }

    #[test]
    fn span_ring_caps_and_counts_drops() {
        let tel = Telemetry::with_span_cap(3);
        let id = tel.span_begin("cmd", 0);
        tel.span_point(id, "hop", 1);
        tel.span_point(id, "hop", 2);
        tel.span_end(id, "retire", 3);
        assert_eq!(tel.spans_recorded(), 4);
        assert_eq!(tel.spans_dropped(), 1);
        let snap = tel.snapshot(3);
        assert_eq!(snap.spans.len(), 3);
        // Oldest (the Begin) was evicted.
        assert_eq!(snap.spans[0].kind, SpanKind::Point);
        assert_eq!(snap.spans[2].kind, SpanKind::End);
    }

    #[test]
    fn span_ids_are_unique() {
        let tel = Telemetry::new();
        let a = tel.span_begin("a", 0);
        let b = tel.span_begin("b", 0);
        assert_ne!(a, b);
    }

    #[test]
    fn zero_cap_drops_everything() {
        let tel = Telemetry::with_span_cap(0);
        let id = tel.span_begin("x", 0);
        tel.span_end(id, "y", 1);
        assert_eq!(tel.spans_recorded(), 2);
        assert_eq!(tel.spans_dropped(), 2);
        assert!(tel.snapshot(0).spans.is_empty());
    }

    #[test]
    fn lane_counters_expose_per_lane_and_merged_rows() {
        let tel = Telemetry::new();
        let lanes = tel.lane_counters("sim.batch.injected", 4);
        lanes.add(0, 3);
        lanes.add(2, 5);
        lanes.set(3, 1);
        assert_eq!((lanes.lanes(), lanes.get(1), lanes.merged()), (4, 0, 9));
        let snap = tel.snapshot(0);
        assert_eq!(snap.metric("sim.batch.injected.lane0"), Some(3));
        assert_eq!(snap.metric("sim.batch.injected.lane1"), Some(0));
        assert_eq!(snap.metric("sim.batch.injected.lane2"), Some(5));
        assert_eq!(snap.metric("sim.batch.injected.merged"), Some(9));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("l11p3->15"), "l11p3->15");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn snapshot_json_has_expected_fields() {
        let tel = Telemetry::new();
        tel.counter("soc.pe3.commands").add(2);
        let id = tel.span_begin("cmd.pe3", 5);
        tel.span_end(id, "retire", 9);
        let snap = tel.snapshot_with_profile(
            12,
            vec![TickProfile {
                name: "hub".into(),
                clock: "hub_clk".into(),
                ticks: 12,
                nanos: 3400,
            }],
        );
        let js = snap.to_json();
        assert!(js.contains("\"cycle\": 12"));
        assert!(js.contains("\"path\": \"soc.pe3.commands\""));
        assert!(js.contains("\"kind\": \"counter\""));
        assert!(js.contains("\"label\": \"retire\""));
        assert!(js.contains("\"component\": \"hub\""));
        assert!(js.contains("\"nanos\": 3400"));
    }
}
