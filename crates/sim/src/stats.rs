//! Small statistics helpers shared by the NoC, SoC and benchmark
//! harnesses: counters, running means, and latency histograms.

use std::fmt;

/// A plain event counter with saturating watermark support — the
/// lightest member of the stats layer, used where a full [`Samples`]
/// is overkill (cache hits, plans lowered, ticks elided).
///
/// ```
/// use craft_sim::stats::Counter;
/// let mut c = Counter::new();
/// c.incr();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// c.observe_max(3);
/// assert_eq!(c.get(), 5); // watermark never lowers the value
/// c.observe_max(9);
/// assert_eq!(c.get(), 9);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Raises the value to `v` if `v` is larger (high-watermark use).
    pub fn observe_max(&mut self, v: u64) {
        self.value = self.value.max(v);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value)
    }
}

/// Running mean/min/max over `u64` samples (e.g. packet latencies in
/// cycles).
///
/// ```
/// use craft_sim::stats::Samples;
/// let mut s = Samples::new();
/// for v in [4, 6, 8] { s.record(v); }
/// assert_eq!(s.count(), 3);
/// assert_eq!(s.mean(), 6.0);
/// assert_eq!(s.min(), Some(4));
/// assert_eq!(s.max(), Some(8));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Samples {
    count: u64,
    sum: u128,
    min: Option<u64>,
    max: Option<u64>,
}

impl Samples {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum += u128::from(v);
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Arithmetic mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        self.min
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        self.max
    }

    /// Merges another sample set into this one.
    pub fn merge(&mut self, other: &Samples) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

impl fmt::Display for Samples {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.2} min={} max={}",
            self.count,
            self.mean(),
            self.min.map_or(0, |v| v),
            self.max.map_or(0, |v| v)
        )
    }
}

/// Fixed-bucket latency histogram with a saturating overflow bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bucket_width: u64,
    buckets: Vec<u64>,
    overflow: u64,
}

impl Histogram {
    /// `n_buckets` buckets of `bucket_width` each, plus overflow.
    ///
    /// # Panics
    /// Panics if `bucket_width` or `n_buckets` is zero.
    pub fn new(bucket_width: u64, n_buckets: usize) -> Self {
        assert!(bucket_width > 0, "bucket width must be nonzero");
        assert!(n_buckets > 0, "need at least one bucket");
        Histogram {
            bucket_width,
            buckets: vec![0; n_buckets],
            overflow: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        let idx = (v / self.bucket_width) as usize;
        if idx < self.buckets.len() {
            self.buckets[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Count in bucket `i` (`i * width ..< (i+1) * width`).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Count of samples beyond the last bucket.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.overflow
    }

    /// Smallest value `x` such that at least `q` (0..=1) of samples are
    /// `< x + bucket_width` (bucket-granular quantile; returns the
    /// bucket upper bound).
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        let total = self.total();
        if total == 0 {
            return 0;
        }
        let target = (q * total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return (i as u64 + 1) * self.bucket_width;
            }
        }
        u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.incr();
        c.add(10);
        assert_eq!(c.get(), 11);
        c.observe_max(5);
        assert_eq!(c.get(), 11, "watermark must not lower");
        c.observe_max(20);
        assert_eq!(c.get(), 20);
        assert_eq!(format!("{c}"), "20");
    }

    #[test]
    fn samples_track_extremes() {
        let mut s = Samples::new();
        assert_eq!(s.mean(), 0.0);
        s.record(10);
        s.record(2);
        s.record(6);
        assert_eq!(s.min(), Some(2));
        assert_eq!(s.max(), Some(10));
        assert_eq!(s.mean(), 6.0);
    }

    #[test]
    fn samples_merge() {
        let mut a = Samples::new();
        a.record(1);
        let mut b = Samples::new();
        b.record(9);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(1));
        assert_eq!(a.max(), Some(9));
        assert_eq!(a.mean(), 5.0);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(10, 3);
        for v in [0, 9, 10, 25, 29, 30, 1000] {
            h.record(v);
        }
        assert_eq!(h.bucket(0), 2);
        assert_eq!(h.bucket(1), 1);
        assert_eq!(h.bucket(2), 2);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn histogram_quantile() {
        let mut h = Histogram::new(1, 100);
        for v in 0..100 {
            h.record(v);
        }
        assert_eq!(h.quantile_upper_bound(0.5), 50);
        assert_eq!(h.quantile_upper_bound(0.99), 99);
        assert_eq!(h.quantile_upper_bound(1.0), 100);
    }

    #[test]
    #[should_panic(expected = "bucket width must be nonzero")]
    fn zero_bucket_width_panics() {
        let _ = Histogram::new(0, 4);
    }
}
