//! Activity tokens: the wake-up primitive behind quiescence gating.
//!
//! A sleeping component is skipped entirely during the evaluate phase,
//! so something *outside* the component must be able to mark it
//! runnable again. An [`ActivityToken`] is a shared one-bit flag
//! handed both to the kernel (which reads and clears it when deciding
//! whether to wake a sleeper) and to the component's activity sources —
//! typically the channels feeding it, which set the flag on every
//! successful push or pop.
//!
//! Tokens are level-ish, not edge-precise: a token may be set while
//! its owner is still awake (the kernel clears it only on wake), which
//! at worst costs one spurious tick after a sleep. A token is never
//! cleared when a component goes to sleep, so activity staged during
//! the same instant a component sleeps can never be lost.
//!
//! # Notify sinks
//!
//! The compiled instant plan (see the kernel's `plan` module) replaces
//! the kernel's per-edge token *scan* with an event queue: while a plan
//! is armed, each scheduled token is attached to a [`NotifySink`] with
//! a dense slot index, and every **false→true transition** of the flag
//! pushes that slot into the sink. The flag itself remains the source
//! of truth — detaching a sink loses no information, so the interpreted
//! path can take over at any moment (the de-opt contract). While a
//! token is already set, further `set()` calls notify nothing, exactly
//! mirroring the level semantics above.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

#[derive(Debug, Default)]
struct TokenInner {
    flag: Cell<bool>,
    /// Fast guard so unattached tokens (the interpreted path) pay one
    /// load + branch, not a `RefCell` borrow, per `set()`.
    attached: Cell<bool>,
    /// Dense index pushed into the sink on a false→true transition.
    slot: Cell<u32>,
    sink: RefCell<Option<NotifySink>>,
}

/// Shared "something happened, wake your owner" flag.
///
/// Cloning the token clones the handle, not the flag: all clones
/// observe and mutate the same bit (and the same sink attachment).
#[derive(Debug, Clone, Default)]
pub struct ActivityToken(Rc<TokenInner>);

impl ActivityToken {
    /// A fresh, unset token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks activity (idempotent). With a sink attached, the first
    /// set after a clear also enqueues the token's slot.
    #[inline]
    pub fn set(&self) {
        if !self.0.flag.replace(true) && self.0.attached.get() {
            if let Some(sink) = self.0.sink.borrow().as_ref() {
                sink.push(self.0.slot.get());
            }
        }
    }

    /// Reads and clears the flag, returning whether it was set.
    #[inline]
    pub fn take(&self) -> bool {
        self.0.flag.replace(false)
    }

    /// Reads the flag without clearing it.
    #[inline]
    pub fn is_set(&self) -> bool {
        self.0.flag.get()
    }

    /// True when `other` is a clone of this token (same flag cell).
    pub fn ptr_eq(&self, other: &ActivityToken) -> bool {
        Rc::ptr_eq(&self.0, &other.0)
    }

    /// Attaches `sink` so future false→true transitions enqueue `slot`.
    ///
    /// Returns `None` when a sink is already attached — a token
    /// registered under two plan slots cannot deliver to both, so the
    /// caller must decline to arm. On success returns whether the flag
    /// was **already set** at attach time: such a token will produce no
    /// notification until taken and re-set, so the caller must seed its
    /// own queue with `slot`.
    pub fn attach_notify(&self, sink: &NotifySink, slot: u32) -> Option<bool> {
        if self.0.attached.get() {
            return None;
        }
        *self.0.sink.borrow_mut() = Some(sink.clone());
        self.0.slot.set(slot);
        self.0.attached.set(true);
        Some(self.0.flag.get())
    }

    /// Detaches any attached sink. The flag is untouched, so the
    /// interpreted scan resumes with exactly the state the queue-based
    /// path would have observed.
    pub fn detach_notify(&self) {
        self.0.attached.set(false);
        *self.0.sink.borrow_mut() = None;
    }

    /// Whether a notify sink is currently attached.
    pub fn notify_attached(&self) -> bool {
        self.0.attached.get()
    }
}

#[derive(Debug, Default)]
struct SinkInner {
    queue: RefCell<Vec<u32>>,
    /// Mirror of `!queue.is_empty()`: the emptiness probe sits on the
    /// kernel's per-tick fast path, where a `Cell` load beats a
    /// `RefCell` borrow.
    nonempty: Cell<bool>,
}

/// A shared queue of slot indices fed by [`ActivityToken`] false→true
/// transitions. One sink serves many tokens; the consumer drains it
/// once per phase.
#[derive(Debug, Clone, Default)]
pub struct NotifySink(Rc<SinkInner>);

impl NotifySink {
    /// A fresh, empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub(crate) fn push(&self, slot: u32) {
        self.0.queue.borrow_mut().push(slot);
        self.0.nonempty.set(true);
    }

    /// Whether no notifications are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        !self.0.nonempty.get()
    }

    /// Moves all pending notifications into `out` (appending), leaving
    /// the sink empty.
    pub fn drain_into(&self, out: &mut Vec<u32>) {
        if self.0.nonempty.replace(false) {
            out.append(&mut self.0.queue.borrow_mut());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let a = ActivityToken::new();
        let b = a.clone();
        assert!(!a.is_set());
        b.set();
        assert!(a.is_set());
        assert!(a.take());
        assert!(!b.is_set());
        assert!(!b.take());
        assert!(a.ptr_eq(&b));
        assert!(!a.ptr_eq(&ActivityToken::new()));
    }

    #[test]
    fn notify_fires_on_rising_edge_only() {
        let t = ActivityToken::new();
        let sink = NotifySink::new();
        assert_eq!(t.attach_notify(&sink, 7), Some(false));
        t.set();
        t.set(); // already set: no second notification
        let mut got = Vec::new();
        sink.drain_into(&mut got);
        assert_eq!(got, vec![7]);
        assert!(sink.is_empty());
        // Still set; take then re-set notifies again.
        assert!(t.take());
        t.set();
        got.clear();
        sink.drain_into(&mut got);
        assert_eq!(got, vec![7]);
    }

    #[test]
    fn attach_reports_preexisting_level_and_rejects_double() {
        let t = ActivityToken::new();
        t.set();
        let sink = NotifySink::new();
        assert_eq!(t.attach_notify(&sink, 3), Some(true), "flag already set");
        assert!(sink.is_empty(), "no retroactive notification");
        assert_eq!(t.attach_notify(&sink, 4), None, "double attach");
        t.detach_notify();
        assert!(t.is_set(), "detach leaves the flag untouched");
        // Detached: transitions are silent again.
        assert!(t.take());
        t.set();
        assert!(sink.is_empty());
    }

    #[test]
    fn clones_share_attachment() {
        let a = ActivityToken::new();
        let b = a.clone();
        let sink = NotifySink::new();
        assert_eq!(a.attach_notify(&sink, 1), Some(false));
        assert!(b.notify_attached());
        b.set();
        let mut got = Vec::new();
        sink.drain_into(&mut got);
        assert_eq!(got, vec![1]);
    }
}
