//! Activity tokens: the wake-up primitive behind quiescence gating.
//!
//! A sleeping component is skipped entirely during the evaluate phase,
//! so something *outside* the component must be able to mark it
//! runnable again. An [`ActivityToken`] is a shared one-bit flag
//! (`Rc<Cell<bool>>`) handed both to the kernel (which reads and
//! clears it when deciding whether to wake a sleeper) and to the
//! component's activity sources — typically the channels feeding it,
//! which set the flag on every successful push or pop.
//!
//! Tokens are level-ish, not edge-precise: a token may be set while
//! its owner is still awake (the kernel clears it only on wake), which
//! at worst costs one spurious tick after a sleep. A token is never
//! cleared when a component goes to sleep, so activity staged during
//! the same instant a component sleeps can never be lost.

use std::cell::Cell;
use std::rc::Rc;

/// Shared "something happened, wake your owner" flag.
///
/// Cloning the token clones the handle, not the flag: all clones
/// observe and mutate the same bit.
#[derive(Debug, Clone, Default)]
pub struct ActivityToken(Rc<Cell<bool>>);

impl ActivityToken {
    /// A fresh, unset token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks activity (idempotent).
    pub fn set(&self) {
        self.0.set(true);
    }

    /// Reads and clears the flag, returning whether it was set.
    pub fn take(&self) -> bool {
        self.0.replace(false)
    }

    /// Reads the flag without clearing it.
    pub fn is_set(&self) -> bool {
        self.0.get()
    }

    /// True when `other` is a clone of this token (same flag cell).
    pub fn ptr_eq(&self, other: &ActivityToken) -> bool {
        Rc::ptr_eq(&self.0, &other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let a = ActivityToken::new();
        let b = a.clone();
        assert!(!a.is_set());
        b.set();
        assert!(a.is_set());
        assert!(a.take());
        assert!(!b.is_set());
        assert!(!b.take());
        assert!(a.ptr_eq(&b));
        assert!(!a.ptr_eq(&ActivityToken::new()));
    }
}
