//! Clock domains.
//!
//! A [`ClockDomain`] produces rising edges at `phase + n * period`. In a
//! GALS system every partition owns its own domain; the kernel advances
//! a picosecond event wheel to the earliest pending edge across all
//! domains (see [`crate::Simulator`]).

use crate::time::Picoseconds;
use std::fmt;

/// Identifier of a clock domain registered with a simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClockId(pub(crate) usize);

impl ClockId {
    /// Index of this domain in registration order.
    pub fn index(self) -> usize {
        self.0
    }

    /// Identifier for the domain registered at `index`.
    ///
    /// Workers of a parallel run build structurally identical
    /// simulators, so registration indices line up across them and the
    /// shared epoch tables can be addressed positionally (see
    /// [`crate::parallel`]). Using an index that was never registered
    /// makes later simulator calls panic.
    pub fn from_index(index: usize) -> Self {
        ClockId(index)
    }
}

impl fmt::Display for ClockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "clk{}", self.0)
    }
}

/// Static description of a clock domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClockSpec {
    /// Human-readable domain name (appears in traces and panics).
    pub name: String,
    /// Nominal period between rising edges.
    pub period: Picoseconds,
    /// Offset of the first rising edge from time zero.
    pub phase: Picoseconds,
}

impl ClockSpec {
    /// A clock named `name` with the given period and zero phase.
    ///
    /// # Panics
    /// Panics if `period` is zero.
    pub fn new(name: impl Into<String>, period: Picoseconds) -> Self {
        let period_v = period;
        assert!(period_v > Picoseconds::ZERO, "clock period must be nonzero");
        ClockSpec {
            name: name.into(),
            period,
            phase: Picoseconds::ZERO,
        }
    }

    /// Sets the phase offset of the first edge.
    pub fn with_phase(mut self, phase: Picoseconds) -> Self {
        self.phase = phase;
        self
    }
}

/// Runtime state of one clock domain inside the kernel.
#[derive(Debug)]
pub(crate) struct ClockState {
    pub spec: ClockSpec,
    /// Time of the next rising edge, or `Picoseconds::MAX` when paused.
    pub next_edge: Picoseconds,
    /// Rising edges delivered so far (the domain-local cycle count).
    pub cycles: u64,
    /// While `true` the clock emits no edges (pausible clocking).
    pub paused: bool,
    /// Override for the next period, used by jittering clock models.
    pub next_period_override: Option<Picoseconds>,
}

impl ClockState {
    pub fn new(spec: ClockSpec) -> Self {
        let next_edge = spec.phase;
        ClockState {
            spec,
            next_edge,
            cycles: 0,
            paused: false,
            next_period_override: None,
        }
    }

    /// Advances bookkeeping after the edge at `now` has been delivered.
    ///
    /// Returns `false` when scheduling the next edge overflowed the
    /// picosecond counter; the clock is then paused (no further edges)
    /// and the kernel records a [`crate::SimError::TimeOverflow`]
    /// instead of panicking.
    #[must_use]
    pub fn advance(&mut self) -> bool {
        self.cycles += 1;
        let period = self.next_period_override.take().unwrap_or(self.spec.period);
        match self.next_edge.checked_add(period) {
            Some(t) => {
                self.next_edge = t;
                true
            }
            None => {
                self.paused = true;
                self.next_edge = Picoseconds::MAX;
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_advance_by_period() {
        let mut st = ClockState::new(ClockSpec::new("c", Picoseconds(100)));
        assert_eq!(st.next_edge, Picoseconds::ZERO);
        assert!(st.advance());
        assert_eq!(st.next_edge, Picoseconds(100));
        assert_eq!(st.cycles, 1);
    }

    #[test]
    fn phase_offsets_first_edge() {
        let spec = ClockSpec::new("c", Picoseconds(100)).with_phase(Picoseconds(37));
        let st = ClockState::new(spec);
        assert_eq!(st.next_edge, Picoseconds(37));
    }

    #[test]
    fn period_override_applies_once() {
        let mut st = ClockState::new(ClockSpec::new("c", Picoseconds(100)));
        st.next_period_override = Some(Picoseconds(250));
        assert!(st.advance());
        assert_eq!(st.next_edge, Picoseconds(250));
        assert!(st.advance());
        assert_eq!(st.next_edge, Picoseconds(350));
    }

    #[test]
    fn advance_overflow_pauses_instead_of_panicking() {
        let mut st = ClockState::new(ClockSpec::new("c", Picoseconds(u64::MAX - 10)));
        assert!(st.advance());
        assert_eq!(st.next_edge, Picoseconds(u64::MAX - 10));
        assert!(!st.advance(), "second edge cannot be scheduled");
        assert!(st.paused, "overflowed clock emits no further edges");
        assert_eq!(st.next_edge, Picoseconds::MAX);
        assert_eq!(st.cycles, 2, "the delivered edge still counts");
    }

    #[test]
    #[should_panic(expected = "clock period must be nonzero")]
    fn zero_period_panics() {
        let _ = ClockSpec::new("bad", Picoseconds::ZERO);
    }
}
