//! Checkpoint/restore plumbing: a typed error, a little-endian byte
//! codec, the [`Checkpointable`] trait, and a length+checksum-framed
//! container format.
//!
//! The kernel's checkpoint model is **replay-based**: a snapshot holds
//! the deterministic *recipe* for a simulation (configuration, initial
//! memory images, the ordered log of irregular events such as fault
//! injections) plus a progress target and a verification digest — not
//! a serialized object graph. Restoring rebuilds the simulator from
//! the recipe and re-executes to the target instant, then proves the
//! reconstruction against the digest. This is the only scheme that can
//! promise *bit-identical* resume for a model whose state includes
//! closures, `Rc` graphs and arbitrary user payload types; it trades
//! restore CPU (a bounded re-run) for zero serialization blind spots.
//!
//! Framing: every on-disk snapshot is
//! `magic | version | kind | payload_len | payload | fnv64(payload)`.
//! A reader rejects bad magic, unknown versions, short reads and
//! checksum mismatches with a typed [`CheckpointError`] — never a
//! panic, never silently divergent state.

use std::fmt;
use std::path::Path;

/// Magic prefix of every snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"CRFTSNAP";
/// Current snapshot format version. Bump on any incompatible layout
/// change; readers reject other versions with
/// [`CheckpointError::UnsupportedVersion`].
pub const SNAPSHOT_VERSION: u32 = 1;

/// Why a checkpoint could not be saved, loaded, or restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Filesystem error (message carries the `std::io::Error` text).
    Io(String),
    /// The file does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The snapshot was written by an incompatible format version.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Version this reader supports.
        supported: u32,
    },
    /// The snapshot holds a different payload kind than the caller
    /// asked for (e.g. a batch snapshot fed to `Soc::restore`).
    WrongKind {
        /// Kind tag found in the header.
        found: u8,
        /// Kind tag the caller expected.
        expected: u8,
    },
    /// The byte stream ended before the declared length — a partial
    /// write or a truncated copy.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The payload checksum does not match — bit rot or tampering.
    Corrupted {
        /// Checksum recorded in the trailer.
        expected: u64,
        /// Checksum of the bytes actually read.
        found: u64,
    },
    /// The payload decoded but violates an internal invariant.
    Malformed(String),
    /// Replaying the snapshot's recipe did not reproduce the recorded
    /// state — the environment differs from the one that captured it.
    ReplayDivergence {
        /// Which digest field disagreed.
        field: String,
        /// Value recorded at capture.
        expected: u64,
        /// Value observed after replay.
        found: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(msg) => write!(f, "checkpoint I/O error: {msg}"),
            CheckpointError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            CheckpointError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} unsupported (reader supports {supported})"
            ),
            CheckpointError::WrongKind { found, expected } => write!(
                f,
                "snapshot kind {found} does not match expected kind {expected}"
            ),
            CheckpointError::Truncated { needed, have } => {
                write!(f, "snapshot truncated: needed {needed} bytes, have {have}")
            }
            CheckpointError::Corrupted { expected, found } => write!(
                f,
                "snapshot corrupted: checksum {found:#018x} != recorded {expected:#018x}"
            ),
            CheckpointError::Malformed(msg) => write!(f, "snapshot malformed: {msg}"),
            CheckpointError::ReplayDivergence {
                field,
                expected,
                found,
            } => write!(
                f,
                "replay divergence on {field}: expected {expected}, got {found}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// FNV-1a 64-bit hash — the snapshot payload checksum and the digest
/// hash used for bulky state (reports, memory images).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

/// Little-endian append-only byte sink for snapshot payloads.
#[derive(Debug, Default)]
pub struct StateWriter {
    buf: Vec<u8>,
}

impl StateWriter {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, yielding the encoded payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` via its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends `Some(v)`/`None` as a presence byte plus the value.
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(v) => {
                self.put_bool(true);
                self.put_u64(v);
            }
            None => self.put_bool(false),
        }
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed `u32` slice.
    pub fn put_u32s(&mut self, vs: &[u32]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_u32(v);
        }
    }

    /// Appends a length-prefixed `u64` slice.
    pub fn put_u64s(&mut self, vs: &[u64]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_u64(v);
        }
    }
}

/// Bounds-checked reader over an encoded payload. Every accessor
/// returns [`CheckpointError::Truncated`] instead of panicking when
/// the stream runs short.
#[derive(Debug)]
pub struct StateReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        StateReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.remaining() < n {
            return Err(CheckpointError::Truncated {
                needed: self.pos + n,
                have: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool; any byte other than 0/1 is malformed.
    pub fn get_bool(&mut self) -> Result<bool, CheckpointError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CheckpointError::Malformed(format!(
                "bool byte {b} (want 0/1)"
            ))),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CheckpointError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CheckpointError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CheckpointError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads an optional `u64` (presence byte + value).
    pub fn get_opt_u64(&mut self) -> Result<Option<u64>, CheckpointError> {
        Ok(if self.get_bool()? {
            Some(self.get_u64()?)
        } else {
            None
        })
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, CheckpointError> {
        let len = self.get_len()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CheckpointError::Malformed("non-UTF-8 string".into()))
    }

    /// Reads a length-prefixed `u32` vector.
    pub fn get_u32s(&mut self) -> Result<Vec<u32>, CheckpointError> {
        let len = self.get_len()?;
        (0..len).map(|_| self.get_u32()).collect()
    }

    /// Reads a length-prefixed `u64` vector.
    pub fn get_u64s(&mut self) -> Result<Vec<u64>, CheckpointError> {
        let len = self.get_len()?;
        (0..len).map(|_| self.get_u64()).collect()
    }

    /// Reads a length prefix, bounding it by the remaining bytes so a
    /// corrupted length cannot trigger an absurd allocation.
    pub fn get_len(&mut self) -> Result<usize, CheckpointError> {
        let len = self.get_u64()?;
        if len > self.remaining() as u64 * 8 + 64 {
            return Err(CheckpointError::Malformed(format!(
                "length prefix {len} exceeds remaining payload"
            )));
        }
        Ok(len as usize)
    }
}

/// State that can round-trip through a snapshot payload.
///
/// `save` must write exactly what `load` reads, in the same order —
/// the framed container checks integrity (length + checksum), the
/// trait carries the layout.
pub trait Checkpointable: Sized {
    /// Appends this value's encoding to `w`.
    fn save(&self, w: &mut StateWriter);
    /// Decodes one value, consuming exactly what `save` wrote.
    fn load(r: &mut StateReader<'_>) -> Result<Self, CheckpointError>;
}

/// Frames `payload` into a standalone snapshot byte stream:
/// magic, version, `kind` tag, length, payload, FNV-1a checksum.
pub fn frame_snapshot(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 29);
    out.extend_from_slice(SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.push(kind);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv64(payload).to_le_bytes());
    out
}

/// Validates a framed snapshot and returns its payload slice.
/// Rejects bad magic, unsupported versions, a wrong `kind` tag,
/// truncation (declared length or trailer missing), trailing garbage,
/// and checksum mismatches — each as its own [`CheckpointError`].
pub fn unframe_snapshot(bytes: &[u8], kind: u8) -> Result<&[u8], CheckpointError> {
    let header = SNAPSHOT_MAGIC.len() + 4 + 1 + 8;
    if bytes.len() < header {
        return Err(CheckpointError::Truncated {
            needed: header,
            have: bytes.len(),
        });
    }
    if &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if version != SNAPSHOT_VERSION {
        return Err(CheckpointError::UnsupportedVersion {
            found: version,
            supported: SNAPSHOT_VERSION,
        });
    }
    let found_kind = bytes[12];
    if found_kind != kind {
        return Err(CheckpointError::WrongKind {
            found: found_kind,
            expected: kind,
        });
    }
    let len = u64::from_le_bytes([
        bytes[13], bytes[14], bytes[15], bytes[16], bytes[17], bytes[18], bytes[19], bytes[20],
    ]) as usize;
    let total = header + len + 8;
    if bytes.len() < total {
        return Err(CheckpointError::Truncated {
            needed: total,
            have: bytes.len(),
        });
    }
    if bytes.len() > total {
        return Err(CheckpointError::Malformed(format!(
            "{} trailing bytes after snapshot frame",
            bytes.len() - total
        )));
    }
    let payload = &bytes[header..header + len];
    let recorded = u64::from_le_bytes(bytes[header + len..total].try_into().expect("8 bytes"));
    let actual = fnv64(payload);
    if recorded != actual {
        return Err(CheckpointError::Corrupted {
            expected: recorded,
            found: actual,
        });
    }
    Ok(payload)
}

/// Writes a framed snapshot to `path` atomically (write a `.tmp`
/// sibling, fsync, rename), so a crash mid-write can never leave a
/// half-written file under the final name. Returns the byte size.
pub fn save_snapshot_file(path: &Path, kind: u8, payload: &[u8]) -> Result<u64, CheckpointError> {
    let framed = frame_snapshot(kind, payload);
    let tmp = path.with_extension("tmp");
    let io = |e: std::io::Error| CheckpointError::Io(e.to_string());
    std::fs::write(&tmp, &framed).map_err(io)?;
    // Durability before visibility: the rename must not beat the data.
    let f = std::fs::File::open(&tmp).map_err(io)?;
    f.sync_all().map_err(io)?;
    drop(f);
    std::fs::rename(&tmp, path).map_err(io)?;
    Ok(framed.len() as u64)
}

/// Reads a framed snapshot from `path` and returns its validated
/// payload bytes.
pub fn load_snapshot_file(path: &Path, kind: u8) -> Result<Vec<u8>, CheckpointError> {
    let bytes = std::fs::read(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
    unframe_snapshot(&bytes, kind).map(<[u8]>::to_vec)
}

/// Hang-watchdog accumulator state, externalized so supervised runs
/// can be segmented (checkpoint between segments) without changing
/// when the watchdog trips: `idle` and `last_cycle` survive the seam
/// exactly as they would inside one uninterrupted
/// [`crate::Simulator::run_until_checked`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WatchdogState {
    /// Reference-clock cycles since the last observed progress.
    pub idle: u64,
    /// Reference-clock cycle count at the last watchdog evaluation.
    pub last_cycle: u64,
}

impl Checkpointable for WatchdogState {
    fn save(&self, w: &mut StateWriter) {
        w.put_u64(self.idle);
        w.put_u64(self.last_cycle);
    }

    fn load(r: &mut StateReader<'_>) -> Result<Self, CheckpointError> {
        Ok(WatchdogState {
            idle: r.get_u64()?,
            last_cycle: r.get_u64()?,
        })
    }
}

/// Exact kernel-level progress digest: scheduler counters and the full
/// clock table. Captured by [`crate::Simulator::kernel_digest`] and
/// verified after a replay-based restore — any field mismatch means
/// the rebuilt simulation did not retrace the original trajectory.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct KernelDigest {
    /// Simulation time, picoseconds.
    pub now_ps: u64,
    /// Evaluate/commit instants processed.
    pub instants: u64,
    /// Component ticks delivered.
    pub ticks_delivered: u64,
    /// Ticks elided by quiescence gating.
    pub ticks_skipped: u64,
    /// Sequential commits elided by gating.
    pub commits_skipped: u64,
    /// Per-clock `(cycles, next_edge_ps, paused)`, in clock-id order.
    pub clocks: Vec<(u64, u64, bool)>,
}

impl KernelDigest {
    /// Compares against a freshly captured digest, naming the first
    /// field that disagrees.
    pub fn verify(&self, got: &KernelDigest) -> Result<(), CheckpointError> {
        let diverged = |field: &str, expected: u64, found: u64| CheckpointError::ReplayDivergence {
            field: field.to_string(),
            expected,
            found,
        };
        if self.now_ps != got.now_ps {
            return Err(diverged("kernel.now_ps", self.now_ps, got.now_ps));
        }
        if self.instants != got.instants {
            return Err(diverged("kernel.instants", self.instants, got.instants));
        }
        if self.ticks_delivered != got.ticks_delivered {
            return Err(diverged(
                "kernel.ticks_delivered",
                self.ticks_delivered,
                got.ticks_delivered,
            ));
        }
        if self.ticks_skipped != got.ticks_skipped {
            return Err(diverged(
                "kernel.ticks_skipped",
                self.ticks_skipped,
                got.ticks_skipped,
            ));
        }
        if self.commits_skipped != got.commits_skipped {
            return Err(diverged(
                "kernel.commits_skipped",
                self.commits_skipped,
                got.commits_skipped,
            ));
        }
        if self.clocks.len() != got.clocks.len() {
            return Err(diverged(
                "kernel.clock_count",
                self.clocks.len() as u64,
                got.clocks.len() as u64,
            ));
        }
        for (i, (a, b)) in self.clocks.iter().zip(&got.clocks).enumerate() {
            if a != b {
                return Err(diverged(&format!("kernel.clock[{i}].cycles"), a.0, b.0));
            }
        }
        Ok(())
    }
}

impl Checkpointable for KernelDigest {
    fn save(&self, w: &mut StateWriter) {
        w.put_u64(self.now_ps);
        w.put_u64(self.instants);
        w.put_u64(self.ticks_delivered);
        w.put_u64(self.ticks_skipped);
        w.put_u64(self.commits_skipped);
        w.put_u64(self.clocks.len() as u64);
        for &(cycles, edge, paused) in &self.clocks {
            w.put_u64(cycles);
            w.put_u64(edge);
            w.put_bool(paused);
        }
    }

    fn load(r: &mut StateReader<'_>) -> Result<Self, CheckpointError> {
        let now_ps = r.get_u64()?;
        let instants = r.get_u64()?;
        let ticks_delivered = r.get_u64()?;
        let ticks_skipped = r.get_u64()?;
        let commits_skipped = r.get_u64()?;
        let n = r.get_len()?;
        let mut clocks = Vec::with_capacity(n);
        for _ in 0..n {
            clocks.push((r.get_u64()?, r.get_u64()?, r.get_bool()?));
        }
        Ok(KernelDigest {
            now_ps,
            instants,
            ticks_delivered,
            ticks_skipped,
            commits_skipped,
            clocks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codec_round_trips_primitives() {
        let mut w = StateWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_f64(0.25);
        w.put_opt_u64(Some(42));
        w.put_opt_u64(None);
        w.put_str("hub → n5");
        w.put_u32s(&[1, 2, 3]);
        w.put_u64s(&[]);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.get_f64().unwrap(), 0.25);
        assert_eq!(r.get_opt_u64().unwrap(), Some(42));
        assert_eq!(r.get_opt_u64().unwrap(), None);
        assert_eq!(r.get_str().unwrap(), "hub → n5");
        assert_eq!(r.get_u32s().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_u64s().unwrap(), Vec::<u64>::new());
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn reader_rejects_truncation_not_panics() {
        let mut w = StateWriter::new();
        w.put_u64(99);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes[..5]);
        assert!(matches!(
            r.get_u64(),
            Err(CheckpointError::Truncated { .. })
        ));
    }

    #[test]
    fn frame_round_trips_and_rejects_each_failure_mode() {
        let payload = b"deterministic payload".to_vec();
        let framed = frame_snapshot(3, &payload);
        assert_eq!(unframe_snapshot(&framed, 3).unwrap(), &payload[..]);

        // Bad magic.
        let mut bad = framed.clone();
        bad[0] ^= 0xFF;
        assert_eq!(unframe_snapshot(&bad, 3), Err(CheckpointError::BadMagic));

        // Version mismatch.
        let mut bad = framed.clone();
        bad[8] = bad[8].wrapping_add(1);
        assert!(matches!(
            unframe_snapshot(&bad, 3),
            Err(CheckpointError::UnsupportedVersion { .. })
        ));

        // Kind mismatch.
        assert!(matches!(
            unframe_snapshot(&framed, 4),
            Err(CheckpointError::WrongKind {
                found: 3,
                expected: 4
            })
        ));

        // Truncation (anywhere in the stream).
        for cut in [0, 10, framed.len() - 1] {
            assert!(matches!(
                unframe_snapshot(&framed[..cut], 3),
                Err(CheckpointError::Truncated { .. })
            ));
        }

        // Single-bit corruption of the payload.
        let mut bad = framed.clone();
        bad[25] ^= 0x01;
        assert!(matches!(
            unframe_snapshot(&bad, 3),
            Err(CheckpointError::Corrupted { .. })
        ));

        // Trailing garbage.
        let mut bad = framed.clone();
        bad.push(0);
        assert!(matches!(
            unframe_snapshot(&bad, 3),
            Err(CheckpointError::Malformed(_))
        ));
    }

    #[test]
    fn atomic_file_round_trip() {
        let dir = std::env::temp_dir().join(format!("craft_ckpt_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.ckpt");
        let payload = vec![9u8; 300];
        let size = save_snapshot_file(&path, 1, &payload).unwrap();
        assert_eq!(size, std::fs::metadata(&path).unwrap().len());
        assert_eq!(load_snapshot_file(&path, 1).unwrap(), payload);
        assert!(!path.with_extension("tmp").exists(), "tmp must be renamed");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn watchdog_and_digest_round_trip() {
        let wd = WatchdogState {
            idle: 17,
            last_cycle: 4_000,
        };
        let kd = KernelDigest {
            now_ps: 123_456,
            instants: 999,
            ticks_delivered: 10,
            ticks_skipped: 2,
            commits_skipped: 5,
            clocks: vec![(100, 90_900, false), (7, u64::MAX, true)],
        };
        let mut w = StateWriter::new();
        wd.save(&mut w);
        kd.save(&mut w);
        let bytes = w.into_bytes();
        let mut r = StateReader::new(&bytes);
        assert_eq!(WatchdogState::load(&mut r).unwrap(), wd);
        let kd2 = KernelDigest::load(&mut r).unwrap();
        assert_eq!(kd2, kd);
        kd.verify(&kd2).unwrap();
        let mut other = kd.clone();
        other.instants += 1;
        assert!(matches!(
            kd.verify(&other),
            Err(CheckpointError::ReplayDivergence { .. })
        ));
    }
}
