//! RV32IM instruction-set simulator.
//!
//! The paper's prototype SoC embeds a Chisel-generated Rocket RISC-V
//! core as the global controller; this ISS plays that role in the
//! reproduction (see DESIGN.md §1 for the substitution argument).

/// Memory access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessSize {
    /// 8 bits.
    Byte,
    /// 16 bits.
    Half,
    /// 32 bits.
    Word,
}

/// The CPU's view of the memory system (and MMIO).
pub trait Bus {
    /// Loads a zero-extended value of the given size.
    fn load(&mut self, addr: u32, size: AccessSize) -> u32;
    /// Stores the low bits of `value`.
    fn store(&mut self, addr: u32, value: u32, size: AccessSize);
}

/// Flat RAM bus for standalone use.
#[derive(Debug, Clone)]
pub struct FlatMemory {
    bytes: Vec<u8>,
}

impl FlatMemory {
    /// `size` bytes of zeroed RAM.
    pub fn new(size: usize) -> Self {
        FlatMemory {
            bytes: vec![0; size],
        }
    }

    /// Loads little-endian words at `base`.
    pub fn load_words(&mut self, base: u32, words: &[u32]) {
        for (i, &w) in words.iter().enumerate() {
            self.store(base + (i as u32) * 4, w, AccessSize::Word);
        }
    }

    /// Reads a word for testbench inspection.
    pub fn read_word(&mut self, addr: u32) -> u32 {
        self.load(addr, AccessSize::Word)
    }
}

impl Bus for FlatMemory {
    fn load(&mut self, addr: u32, size: AccessSize) -> u32 {
        let a = addr as usize;
        match size {
            AccessSize::Byte => u32::from(self.bytes[a]),
            AccessSize::Half => u32::from(self.bytes[a]) | (u32::from(self.bytes[a + 1]) << 8),
            AccessSize::Word => {
                u32::from(self.bytes[a])
                    | (u32::from(self.bytes[a + 1]) << 8)
                    | (u32::from(self.bytes[a + 2]) << 16)
                    | (u32::from(self.bytes[a + 3]) << 24)
            }
        }
    }

    fn store(&mut self, addr: u32, value: u32, size: AccessSize) {
        let a = addr as usize;
        match size {
            AccessSize::Byte => self.bytes[a] = value as u8,
            AccessSize::Half => {
                self.bytes[a] = value as u8;
                self.bytes[a + 1] = (value >> 8) as u8;
            }
            AccessSize::Word => {
                self.bytes[a] = value as u8;
                self.bytes[a + 1] = (value >> 8) as u8;
                self.bytes[a + 2] = (value >> 16) as u8;
                self.bytes[a + 3] = (value >> 24) as u8;
            }
        }
    }
}

/// Why [`Cpu::step`] stopped normal execution, if it did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Instruction retired normally.
    Retired,
    /// `ecall` executed (environment call — the SoC uses it as HALT).
    Ecall,
    /// `ebreak` executed.
    Ebreak,
}

/// RV32IM hart state.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// x0..x31 (x0 reads as zero).
    regs: [u32; 32],
    /// Program counter.
    pub pc: u32,
    /// Instructions retired.
    pub instret: u64,
}

impl Default for Cpu {
    fn default() -> Self {
        Self::new()
    }
}

impl Cpu {
    /// A hart reset to PC 0.
    pub fn new() -> Self {
        Cpu {
            regs: [0; 32],
            pc: 0,
            instret: 0,
        }
    }

    /// Reads register `r` (x0 is always zero).
    pub fn reg(&self, r: u32) -> u32 {
        self.regs[r as usize]
    }

    /// Writes register `r` (writes to x0 are ignored).
    pub fn set_reg(&mut self, r: u32, v: u32) {
        if r != 0 {
            self.regs[r as usize] = v;
        }
    }

    /// Fetches, decodes and executes one instruction against `bus`.
    ///
    /// # Panics
    /// Panics on an illegal/unsupported opcode — controller programs
    /// in this repo are trusted, so an illegal instruction is a bug.
    pub fn step(&mut self, bus: &mut impl Bus) -> StepOutcome {
        let inst = bus.load(self.pc, AccessSize::Word);
        let opcode = inst & 0x7F;
        let rd = (inst >> 7) & 0x1F;
        let rs1 = (inst >> 15) & 0x1F;
        let rs2 = (inst >> 20) & 0x1F;
        let funct3 = (inst >> 12) & 0x7;
        let funct7 = inst >> 25;
        let mut next_pc = self.pc.wrapping_add(4);
        let mut outcome = StepOutcome::Retired;

        match opcode {
            0b0110111 => self.set_reg(rd, inst & 0xFFFF_F000), // lui
            0b0010111 => self.set_reg(rd, self.pc.wrapping_add(inst & 0xFFFF_F000)), // auipc
            0b1101111 => {
                // jal (bit 31 sign-extends)
                let imm = (((inst as i32) >> 31) << 20)
                    | ((((inst >> 21) & 0x3FF) as i32) << 1)
                    | ((((inst >> 20) & 1) as i32) << 11)
                    | ((((inst >> 12) & 0xFF) as i32) << 12);
                self.set_reg(rd, next_pc);
                next_pc = self.pc.wrapping_add(imm as u32);
            }
            0b1100111 => {
                // jalr
                let imm = (inst as i32) >> 20;
                let target = self.reg(rs1).wrapping_add(imm as u32) & !1;
                self.set_reg(rd, next_pc);
                next_pc = target;
            }
            0b1100011 => {
                // branches (bit 31 sign-extends)
                let imm = (((inst as i32) >> 31) << 12)
                    | ((((inst >> 25) & 0x3F) as i32) << 5)
                    | ((((inst >> 8) & 0xF) as i32) << 1)
                    | ((((inst >> 7) & 1) as i32) << 11);
                let a = self.reg(rs1);
                let b = self.reg(rs2);
                let taken = match funct3 {
                    0b000 => a == b,
                    0b001 => a != b,
                    0b100 => (a as i32) < (b as i32),
                    0b101 => (a as i32) >= (b as i32),
                    0b110 => a < b,
                    0b111 => a >= b,
                    _ => panic!("illegal branch funct3 {funct3}"),
                };
                if taken {
                    next_pc = self.pc.wrapping_add(imm as u32);
                }
            }
            0b0000011 => {
                // loads
                let imm = (inst as i32) >> 20;
                let addr = self.reg(rs1).wrapping_add(imm as u32);
                let v = match funct3 {
                    0b000 => bus.load(addr, AccessSize::Byte) as i8 as i32 as u32,
                    0b001 => bus.load(addr, AccessSize::Half) as i16 as i32 as u32,
                    0b010 => bus.load(addr, AccessSize::Word),
                    0b100 => bus.load(addr, AccessSize::Byte),
                    0b101 => bus.load(addr, AccessSize::Half),
                    _ => panic!("illegal load funct3 {funct3}"),
                };
                self.set_reg(rd, v);
            }
            0b0100011 => {
                // stores
                let imm = (((inst >> 25) as i32) << 5 | ((inst >> 7) & 0x1F) as i32) << 20 >> 20;
                let addr = self.reg(rs1).wrapping_add(imm as u32);
                let v = self.reg(rs2);
                match funct3 {
                    0b000 => bus.store(addr, v, AccessSize::Byte),
                    0b001 => bus.store(addr, v, AccessSize::Half),
                    0b010 => bus.store(addr, v, AccessSize::Word),
                    _ => panic!("illegal store funct3 {funct3}"),
                }
            }
            0b0010011 => {
                // op-imm
                let imm = (inst as i32) >> 20;
                let a = self.reg(rs1);
                let shamt = rs2;
                let v = match funct3 {
                    0b000 => a.wrapping_add(imm as u32),
                    0b010 => u32::from((a as i32) < imm),
                    0b011 => u32::from(a < imm as u32),
                    0b100 => a ^ imm as u32,
                    0b110 => a | imm as u32,
                    0b111 => a & imm as u32,
                    0b001 => a.wrapping_shl(shamt),
                    0b101 => {
                        if funct7 & 0x20 != 0 {
                            ((a as i32) >> shamt) as u32
                        } else {
                            a.wrapping_shr(shamt)
                        }
                    }
                    _ => unreachable!(),
                };
                self.set_reg(rd, v);
            }
            0b0110011 => {
                // op / M extension
                let a = self.reg(rs1);
                let b = self.reg(rs2);
                let v = if funct7 == 0b0000001 {
                    match funct3 {
                        0b000 => a.wrapping_mul(b),
                        0b001 => ((i64::from(a as i32) * i64::from(b as i32)) >> 32) as u32,
                        0b010 => ((i64::from(a as i32) * b as i64) >> 32) as u32,
                        0b011 => ((u64::from(a) * u64::from(b)) >> 32) as u32,
                        0b100 => {
                            // div: spec'd edge cases.
                            if b == 0 {
                                u32::MAX
                            } else if a == 0x8000_0000 && b == u32::MAX {
                                a
                            } else {
                                ((a as i32) / (b as i32)) as u32
                            }
                        }
                        // RISC-V defines divu-by-zero as all-ones.
                        0b101 => a.checked_div(b).unwrap_or(u32::MAX),
                        0b110 => {
                            if b == 0 {
                                a
                            } else if a == 0x8000_0000 && b == u32::MAX {
                                0
                            } else {
                                ((a as i32) % (b as i32)) as u32
                            }
                        }
                        0b111 => {
                            if b == 0 {
                                a
                            } else {
                                a % b
                            }
                        }
                        _ => unreachable!(),
                    }
                } else {
                    match (funct7, funct3) {
                        (0b0000000, 0b000) => a.wrapping_add(b),
                        (0b0100000, 0b000) => a.wrapping_sub(b),
                        (0b0000000, 0b001) => a.wrapping_shl(b & 31),
                        (0b0000000, 0b010) => u32::from((a as i32) < (b as i32)),
                        (0b0000000, 0b011) => u32::from(a < b),
                        (0b0000000, 0b100) => a ^ b,
                        (0b0000000, 0b101) => a.wrapping_shr(b & 31),
                        (0b0100000, 0b101) => ((a as i32) >> (b & 31)) as u32,
                        (0b0000000, 0b110) => a | b,
                        (0b0000000, 0b111) => a & b,
                        _ => panic!("illegal R-type funct7={funct7:#b} funct3={funct3:#b}"),
                    }
                };
                self.set_reg(rd, v);
            }
            0b0001111 => {} // fence: no-op in this model
            0b1110011 => {
                outcome = if (inst >> 20) & 1 == 0 {
                    StepOutcome::Ecall
                } else {
                    StepOutcome::Ebreak
                };
            }
            _ => panic!("illegal opcode {opcode:#09b} at pc {:#010x}", self.pc),
        }
        self.pc = next_pc;
        self.instret += 1;
        outcome
    }

    /// Runs until `ecall`/`ebreak` or `max_steps`, returning the halt
    /// outcome if one occurred.
    pub fn run(&mut self, bus: &mut impl Bus, max_steps: u64) -> Option<StepOutcome> {
        for _ in 0..max_steps {
            match self.step(bus) {
                StepOutcome::Retired => {}
                halt => return Some(halt),
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode as rv;
    use crate::encode::{Assembler, A0, A1, A2, T0, T1, ZERO};

    fn run_program(words: Vec<u32>, max: u64) -> (Cpu, FlatMemory) {
        let mut mem = FlatMemory::new(64 * 1024);
        mem.load_words(0, &words);
        let mut cpu = Cpu::new();
        let halt = cpu.run(&mut mem, max);
        assert_eq!(halt, Some(StepOutcome::Ecall), "program must halt");
        (cpu, mem)
    }

    #[test]
    fn arithmetic_and_immediates() {
        let mut a = Assembler::new();
        a.emit_all(rv::li(A0, 1000));
        a.emit_all(rv::li(A1, -58));
        a.emit(rv::add(A2, A0, A1));
        a.emit(rv::ecall());
        let (cpu, _) = run_program(a.finish(), 100);
        assert_eq!(cpu.reg(A2), 942);
    }

    #[test]
    fn fibonacci_loop() {
        // fib(12) = 144 via an iterative loop.
        let mut a = Assembler::new();
        a.emit_all(rv::li(T0, 12)); // counter
        a.emit_all(rv::li(A0, 0));
        a.emit_all(rv::li(A1, 1));
        let top = a.label();
        a.emit(rv::add(T1, A0, A1));
        a.emit(rv::addi(A0, A1, 0));
        a.emit(rv::addi(A1, T1, 0));
        a.emit(rv::addi(T0, T0, -1));
        a.branch_to(top, |off| rv::bne(T0, ZERO, off));
        a.emit(rv::ecall());
        let (cpu, _) = run_program(a.finish(), 1000);
        assert_eq!(cpu.reg(A0), 144);
    }

    #[test]
    fn memory_bytes_halves_words() {
        let mut a = Assembler::new();
        a.emit_all(rv::li(T0, 0x1000));
        a.emit_all(rv::li(T1, 0x8081_8283u32 as i32));
        a.emit(rv::sw(T1, T0, 0));
        a.emit(rv::lb(A0, T0, 0)); // sign-extended 0x83
        a.emit(rv::lbu(A1, T0, 0)); // zero-extended
        a.emit(rv::lhu(A2, T0, 2)); // 0x8081
        a.emit(rv::ecall());
        let (cpu, _) = run_program(a.finish(), 100);
        assert_eq!(cpu.reg(A0), 0xFFFF_FF83);
        assert_eq!(cpu.reg(A1), 0x83);
        assert_eq!(cpu.reg(A2), 0x8081);
    }

    #[test]
    fn m_extension_edge_cases() {
        let mut a = Assembler::new();
        a.emit_all(rv::li(T0, 7));
        a.emit_all(rv::li(T1, 0));
        a.emit(rv::div(A0, T0, T1)); // div by zero -> -1
        a.emit(rv::rem(A1, T0, T1)); // rem by zero -> dividend
        a.emit_all(rv::li(T0, i32::MIN));
        a.emit_all(rv::li(T1, -1));
        a.emit(rv::div(A2, T0, T1)); // overflow -> MIN
        a.emit(rv::ecall());
        let (cpu, _) = run_program(a.finish(), 100);
        assert_eq!(cpu.reg(A0), u32::MAX);
        assert_eq!(cpu.reg(A1), 7);
        assert_eq!(cpu.reg(A2), 0x8000_0000);
    }

    #[test]
    fn mulh_variants() {
        let mut a = Assembler::new();
        a.emit_all(rv::li(T0, -2));
        a.emit_all(rv::li(T1, 3));
        a.emit(rv::mulh(A0, T0, T1)); // -6 >> 32 = -1
        a.emit(rv::mulhu(A1, T0, T1)); // (2^32-2)*3 >> 32 = 2
        a.emit(rv::ecall());
        let (cpu, _) = run_program(a.finish(), 100);
        assert_eq!(cpu.reg(A0), u32::MAX);
        assert_eq!(cpu.reg(A1), 2);
    }

    #[test]
    fn jal_and_jalr_link() {
        let mut a = Assembler::new();
        let func = a.forward_label();
        a.jal_to(rv::RA, func);
        a.emit(rv::ecall()); // return lands here
        a.place(func);
        a.emit_all(rv::li(A0, 99));
        a.emit(rv::jalr(ZERO, rv::RA, 0));
        let (cpu, _) = run_program(a.finish(), 100);
        assert_eq!(cpu.reg(A0), 99);
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let mut a = Assembler::new();
        a.emit(rv::addi(ZERO, ZERO, 100));
        a.emit(rv::addi(A0, ZERO, 0));
        a.emit(rv::ecall());
        let (cpu, _) = run_program(a.finish(), 10);
        assert_eq!(cpu.reg(A0), 0);
    }

    #[test]
    fn shifts_logical_and_arithmetic() {
        let mut a = Assembler::new();
        a.emit_all(rv::li(T0, -16));
        a.emit(rv::srai(A0, T0, 2)); // -4
        a.emit(rv::srli(A1, T0, 2)); // big positive
        a.emit(rv::slli(A2, T0, 1)); // -32
        a.emit(rv::ecall());
        let (cpu, _) = run_program(a.finish(), 10);
        assert_eq!(cpu.reg(A0) as i32, -4);
        assert_eq!(cpu.reg(A1), 0xFFFF_FFF0u32 >> 2);
        assert_eq!(cpu.reg(A2) as i32, -32);
    }

    #[test]
    fn memcpy_program() {
        let mut a = Assembler::new();
        a.emit_all(rv::li(A0, 0x1000)); // src
        a.emit_all(rv::li(A1, 0x2000)); // dst
        a.emit_all(rv::li(A2, 8)); // words
        let top = a.label();
        a.emit(rv::lw(T0, A0, 0));
        a.emit(rv::sw(T0, A1, 0));
        a.emit(rv::addi(A0, A0, 4));
        a.emit(rv::addi(A1, A1, 4));
        a.emit(rv::addi(A2, A2, -1));
        a.branch_to(top, |off| rv::bne(A2, ZERO, off));
        a.emit(rv::ecall());
        let prog = a.finish();

        let mut mem = FlatMemory::new(64 * 1024);
        mem.load_words(0, &prog);
        let src: Vec<u32> = (0..8).map(|i| 0xA0 + i).collect();
        mem.load_words(0x1000, &src);
        let mut cpu = Cpu::new();
        assert_eq!(cpu.run(&mut mem, 1000), Some(StepOutcome::Ecall));
        for i in 0..8u32 {
            assert_eq!(mem.read_word(0x2000 + i * 4), 0xA0 + i);
        }
    }

    #[test]
    #[should_panic(expected = "illegal opcode")]
    fn illegal_instruction_panics() {
        let mut mem = FlatMemory::new(1024);
        mem.load_words(0, &[0xFFFF_FFFF]);
        let mut cpu = Cpu::new();
        let _ = cpu.step(&mut mem);
    }
}
