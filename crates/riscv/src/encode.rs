//! RV32IM instruction encoders and a small label-aware assembler for
//! writing controller programs in tests and SoC workloads.

/// Register x0..x31. Conventional ABI aliases as constants.
pub type Reg = u32;

/// Hard-wired zero.
pub const ZERO: Reg = 0;
/// Return address.
pub const RA: Reg = 1;
/// Stack pointer.
pub const SP: Reg = 2;
/// Temporaries.
pub const T0: Reg = 5;
/// Temporary 1.
pub const T1: Reg = 6;
/// Temporary 2.
pub const T2: Reg = 7;
/// Temporary 3.
pub const T3: Reg = 28;
/// Temporary 4.
pub const T4: Reg = 29;
/// Argument/return 0.
pub const A0: Reg = 10;
/// Argument 1.
pub const A1: Reg = 11;
/// Argument 2.
pub const A2: Reg = 12;
/// Argument 3.
pub const A3: Reg = 13;
/// Argument 4.
pub const A4: Reg = 14;
/// Argument 5.
pub const A5: Reg = 15;
/// Saved 0.
pub const S0: Reg = 8;
/// Saved 1.
pub const S1: Reg = 9;

fn check_reg(r: Reg) {
    assert!(r < 32, "register out of range");
}

fn r_type(funct7: u32, rs2: Reg, rs1: Reg, funct3: u32, rd: Reg, opcode: u32) -> u32 {
    check_reg(rs2);
    check_reg(rs1);
    check_reg(rd);
    (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
}

fn i_type(imm: i32, rs1: Reg, funct3: u32, rd: Reg, opcode: u32) -> u32 {
    check_reg(rs1);
    check_reg(rd);
    assert!((-2048..=2047).contains(&imm), "I-immediate out of range");
    ((imm as u32 & 0xFFF) << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
}

fn s_type(imm: i32, rs2: Reg, rs1: Reg, funct3: u32, opcode: u32) -> u32 {
    check_reg(rs2);
    check_reg(rs1);
    assert!((-2048..=2047).contains(&imm), "S-immediate out of range");
    let imm = imm as u32 & 0xFFF;
    ((imm >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | ((imm & 0x1F) << 7) | opcode
}

fn b_type(imm: i32, rs2: Reg, rs1: Reg, funct3: u32) -> u32 {
    check_reg(rs2);
    check_reg(rs1);
    assert!(
        (-4096..=4094).contains(&imm) && imm % 2 == 0,
        "B-immediate out of range"
    );
    let imm = imm as u32 & 0x1FFF;
    ((imm >> 12) << 31)
        | (((imm >> 5) & 0x3F) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | (((imm >> 1) & 0xF) << 8)
        | (((imm >> 11) & 1) << 7)
        | 0b1100011
}

/// `lui rd, imm20` (imm is the upper-20-bit value).
pub fn lui(rd: Reg, imm20: u32) -> u32 {
    check_reg(rd);
    assert!(imm20 < (1 << 20), "U-immediate out of range");
    (imm20 << 12) | (rd << 7) | 0b0110111
}

/// `auipc rd, imm20`.
pub fn auipc(rd: Reg, imm20: u32) -> u32 {
    check_reg(rd);
    assert!(imm20 < (1 << 20), "U-immediate out of range");
    (imm20 << 12) | (rd << 7) | 0b0010111
}

/// `jal rd, offset` (byte offset, ±1MiB, even).
pub fn jal(rd: Reg, offset: i32) -> u32 {
    check_reg(rd);
    assert!(
        (-(1 << 20)..(1 << 20)).contains(&offset) && offset % 2 == 0,
        "J-immediate out of range"
    );
    let imm = offset as u32 & 0x1F_FFFF;
    ((imm >> 20) << 31)
        | (((imm >> 1) & 0x3FF) << 21)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 12) & 0xFF) << 12)
        | (rd << 7)
        | 0b1101111
}

/// `jalr rd, rs1, imm`.
pub fn jalr(rd: Reg, rs1: Reg, imm: i32) -> u32 {
    i_type(imm, rs1, 0b000, rd, 0b1100111)
}

macro_rules! branches {
    ($($(#[$doc:meta])* $name:ident => $f3:expr),* $(,)?) => {$(
        $(#[$doc])*
        pub fn $name(rs1: Reg, rs2: Reg, offset: i32) -> u32 {
            b_type(offset, rs2, rs1, $f3)
        }
    )*};
}
branches! {
    /// `beq rs1, rs2, offset`.
    beq => 0b000,
    /// `bne rs1, rs2, offset`.
    bne => 0b001,
    /// `blt rs1, rs2, offset` (signed).
    blt => 0b100,
    /// `bge rs1, rs2, offset` (signed).
    bge => 0b101,
    /// `bltu rs1, rs2, offset`.
    bltu => 0b110,
    /// `bgeu rs1, rs2, offset`.
    bgeu => 0b111,
}

/// `lw rd, imm(rs1)`.
pub fn lw(rd: Reg, rs1: Reg, imm: i32) -> u32 {
    i_type(imm, rs1, 0b010, rd, 0b0000011)
}
/// `lb rd, imm(rs1)`.
pub fn lb(rd: Reg, rs1: Reg, imm: i32) -> u32 {
    i_type(imm, rs1, 0b000, rd, 0b0000011)
}
/// `lbu rd, imm(rs1)`.
pub fn lbu(rd: Reg, rs1: Reg, imm: i32) -> u32 {
    i_type(imm, rs1, 0b100, rd, 0b0000011)
}
/// `lh rd, imm(rs1)`.
pub fn lh(rd: Reg, rs1: Reg, imm: i32) -> u32 {
    i_type(imm, rs1, 0b001, rd, 0b0000011)
}
/// `lhu rd, imm(rs1)`.
pub fn lhu(rd: Reg, rs1: Reg, imm: i32) -> u32 {
    i_type(imm, rs1, 0b101, rd, 0b0000011)
}
/// `sw rs2, imm(rs1)`.
pub fn sw(rs2: Reg, rs1: Reg, imm: i32) -> u32 {
    s_type(imm, rs2, rs1, 0b010, 0b0100011)
}
/// `sb rs2, imm(rs1)`.
pub fn sb(rs2: Reg, rs1: Reg, imm: i32) -> u32 {
    s_type(imm, rs2, rs1, 0b000, 0b0100011)
}
/// `sh rs2, imm(rs1)`.
pub fn sh(rs2: Reg, rs1: Reg, imm: i32) -> u32 {
    s_type(imm, rs2, rs1, 0b001, 0b0100011)
}

/// `addi rd, rs1, imm`.
pub fn addi(rd: Reg, rs1: Reg, imm: i32) -> u32 {
    i_type(imm, rs1, 0b000, rd, 0b0010011)
}
/// `slti rd, rs1, imm`.
pub fn slti(rd: Reg, rs1: Reg, imm: i32) -> u32 {
    i_type(imm, rs1, 0b010, rd, 0b0010011)
}
/// `sltiu rd, rs1, imm`.
pub fn sltiu(rd: Reg, rs1: Reg, imm: i32) -> u32 {
    i_type(imm, rs1, 0b011, rd, 0b0010011)
}
/// `xori rd, rs1, imm`.
pub fn xori(rd: Reg, rs1: Reg, imm: i32) -> u32 {
    i_type(imm, rs1, 0b100, rd, 0b0010011)
}
/// `ori rd, rs1, imm`.
pub fn ori(rd: Reg, rs1: Reg, imm: i32) -> u32 {
    i_type(imm, rs1, 0b110, rd, 0b0010011)
}
/// `andi rd, rs1, imm`.
pub fn andi(rd: Reg, rs1: Reg, imm: i32) -> u32 {
    i_type(imm, rs1, 0b111, rd, 0b0010011)
}
/// `slli rd, rs1, shamt`.
pub fn slli(rd: Reg, rs1: Reg, shamt: u32) -> u32 {
    assert!(shamt < 32, "shift amount out of range");
    i_type(shamt as i32, rs1, 0b001, rd, 0b0010011)
}
/// `srli rd, rs1, shamt`.
pub fn srli(rd: Reg, rs1: Reg, shamt: u32) -> u32 {
    assert!(shamt < 32, "shift amount out of range");
    i_type(shamt as i32, rs1, 0b101, rd, 0b0010011)
}
/// `srai rd, rs1, shamt`.
pub fn srai(rd: Reg, rs1: Reg, shamt: u32) -> u32 {
    assert!(shamt < 32, "shift amount out of range");
    i_type((shamt | 0x400) as i32, rs1, 0b101, rd, 0b0010011)
}

macro_rules! r_ops {
    ($($(#[$doc:meta])* $name:ident => ($f7:expr, $f3:expr)),* $(,)?) => {$(
        $(#[$doc])*
        pub fn $name(rd: Reg, rs1: Reg, rs2: Reg) -> u32 {
            r_type($f7, rs2, rs1, $f3, rd, 0b0110011)
        }
    )*};
}
r_ops! {
    /// `add rd, rs1, rs2`.
    add => (0b0000000, 0b000),
    /// `sub rd, rs1, rs2`.
    sub => (0b0100000, 0b000),
    /// `sll rd, rs1, rs2`.
    sll => (0b0000000, 0b001),
    /// `slt rd, rs1, rs2`.
    slt => (0b0000000, 0b010),
    /// `sltu rd, rs1, rs2`.
    sltu => (0b0000000, 0b011),
    /// `xor rd, rs1, rs2`.
    xor => (0b0000000, 0b100),
    /// `srl rd, rs1, rs2`.
    srl => (0b0000000, 0b101),
    /// `sra rd, rs1, rs2`.
    sra => (0b0100000, 0b101),
    /// `or rd, rs1, rs2`.
    or => (0b0000000, 0b110),
    /// `and rd, rs1, rs2`.
    and => (0b0000000, 0b111),
    /// `mul rd, rs1, rs2` (M).
    mul => (0b0000001, 0b000),
    /// `mulh rd, rs1, rs2` (M).
    mulh => (0b0000001, 0b001),
    /// `mulhsu rd, rs1, rs2` (M).
    mulhsu => (0b0000001, 0b010),
    /// `mulhu rd, rs1, rs2` (M).
    mulhu => (0b0000001, 0b011),
    /// `div rd, rs1, rs2` (M).
    div => (0b0000001, 0b100),
    /// `divu rd, rs1, rs2` (M).
    divu => (0b0000001, 0b101),
    /// `rem rd, rs1, rs2` (M).
    rem => (0b0000001, 0b110),
    /// `remu rd, rs1, rs2` (M).
    remu => (0b0000001, 0b111),
}

/// `ecall` (the ISS halts and surfaces it to the environment).
pub fn ecall() -> u32 {
    0b1110011
}

/// `ebreak`.
pub fn ebreak() -> u32 {
    (1 << 20) | 0b1110011
}

/// `nop` (addi x0, x0, 0).
pub fn nop() -> u32 {
    addi(0, 0, 0)
}

/// Loads an arbitrary 32-bit constant into `rd` (lui+addi pair, or a
/// single addi when it fits).
pub fn li(rd: Reg, value: i32) -> Vec<u32> {
    if (-2048..=2047).contains(&value) {
        return vec![addi(rd, ZERO, value)];
    }
    let v = value as u32;
    let lo = (v & 0xFFF) as i32;
    let lo = if lo >= 2048 { lo - 4096 } else { lo };
    let hi = v.wrapping_sub(lo as u32) >> 12;
    vec![lui(rd, hi & 0xFFFFF), addi(rd, rd, lo)]
}

/// A label-aware program assembler.
///
/// ```
/// use craft_riscv::asm::{Assembler, A0, ZERO};
/// use craft_riscv::asm as rv;
/// let mut a = Assembler::new();
/// a.emit(rv::addi(A0, ZERO, 5));
/// let loop_top = a.label();
/// a.emit(rv::addi(A0, A0, -1));
/// a.branch_to(loop_top, |off| rv::bne(A0, ZERO, off));
/// a.emit(rv::ecall());
/// let program = a.finish();
/// assert_eq!(program.len(), 4);
/// ```
#[derive(Debug, Default)]
pub struct Assembler {
    words: Vec<u32>,
    /// (index in words, target label id) patched at finish for forward
    /// references.
    fixups: Vec<(usize, usize, FixupKind)>,
    labels: Vec<Option<usize>>,
}

#[derive(Debug, Clone, Copy)]
enum FixupKind {
    Branch(fn(i32) -> u32),
    Jal(Reg),
}

/// A position in the program that branches can target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

impl Assembler {
    /// An empty program at address 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one encoded instruction.
    pub fn emit(&mut self, word: u32) {
        self.words.push(word);
    }

    /// Appends several encoded instructions (e.g. from [`li`]).
    pub fn emit_all(&mut self, words: impl IntoIterator<Item = u32>) {
        self.words.extend(words);
    }

    /// Current byte address (next instruction goes here).
    pub fn here(&self) -> u32 {
        (self.words.len() * 4) as u32
    }

    /// Defines a label at the current position.
    pub fn label(&mut self) -> Label {
        self.labels.push(Some(self.words.len()));
        Label(self.labels.len() - 1)
    }

    /// Declares a label to be placed later with
    /// [`place`](Self::place).
    pub fn forward_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Places a previously declared forward label here.
    ///
    /// # Panics
    /// Panics if the label was already placed.
    pub fn place(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label placed twice");
        self.labels[label.0] = Some(self.words.len());
    }

    /// Emits a branch to `label` using `encode` (an offset-taking
    /// encoder like `|off| bne(a, b, off)`). Function pointers only so
    /// fixups stay `Copy` — use a tiny `fn` instead of a closure.
    pub fn branch_to(&mut self, label: Label, encode: fn(i32) -> u32) {
        let at = self.words.len();
        self.words.push(0); // placeholder
        self.fixups.push((at, label.0, FixupKind::Branch(encode)));
    }

    /// Emits `jal rd, label`.
    pub fn jal_to(&mut self, rd: Reg, label: Label) {
        let at = self.words.len();
        self.words.push(0);
        self.fixups.push((at, label.0, FixupKind::Jal(rd)));
    }

    /// Resolves fixups and returns the instruction words.
    ///
    /// # Panics
    /// Panics if any forward label was never placed.
    pub fn finish(mut self) -> Vec<u32> {
        for (at, label, kind) in std::mem::take(&mut self.fixups) {
            let target = self.labels[label].expect("unplaced forward label");
            let offset = (target as i64 - at as i64) * 4;
            self.words[at] = match kind {
                FixupKind::Branch(f) => f(offset as i32),
                FixupKind::Jal(rd) => jal(rd, offset as i32),
            };
        }
        self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_encodings() {
        // Cross-checked against the RISC-V spec examples.
        assert_eq!(addi(1, 0, 5), 0x0050_0093); // addi x1, x0, 5
        assert_eq!(add(3, 1, 2), 0x0020_81B3); // add x3, x1, x2
        assert_eq!(lui(5, 0x12345), 0x1234_52B7); // lui x5, 0x12345
        assert_eq!(sw(2, 1, 8), 0x0020_A423); // sw x2, 8(x1)
        assert_eq!(lw(2, 1, 8), 0x0080_A103); // lw x2, 8(x1)
        assert_eq!(ecall(), 0x0000_0073);
        assert_eq!(mul(3, 1, 2), 0x0220_81B3);
    }

    #[test]
    fn branch_offset_encoding() {
        // beq x1, x2, +8
        let w = beq(1, 2, 8);
        assert_eq!(w & 0x7F, 0b1100011);
        // Negative offsets.
        let wneg = bne(1, 2, -4);
        assert_eq!(wneg >> 31, 1, "sign bit set for negative offsets");
    }

    #[test]
    fn li_covers_full_range() {
        for v in [
            0,
            1,
            -1,
            2047,
            -2048,
            2048,
            0x1234_5678,
            -0x1234_5678,
            i32::MIN,
            i32::MAX,
        ] {
            let seq = li(T0, v);
            assert!(seq.len() <= 2, "li too long for {v}");
        }
    }

    #[test]
    fn assembler_backward_branch() {
        let mut a = Assembler::new();
        a.emit_all(li(A0, 3));
        let top = a.label();
        a.emit(addi(A0, A0, -1));
        a.branch_to(top, |off| bne(A0, ZERO, off));
        a.emit(ecall());
        let prog = a.finish();
        assert_eq!(prog.len(), 4);
        // The branch targets -4 bytes (one instruction back).
        assert_eq!(prog[2], bne(A0, ZERO, -4));
    }

    #[test]
    fn assembler_forward_branch() {
        let mut a = Assembler::new();
        let skip = a.forward_label();
        a.branch_to(skip, |off| beq(ZERO, ZERO, off));
        a.emit(nop());
        a.emit(nop());
        a.place(skip);
        a.emit(ecall());
        let prog = a.finish();
        assert_eq!(prog[0], beq(ZERO, ZERO, 12));
    }

    #[test]
    #[should_panic(expected = "unplaced forward label")]
    fn unplaced_label_panics() {
        let mut a = Assembler::new();
        let l = a.forward_label();
        a.branch_to(l, |off| beq(ZERO, ZERO, off));
        let _ = a.finish();
    }

    #[test]
    #[should_panic(expected = "I-immediate out of range")]
    fn oversized_immediate_panics() {
        let _ = addi(1, 0, 5000);
    }
}
