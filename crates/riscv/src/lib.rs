//! # craft-riscv — RV32IM instruction-set simulator
//!
//! The prototype SoC of the paper (Fig. 5) uses a Rocket RISC-V core
//! as the global controller that "initiates execution by configuring
//! control registers in PE and global memory and orchestrating data
//! transfer across the memory hierarchy". This crate provides that
//! controller substrate: a full RV32IM interpreter ([`Cpu`]) over a
//! pluggable [`Bus`] (so the SoC can hang MMIO off it), plus
//! instruction [`encode`]rs and a label-aware [`encode::Assembler`]
//! for writing controller programs in tests and workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cpu;
pub mod encode;

/// Convenience alias so call sites can `use craft_riscv::asm`.
pub use encode as asm;

pub use cpu::{AccessSize, Bus, Cpu, FlatMemory, StepOutcome};
