//! Additional ISA coverage: immediates, set-less-than family, halfword
//! sign handling, AUIPC-relative addressing and call/return chains.

use craft_riscv::asm::{self as rv, Assembler, A0, A1, A2, A3, RA, T0, T1, ZERO};
use craft_riscv::{Cpu, FlatMemory, StepOutcome};

fn run(words: Vec<u32>, max: u64) -> (Cpu, FlatMemory) {
    let mut mem = FlatMemory::new(64 * 1024);
    mem.load_words(0, &words);
    let mut cpu = Cpu::new();
    assert_eq!(
        cpu.run(&mut mem, max),
        Some(StepOutcome::Ecall),
        "must halt"
    );
    (cpu, mem)
}

#[test]
fn slt_family() {
    let mut a = Assembler::new();
    a.emit_all(rv::li(T0, -5));
    a.emit_all(rv::li(T1, 3));
    a.emit(rv::slt(A0, T0, T1)); // -5 < 3 signed -> 1
    a.emit(rv::sltu(A1, T0, T1)); // 0xFFFF_FFFB < 3 unsigned -> 0
    a.emit(rv::slti(A2, T1, -1)); // 3 < -1 -> 0
    a.emit(rv::sltiu(A3, T1, 100)); // 3 < 100 -> 1
    a.emit(rv::ecall());
    let (cpu, _) = run(a.finish(), 50);
    assert_eq!(cpu.reg(A0), 1);
    assert_eq!(cpu.reg(A1), 0);
    assert_eq!(cpu.reg(A2), 0);
    assert_eq!(cpu.reg(A3), 1);
}

#[test]
fn halfword_sign_extension() {
    let mut a = Assembler::new();
    a.emit_all(rv::li(T0, 0x1000));
    a.emit_all(rv::li(T1, 0x8001));
    a.emit(rv::sh(T1, T0, 0));
    a.emit(rv::lh(A0, T0, 0)); // sign-extends
    a.emit(rv::lhu(A1, T0, 0)); // zero-extends
    a.emit(rv::ecall());
    let (cpu, _) = run(a.finish(), 50);
    assert_eq!(cpu.reg(A0), 0xFFFF_8001);
    assert_eq!(cpu.reg(A1), 0x8001);
}

#[test]
fn auipc_computes_pc_relative() {
    let mut a = Assembler::new();
    a.emit(rv::nop());
    a.emit(rv::auipc(A0, 1)); // pc (4) + 0x1000
    a.emit(rv::ecall());
    let (cpu, _) = run(a.finish(), 10);
    assert_eq!(cpu.reg(A0), 4 + 0x1000);
}

#[test]
fn nested_call_chain() {
    // main -> f -> g, each adding to a0.
    let mut a = Assembler::new();
    let f = a.forward_label();
    let g = a.forward_label();
    a.jal_to(RA, f);
    a.emit(rv::ecall()); // back in main
    a.place(f);
    a.emit(rv::addi(A0, A0, 10));
    a.emit(rv::addi(T0, RA, 0)); // save ra
    a.jal_to(RA, g);
    a.emit(rv::addi(RA, T0, 0));
    a.emit(rv::jalr(ZERO, RA, 0));
    a.place(g);
    a.emit(rv::addi(A0, A0, 100));
    a.emit(rv::jalr(ZERO, RA, 0));
    let (cpu, _) = run(a.finish(), 100);
    assert_eq!(cpu.reg(A0), 110);
}

#[test]
fn branch_all_variants_taken_and_not() {
    // Accumulate a bitmask of taken/fall-through outcomes.
    let mut a = Assembler::new();
    a.emit_all(rv::li(T0, 5));
    a.emit_all(rv::li(T1, -3));
    a.emit(rv::addi(A0, ZERO, 0));
    // bltu: 5 < 0xFFFF_FFFD unsigned -> taken.
    let l1 = a.forward_label();
    a.branch_to(l1, |off| rv::bltu(T0, T1, off));
    a.emit(rv::ecall()); // must be skipped
    a.place(l1);
    a.emit(rv::ori(A0, A0, 1));
    // bge signed: 5 >= -3 -> taken.
    let l2 = a.forward_label();
    a.branch_to(l2, |off| rv::bge(T0, T1, off));
    a.emit(rv::ecall());
    a.place(l2);
    a.emit(rv::ori(A0, A0, 2));
    // beq not taken: falls through and sets bit 2.
    let l3 = a.forward_label();
    a.branch_to(l3, |off| rv::beq(T0, T1, off));
    a.emit(rv::ori(A0, A0, 4));
    a.place(l3);
    a.emit(rv::ecall());
    let (cpu, _) = run(a.finish(), 50);
    assert_eq!(cpu.reg(A0), 0b111);
}
