//! Property tests across the parameterized float formats (FP32, FP16,
//! BF16): algebraic invariants, round-trip accuracy bounds and special
//! value handling — the MatchLib float functions under stress.

use craft_matchlib::float::{add, from_f64, mul, mul_add, to_f64, FloatFormat};
use proptest::prelude::*;

const FORMATS: [FloatFormat; 3] = [FloatFormat::FP32, FloatFormat::FP16, FloatFormat::BF16];

fn ulp_bound(fmt: FloatFormat) -> f64 {
    // One unit in the last place, relative: 2^-man_bits.
    (-(f64::from(fmt.man_bits))).exp2()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Addition and multiplication are commutative in every format.
    #[test]
    fn add_and_mul_commute(a in -1e6f64..1e6, b in -1e6f64..1e6) {
        for fmt in FORMATS {
            let ea = from_f64(fmt, a);
            let eb = from_f64(fmt, b);
            prop_assert_eq!(add(fmt, ea, eb), add(fmt, eb, ea), "{} add", fmt);
            prop_assert_eq!(mul(fmt, ea, eb), mul(fmt, eb, ea), "{} mul", fmt);
        }
    }

    /// x * 1 == x and x + 0 == x (identity elements survive encoding).
    #[test]
    fn identities(a in -1e6f64..1e6) {
        for fmt in FORMATS {
            let ea = from_f64(fmt, a);
            let one = from_f64(fmt, 1.0);
            let zero = from_f64(fmt, 0.0);
            prop_assert_eq!(mul(fmt, ea, one), ea, "{} x*1", fmt);
            prop_assert_eq!(add(fmt, ea, zero), ea, "{} x+0", fmt);
        }
    }

    /// Encoding round-trip error is within one ULP of the format for
    /// values in the format's normal range.
    #[test]
    fn round_trip_within_one_ulp(v in 1e-3f64..1e3) {
        for fmt in FORMATS {
            let rt = to_f64(fmt, from_f64(fmt, v));
            let rel = ((rt - v) / v).abs();
            prop_assert!(rel <= ulp_bound(fmt),
                "{}: {} -> {} (rel {:.3e} > ulp {:.3e})", fmt, v, rt, rel, ulp_bound(fmt));
        }
    }

    /// mul_add(a, b, c) equals mul-then-add by construction (two-op
    /// datapath semantics) in every format.
    #[test]
    fn mul_add_composes(a in -1e3f64..1e3, b in -1e3f64..1e3, c in -1e3f64..1e3) {
        for fmt in FORMATS {
            let (ea, eb, ec) = (from_f64(fmt, a), from_f64(fmt, b), from_f64(fmt, c));
            prop_assert_eq!(mul_add(fmt, ea, eb, ec), add(fmt, mul(fmt, ea, eb), ec));
        }
    }

    /// Negation symmetry: (-a) * b == -(a * b) bit-exactly.
    #[test]
    fn sign_symmetry(a in 0.001f64..1e4, b in 0.001f64..1e4) {
        for fmt in FORMATS {
            let pa = from_f64(fmt, a);
            let na = from_f64(fmt, -a);
            let eb = from_f64(fmt, b);
            let pos = mul(fmt, pa, eb);
            let neg = mul(fmt, na, eb);
            // Flip the sign bit of pos and compare.
            let sign_bit = 1u64 << (fmt.exp_bits + fmt.man_bits);
            prop_assert_eq!(neg, pos ^ sign_bit, "{}", fmt);
        }
    }
}

#[test]
fn special_values_every_format() {
    for fmt in FORMATS {
        let inf = fmt.inf_bits(false);
        let ninf = fmt.inf_bits(true);
        let nan = fmt.nan_bits();
        let one = from_f64(fmt, 1.0);
        // inf + -inf = NaN; NaN propagates; inf * 1 = inf.
        assert_eq!(add(fmt, inf, ninf), nan, "{fmt}");
        assert_eq!(mul(fmt, nan, one), nan, "{fmt}");
        assert_eq!(mul(fmt, inf, one), inf, "{fmt}");
        assert!(to_f64(fmt, inf).is_infinite());
        assert!(to_f64(fmt, nan).is_nan());
    }
}

#[test]
fn format_range_differences() {
    // 70000 overflows FP16 (max ~65504) but fits BF16 and FP32.
    let v = 70_000.0;
    assert!(to_f64(FloatFormat::FP16, from_f64(FloatFormat::FP16, v)).is_infinite());
    assert!(to_f64(FloatFormat::BF16, from_f64(FloatFormat::BF16, v)).is_finite());
    assert!(to_f64(FloatFormat::FP32, from_f64(FloatFormat::FP32, v)).is_finite());
    // BF16's short mantissa costs precision FP16 keeps.
    let p = 1.001;
    let bf = to_f64(FloatFormat::BF16, from_f64(FloatFormat::BF16, p));
    let fp = to_f64(FloatFormat::FP16, from_f64(FloatFormat::FP16, p));
    assert!((fp - p).abs() < (bf - p).abs());
}
