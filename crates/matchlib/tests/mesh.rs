//! Integration test: a 2x2 mesh of wormhole-VC routers carrying
//! all-to-all traffic — the NoC substrate of the prototype SoC,
//! exercised standalone.

use craft_connections::{channel, ChannelKind, In, Out};
use craft_matchlib::router::{make_packet, port, xy_route, NocFlit, WhvcConfig, WhvcRouter};
use craft_sim::{ClockId, ClockSpec, Picoseconds, Simulator};

const W: u16 = 2;
const N: usize = 4;

struct Mesh {
    sim: Simulator,
    clk: ClockId,
    inject: Vec<Out<NocFlit>>,
    drain: Vec<In<NocFlit>>,
}

fn build_mesh() -> Mesh {
    let mut sim = Simulator::new();
    let clk = sim.add_clock(ClockSpec::new("c", Picoseconds::new(909)));
    let kind = ChannelKind::Buffer(4);
    let mut rin: Vec<Vec<Option<In<NocFlit>>>> = (0..N)
        .map(|_| (0..port::COUNT).map(|_| None).collect())
        .collect();
    let mut rout: Vec<Vec<Option<Out<NocFlit>>>> = (0..N)
        .map(|_| (0..port::COUNT).map(|_| None).collect())
        .collect();

    let link = |sim: &mut Simulator,
                rin: &mut Vec<Vec<Option<In<NocFlit>>>>,
                rout: &mut Vec<Vec<Option<Out<NocFlit>>>>,
                a: usize,
                pa: usize,
                b: usize,
                pb: usize| {
        let (tx, rx, h) = channel::<NocFlit>(format!("l{a}.{pa}"), kind);
        sim.add_sequential(clk, h.sequential());
        rout[a][pa] = Some(tx);
        rin[b][pb] = Some(rx);
    };

    for n in 0..N {
        let (x, y) = (n % W as usize, n / W as usize);
        if x + 1 < W as usize {
            link(
                &mut sim,
                &mut rin,
                &mut rout,
                n,
                port::EAST,
                n + 1,
                port::WEST,
            );
            link(
                &mut sim,
                &mut rin,
                &mut rout,
                n + 1,
                port::WEST,
                n,
                port::EAST,
            );
        }
        if y + 1 < W as usize {
            link(
                &mut sim,
                &mut rin,
                &mut rout,
                n,
                port::SOUTH,
                n + W as usize,
                port::NORTH,
            );
            link(
                &mut sim,
                &mut rin,
                &mut rout,
                n + W as usize,
                port::NORTH,
                n,
                port::SOUTH,
            );
        }
    }

    let mut inject = Vec::new();
    let mut drain = Vec::new();
    for n in 0..N {
        let (tx, rx, h) = channel::<NocFlit>(format!("inj{n}"), kind);
        sim.add_sequential(clk, h.sequential());
        inject.push(tx);
        rin[n][port::LOCAL] = Some(rx);
        let (tx2, rx2, h2) = channel::<NocFlit>(format!("ej{n}"), kind);
        sim.add_sequential(clk, h2.sequential());
        rout[n][port::LOCAL] = Some(tx2);
        drain.push(rx2);
    }
    // Stub the boundary ports.
    for n in 0..N {
        for p in 0..port::COUNT {
            if rin[n][p].is_none() {
                let (_tx, rx, h) = channel::<NocFlit>(format!("si{n}.{p}"), kind);
                sim.add_sequential(clk, h.sequential());
                rin[n][p] = Some(rx);
            }
            if rout[n][p].is_none() {
                let (tx, _rx, h) = channel::<NocFlit>(format!("so{n}.{p}"), kind);
                sim.add_sequential(clk, h.sequential());
                rout[n][p] = Some(tx);
            }
        }
    }
    for n in 0..N as u16 {
        let ins: Vec<In<NocFlit>> = rin[n as usize]
            .iter_mut()
            .map(|o| o.take().expect("wired"))
            .collect();
        let outs: Vec<Out<NocFlit>> = rout[n as usize]
            .iter_mut()
            .map(|o| o.take().expect("wired"))
            .collect();
        sim.add_component(
            clk,
            WhvcRouter::new(
                format!("r{n}"),
                ins,
                outs,
                WhvcConfig::default(),
                move |dst| xy_route(n, dst, W),
            ),
        );
    }
    Mesh {
        sim,
        clk,
        inject,
        drain,
    }
}

/// Every node sends a multi-flit packet to every other node; all
/// packets arrive intact, in order per (src, dst) pair.
#[test]
fn all_to_all_traffic_delivered() {
    let mut mesh = build_mesh();
    // Packet payload encodes (src, dst, index) so corruption is
    // detectable.
    let mut pending: Vec<Vec<NocFlit>> = Vec::new();
    for src in 0..N as u16 {
        for dst in 0..N as u16 {
            if src == dst {
                continue;
            }
            let words: Vec<u64> = (0..3)
                .map(|i| u64::from(src) << 32 | u64::from(dst) << 16 | i)
                .collect();
            pending.push(make_packet(dst, src, (src % 2) as u8, &words));
        }
    }
    let mut cursors = vec![0usize; pending.len()];
    let mut received: Vec<Vec<u64>> = (0..N).map(|_| Vec::new()).collect();
    for _ in 0..2_000 {
        for (pkt, cur) in pending.iter().zip(cursors.iter_mut()) {
            if *cur < pkt.len() {
                let src = pkt[0].src as usize;
                if mesh.inject[src].push_nb(pkt[*cur]).is_ok() {
                    *cur += 1;
                }
            }
        }
        mesh.sim.run_cycles(mesh.clk, 1);
        for (n, port) in mesh.drain.iter_mut().enumerate() {
            while let Some(f) = port.pop_nb() {
                assert_eq!(f.dst as usize, n, "misrouted flit");
                received[n].push(f.data);
            }
        }
        if received.iter().map(Vec::len).sum::<usize>() == pending.len() * 3 {
            break;
        }
    }
    let total: usize = received.iter().map(Vec::len).sum();
    assert_eq!(total, pending.len() * 3, "flits lost in the mesh");
    // Per (src,dst) stream, indices must arrive in order.
    for (n, words) in received.iter().enumerate() {
        let mut last_idx: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for &w in words {
            let src = w >> 32;
            let dst = (w >> 16) & 0xFFFF;
            let idx = w & 0xFFFF;
            assert_eq!(dst as usize, n);
            let prev = last_idx.entry(src).or_insert(0);
            assert!(idx >= *prev, "stream {src}->{n} reordered");
            *prev = idx;
        }
    }
}

/// Sustained hot-spot traffic: all nodes flood node 3; throughput at
/// the hot spot approaches one flit per cycle and nothing is lost.
#[test]
fn hot_spot_saturates_without_loss() {
    let mut mesh = build_mesh();
    let senders = [0u16, 1, 2];
    let mut sent = [0u32; 3];
    let mut got = 0u32;
    let per_sender = 50;
    for _ in 0..3_000 {
        for (i, &src) in senders.iter().enumerate() {
            if sent[i] < per_sender {
                let f = make_packet(3, src, 0, &[u64::from(sent[i])])[0];
                if mesh.inject[src as usize].push_nb(f).is_ok() {
                    sent[i] += 1;
                }
            }
        }
        mesh.sim.run_cycles(mesh.clk, 1);
        while mesh.drain[3].pop_nb().is_some() {
            got += 1;
        }
        if got == 3 * per_sender {
            break;
        }
    }
    assert_eq!(got, 3 * per_sender, "hot-spot traffic lost");
    // 150 single-flit packets through one ejection port: lower bound
    // on cycles is 150; we should be within ~2.5x of it.
    assert!(
        mesh.sim.cycles(mesh.clk) < 380,
        "hot-spot throughput collapsed: {} cycles",
        mesh.sim.cycles(mesh.clk)
    );
}
