//! Floating-point arithmetic functions (Table 2, C++ functions:
//! mul, add, mul-add).
//!
//! A parameterized soft-float over arbitrary exponent/mantissa widths
//! (FP32, FP16, BF16 presets), matching the style of hardware ML
//! datapaths: round-to-nearest-even, **flush-to-zero** subnormal
//! handling (inputs and outputs with biased exponent 0 are treated as
//! zero), and full NaN/∞ propagation. `mul_add` is a two-op
//! (mul-then-add) datapath with two roundings.
//!
//! For the FP32 format the results are bit-exact against native `f32`
//! whenever no subnormal is involved — see the property tests.

use std::fmt;

/// A floating-point format: 1 sign bit + `exp_bits` + `man_bits`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FloatFormat {
    /// Exponent field width in bits (2..=15).
    pub exp_bits: u32,
    /// Mantissa (fraction) field width in bits (1..=52).
    pub man_bits: u32,
}

impl FloatFormat {
    /// IEEE-754 binary32.
    pub const FP32: FloatFormat = FloatFormat {
        exp_bits: 8,
        man_bits: 23,
    };
    /// IEEE-754 binary16.
    pub const FP16: FloatFormat = FloatFormat {
        exp_bits: 5,
        man_bits: 10,
    };
    /// bfloat16.
    pub const BF16: FloatFormat = FloatFormat {
        exp_bits: 8,
        man_bits: 7,
    };

    /// Validates the widths.
    ///
    /// # Panics
    /// Panics when outside 2..=15 exponent or 1..=52 mantissa bits.
    pub fn validate(self) {
        assert!(
            (2..=15).contains(&self.exp_bits),
            "exponent width must be 2..=15"
        );
        assert!(
            (1..=52).contains(&self.man_bits),
            "mantissa width must be 1..=52"
        );
    }

    /// Total storage bits (sign + exponent + mantissa).
    pub fn total_bits(self) -> u32 {
        1 + self.exp_bits + self.man_bits
    }

    /// Exponent bias.
    pub fn bias(self) -> i32 {
        (1 << (self.exp_bits - 1)) - 1
    }

    fn exp_max(self) -> u64 {
        (1 << self.exp_bits) - 1
    }

    fn man_mask(self) -> u64 {
        (1 << self.man_bits) - 1
    }

    /// Canonical quiet NaN bit pattern.
    pub fn nan_bits(self) -> u64 {
        (self.exp_max() << self.man_bits) | (1 << (self.man_bits - 1))
    }

    /// Infinity bit pattern with the given sign.
    pub fn inf_bits(self, negative: bool) -> u64 {
        (u64::from(negative) << (self.exp_bits + self.man_bits)) | (self.exp_max() << self.man_bits)
    }
}

/// Class of an unpacked operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    /// Zero (true zeros and flushed subnormals).
    Zero {
        sign: bool,
    },
    Inf {
        sign: bool,
    },
    Nan,
    Normal(Unpacked),
}

/// A normal value: mantissa carries the hidden bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Unpacked {
    sign: bool,
    /// Unbiased exponent.
    exp: i32,
    /// `man_bits + 1` significant bits (hidden bit set).
    man: u64,
}

fn unpack(fmt: FloatFormat, bits: u64) -> Class {
    let sign = (bits >> (fmt.exp_bits + fmt.man_bits)) & 1 == 1;
    let exp_raw = (bits >> fmt.man_bits) & fmt.exp_max();
    let man_raw = bits & fmt.man_mask();
    if exp_raw == 0 {
        // Flush-to-zero: subnormals (man != 0) collapse to signed zero.
        Class::Zero { sign }
    } else if exp_raw == fmt.exp_max() {
        if man_raw == 0 {
            Class::Inf { sign }
        } else {
            Class::Nan
        }
    } else {
        Class::Normal(Unpacked {
            sign,
            exp: exp_raw as i32 - fmt.bias(),
            man: man_raw | (1 << fmt.man_bits),
        })
    }
}

/// Packs a sign/exponent/rounded-mantissa triple, flushing underflow to
/// zero and saturating overflow to infinity. `man` must already be a
/// normalized `man_bits + 1`-bit value (hidden bit set) or zero.
fn pack(fmt: FloatFormat, sign: bool, exp: i32, man: u64) -> u64 {
    if man == 0 {
        return u64::from(sign) << (fmt.exp_bits + fmt.man_bits);
    }
    debug_assert_eq!(man >> fmt.man_bits, 1, "mantissa not normalized");
    let biased = exp + fmt.bias();
    if biased >= fmt.exp_max() as i32 {
        return fmt.inf_bits(sign);
    }
    if biased <= 0 {
        // Flush-to-zero on underflow.
        return u64::from(sign) << (fmt.exp_bits + fmt.man_bits);
    }
    (u64::from(sign) << (fmt.exp_bits + fmt.man_bits))
        | ((biased as u64) << fmt.man_bits)
        | (man & fmt.man_mask())
}

/// Rounds a value with `extra` low bits using round-to-nearest-even.
/// Returns (rounded mantissa, exponent increment).
fn round_rne(man_ext: u128, extra: u32, man_bits: u32) -> (u64, i32) {
    if extra == 0 {
        return (man_ext as u64, 0);
    }
    let keep = (man_ext >> extra) as u64;
    let rem = man_ext & ((1u128 << extra) - 1);
    let half = 1u128 << (extra - 1);
    let round_up = rem > half || (rem == half && keep & 1 == 1);
    let mut rounded = keep + u64::from(round_up);
    let mut exp_inc = 0;
    if rounded >> (man_bits + 1) != 0 {
        rounded >>= 1;
        exp_inc = 1;
    }
    (rounded, exp_inc)
}

/// Floating-point multiply on raw bit patterns of format `fmt`.
///
/// ```
/// use craft_matchlib::float::{mul, FloatFormat};
/// let a = 2.5f32.to_bits() as u64;
/// let b = (-4.0f32).to_bits() as u64;
/// let p = mul(FloatFormat::FP32, a, b);
/// assert_eq!(f32::from_bits(p as u32), -10.0);
/// ```
pub fn mul(fmt: FloatFormat, a: u64, b: u64) -> u64 {
    fmt.validate();
    match (unpack(fmt, a), unpack(fmt, b)) {
        (Class::Nan, _) | (_, Class::Nan) => fmt.nan_bits(),
        (Class::Inf { sign: sa }, Class::Inf { sign: sb }) => fmt.inf_bits(sa ^ sb),
        (Class::Inf { .. }, Class::Zero { .. }) | (Class::Zero { .. }, Class::Inf { .. }) => {
            fmt.nan_bits()
        }
        (Class::Inf { sign: sa }, Class::Normal(n)) => fmt.inf_bits(sa ^ n.sign),
        (Class::Normal(n), Class::Inf { sign: sb }) => fmt.inf_bits(n.sign ^ sb),
        (Class::Zero { sign: sa }, Class::Zero { sign: sb }) => pack(fmt, sa ^ sb, 0, 0),
        (Class::Zero { sign: sa }, Class::Normal(n)) => pack(fmt, sa ^ n.sign, 0, 0),
        (Class::Normal(n), Class::Zero { sign: sb }) => pack(fmt, n.sign ^ sb, 0, 0),
        (Class::Normal(x), Class::Normal(y)) => {
            let sign = x.sign ^ y.sign;
            let prod = u128::from(x.man) * u128::from(y.man); // 2m+1 or 2m+2 bits
            let m = fmt.man_bits;
            // prod in [2^(2m), 2^(2m+2)).
            let (shift, exp_adj) = if prod >> (2 * m + 1) != 0 {
                (m + 1, 1)
            } else {
                (m, 0)
            };
            let exp = x.exp + y.exp + exp_adj;
            let (man, inc) = round_rne(prod, shift, m);
            pack(fmt, sign, exp + inc, man)
        }
    }
}

/// Floating-point add on raw bit patterns of format `fmt`.
///
/// ```
/// use craft_matchlib::float::{add, FloatFormat};
/// let a = 1.5f32.to_bits() as u64;
/// let b = 2.25f32.to_bits() as u64;
/// let s = add(FloatFormat::FP32, a, b);
/// assert_eq!(f32::from_bits(s as u32), 3.75);
/// ```
pub fn add(fmt: FloatFormat, a: u64, b: u64) -> u64 {
    fmt.validate();
    match (unpack(fmt, a), unpack(fmt, b)) {
        (Class::Nan, _) | (_, Class::Nan) => fmt.nan_bits(),
        (Class::Inf { sign: sa }, Class::Inf { sign: sb }) => {
            if sa == sb {
                fmt.inf_bits(sa)
            } else {
                fmt.nan_bits()
            }
        }
        (Class::Inf { sign }, _) | (_, Class::Inf { sign }) => fmt.inf_bits(sign),
        (Class::Zero { sign: sa }, Class::Zero { sign: sb }) => pack(fmt, sa && sb, 0, 0),
        (Class::Zero { .. }, Class::Normal(_)) => {
            // b unchanged (re-pack to normalize any flushed input).
            let Class::Normal(n) = unpack(fmt, b) else {
                unreachable!()
            };
            pack(fmt, n.sign, n.exp, n.man)
        }
        (Class::Normal(_), Class::Zero { .. }) => {
            let Class::Normal(n) = unpack(fmt, a) else {
                unreachable!()
            };
            pack(fmt, n.sign, n.exp, n.man)
        }
        (Class::Normal(x), Class::Normal(y)) => add_normals(fmt, x, y),
    }
}

const GRS: u32 = 3; // guard, round, sticky extension bits

fn add_normals(fmt: FloatFormat, x: Unpacked, y: Unpacked) -> u64 {
    // Order so `big` has the larger magnitude.
    let (big, small) = if (x.exp, x.man) >= (y.exp, y.man) {
        (x, y)
    } else {
        (y, x)
    };
    let m = fmt.man_bits;
    let diff = (big.exp - small.exp) as u32;

    let big_ext = u128::from(big.man) << GRS;
    // Align the small operand, collapsing shifted-out bits into sticky.
    let small_full = u128::from(small.man) << GRS;
    let small_ext = if diff > m + 1 + GRS {
        // Entirely below the sticky bit but still nonzero.
        1
    } else {
        let shifted = small_full >> diff;
        let lost = small_full & ((1u128 << diff) - 1);
        shifted | u128::from(lost != 0)
    };

    let (sign, mut sum) = if big.sign == small.sign {
        (big.sign, big_ext + small_ext)
    } else {
        (big.sign, big_ext - small_ext)
    };

    if sum == 0 {
        // Exact cancellation: +0 under round-to-nearest.
        return pack(fmt, false, 0, 0);
    }

    // Normalize: top bit must land at position m + GRS.
    let top = m + GRS;
    let mut exp = big.exp;
    let msb = 127 - sum.leading_zeros();
    if msb > top {
        let sh = msb - top;
        let lost = sum & ((1u128 << sh) - 1);
        sum = (sum >> sh) | u128::from(lost != 0);
        exp += sh as i32;
    } else if msb < top {
        let sh = top - msb;
        sum <<= sh;
        exp -= sh as i32;
    }

    let (man, inc) = round_rne(sum, GRS, m);
    pack(fmt, sign, exp + inc, man)
}

/// Two-op multiply-add: `round(round(a * b) + c)`.
///
/// ```
/// use craft_matchlib::float::{mul_add, FloatFormat};
/// let bits = |v: f32| v.to_bits() as u64;
/// let r = mul_add(FloatFormat::FP32, bits(3.0), bits(4.0), bits(0.5));
/// assert_eq!(f32::from_bits(r as u32), 12.5);
/// ```
pub fn mul_add(fmt: FloatFormat, a: u64, b: u64, c: u64) -> u64 {
    add(fmt, mul(fmt, a, b), c)
}

/// Converts an `f64` into format `fmt` with round-to-nearest-even
/// (subnormal results flush to zero).
pub fn from_f64(fmt: FloatFormat, v: f64) -> u64 {
    fmt.validate();
    if v.is_nan() {
        return fmt.nan_bits();
    }
    let bits = v.to_bits();
    let sign = bits >> 63 == 1;
    if v.is_infinite() {
        return fmt.inf_bits(sign);
    }
    if v == 0.0 {
        return pack(fmt, sign, 0, 0);
    }
    let exp_raw = ((bits >> 52) & 0x7FF) as i32;
    let man_raw = bits & ((1u64 << 52) - 1);
    if exp_raw == 0 {
        // f64 subnormal: far below any supported format's range.
        return pack(fmt, sign, 0, 0);
    }
    let exp = exp_raw - 1023;
    let man53 = man_raw | (1 << 52);
    let (man, inc) = round_rne(u128::from(man53), 52 - fmt.man_bits, fmt.man_bits);
    pack(fmt, sign, exp + inc, man)
}

/// Converts a value of format `fmt` to `f64` (exact: every supported
/// format fits in an `f64`).
pub fn to_f64(fmt: FloatFormat, bits: u64) -> f64 {
    fmt.validate();
    match unpack(fmt, bits) {
        Class::Nan => f64::NAN,
        Class::Inf { sign } => {
            if sign {
                f64::NEG_INFINITY
            } else {
                f64::INFINITY
            }
        }
        Class::Zero { sign } => {
            if sign {
                -0.0
            } else {
                0.0
            }
        }
        Class::Normal(n) => {
            let frac = n.man as f64 / (1u64 << fmt.man_bits) as f64;
            let mag = frac * (n.exp as f64).exp2();
            if n.sign {
                -mag
            } else {
                mag
            }
        }
    }
}

impl fmt::Display for FloatFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}m{}", self.exp_bits, self.man_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const F: FloatFormat = FloatFormat::FP32;

    fn b(v: f32) -> u64 {
        u64::from(v.to_bits())
    }
    fn f(bits: u64) -> f32 {
        f32::from_bits(bits as u32)
    }

    #[test]
    fn mul_basic() {
        assert_eq!(f(mul(F, b(2.0), b(3.0))), 6.0);
        assert_eq!(f(mul(F, b(-2.5), b(4.0))), -10.0);
        assert_eq!(f(mul(F, b(0.0), b(5.0))), 0.0);
        assert!(f(mul(F, b(0.0), b(f32::INFINITY))).is_nan());
        assert_eq!(f(mul(F, b(1e30), b(1e30))), f32::INFINITY);
        assert_eq!(f(mul(F, b(1e-30), b(1e-30))), 0.0); // FTZ underflow
    }

    #[test]
    fn add_basic() {
        assert_eq!(f(add(F, b(1.5), b(2.25))), 3.75);
        assert_eq!(f(add(F, b(1.0), b(-1.0))), 0.0);
        assert_eq!(f(add(F, b(-3.0), b(1.0))), -2.0);
        assert!(f(add(F, b(f32::INFINITY), b(f32::NEG_INFINITY))).is_nan());
        assert_eq!(f(add(F, b(f32::INFINITY), b(1.0))), f32::INFINITY);
    }

    #[test]
    fn add_cancellation_and_alignment() {
        // Large exponent difference: small operand only contributes sticky.
        assert_eq!(f(add(F, b(1e20), b(1.0))), 1e20);
        // Catastrophic cancellation normalizes left.
        let x = 1.0000001f32;
        assert_eq!(f(add(F, b(x), b(-1.0))), x - 1.0);
    }

    #[test]
    fn nan_propagates() {
        assert!(f(mul(F, b(f32::NAN), b(1.0))).is_nan());
        assert!(f(add(F, b(f32::NAN), b(1.0))).is_nan());
        assert!(f(mul_add(F, b(1.0), b(f32::NAN), b(1.0))).is_nan());
    }

    #[test]
    fn mul_add_two_roundings() {
        assert_eq!(f(mul_add(F, b(3.0), b(4.0), b(5.0))), 17.0);
        // Matches separately rounded f32 ops, not fused fma.
        let (x, y, z) = (1.0000001f32, 1.0000001f32, -1.0000002f32);
        assert_eq!(f(mul_add(F, b(x), b(y), b(z))), x * y + z);
    }

    #[test]
    fn fp16_and_bf16_round_trip() {
        for fmtv in [FloatFormat::FP16, FloatFormat::BF16] {
            for v in [0.0f64, 1.0, -2.5, 0.15625, 100.0] {
                let enc = from_f64(fmtv, v);
                let dec = to_f64(fmtv, enc);
                if v == 0.0 || v.abs() >= 1e-2 {
                    let rel = if v == 0.0 {
                        dec.abs()
                    } else {
                        ((dec - v) / v).abs()
                    };
                    assert!(rel < 1e-2, "{fmtv} {v} -> {dec}");
                }
            }
        }
    }

    #[test]
    fn fp16_overflow_saturates_to_inf() {
        let big = from_f64(FloatFormat::FP16, 1e10);
        assert!(to_f64(FloatFormat::FP16, big).is_infinite());
    }

    fn normal_f32() -> impl Strategy<Value = f32> {
        // Avoid subnormals (we flush) and NaN/inf inputs.
        prop::num::f32::NORMAL
    }

    proptest! {
        /// FP32 multiply is bit-exact vs native f32 when neither the
        /// inputs nor the result are subnormal.
        #[test]
        fn mul_matches_native(a in normal_f32(), bb in normal_f32()) {
            let expect = a * bb;
            prop_assume!(expect == 0.0 || expect.is_infinite() || expect.is_normal());
            let got = f(mul(F, b(a), b(bb)));
            if expect.is_nan() {
                prop_assert!(got.is_nan());
            } else if expect == 0.0 && !expect.is_normal() && a != 0.0 && bb != 0.0 {
                // native rounded to zero through subnormal range — skip
            } else if expect.is_normal() || expect.is_infinite() {
                prop_assert_eq!(got.to_bits(), expect.to_bits(),
                    "{} * {} = {} (native) vs {} (soft)", a, bb, expect, got);
            }
        }

        /// FP32 add is bit-exact vs native f32 away from subnormals.
        #[test]
        fn add_matches_native(a in normal_f32(), bb in normal_f32()) {
            let expect = a + bb;
            prop_assume!(expect == 0.0 || expect.is_infinite() || expect.is_normal());
            let got = f(add(F, b(a), b(bb)));
            if expect == 0.0 {
                prop_assert_eq!(got, 0.0, "{} + {}", a, bb);
            } else {
                prop_assert_eq!(got.to_bits(), expect.to_bits(),
                    "{} + {} = {} (native) vs {} (soft)", a, bb, expect, got);
            }
        }

        /// from_f64 into FP32 agrees with native f64->f32 conversion.
        #[test]
        fn from_f64_matches_native(v in prop::num::f64::NORMAL) {
            let native = v as f32;
            prop_assume!(native == 0.0 || native.is_infinite() || native.is_normal());
            let got = from_f64(F, v);
            if native == 0.0 && v != 0.0 {
                // flushed through subnormal range — both are zero-ish
                prop_assert_eq!(f(got), 0.0);
            } else {
                prop_assert_eq!(got as u32, native.to_bits());
            }
        }
    }
}
