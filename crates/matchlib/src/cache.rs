//! Set-associative cache (Table 2): "configurable linesize, capacity,
//! associativity".
//!
//! A write-back, write-allocate cache with true-LRU replacement. The
//! cache stores line data; misses follow a two-step protocol so the
//! caller (which owns the backing memory or memory port) controls all
//! data movement:
//!
//! 1. [`Cache::access`] returns [`CacheOutcome::Miss`] carrying the
//!    line base address to fetch and, if a dirty victim was evicted,
//!    its base address and data to write back.
//! 2. The caller fetches the line, calls [`Cache::fill`], and retries
//!    the access, which now hits.

use std::fmt;

/// Geometry and behaviour parameters of a [`Cache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Words per line (power of two).
    pub line_words: usize,
    /// Total capacity in words (power of two multiple of the line).
    pub capacity_words: usize,
    /// Ways per set.
    pub associativity: usize,
}

impl CacheConfig {
    /// Validates the geometry.
    ///
    /// # Panics
    /// Panics if any field is zero, `line_words` is not a power of two,
    /// or capacity is not divisible into `associativity` ways of whole
    /// lines.
    pub fn validate(self) {
        assert!(
            self.line_words.is_power_of_two(),
            "line must be a power of two"
        );
        assert!(self.associativity > 0, "associativity must be nonzero");
        let lines = self.capacity_words / self.line_words;
        assert!(
            lines > 0 && self.capacity_words.is_multiple_of(self.line_words),
            "capacity must be a whole number of lines"
        );
        assert!(
            lines.is_multiple_of(self.associativity),
            "lines must divide evenly into ways"
        );
        let sets = lines / self.associativity;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
    }

    fn sets(self) -> usize {
        self.capacity_words / self.line_words / self.associativity
    }
}

/// Result of one cache access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheOutcome<T> {
    /// The access completed.
    Hit {
        /// Data read (reads only; `None` for writes).
        data: Option<T>,
    },
    /// The line is absent; fetch `fill_base` and call
    /// [`Cache::fill`], then retry.
    Miss {
        /// Base word address of the line to fetch.
        fill_base: usize,
        /// Dirty victim evicted to make room: `(base_addr, line data)`.
        writeback: Option<(usize, Vec<T>)>,
    },
}

#[derive(Debug, Clone)]
struct Line<T> {
    tag: usize,
    dirty: bool,
    /// Monotonic counter value at last touch (true LRU).
    lru: u64,
    data: Vec<T>,
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines written back.
    pub writebacks: u64,
}

impl CacheStats {
    /// Hit ratio in 0..=1 (0 when no accesses).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Write-back set-associative cache with LRU replacement.
///
/// ```
/// use craft_matchlib::{Cache, CacheConfig, CacheOutcome};
/// let mut c: Cache<u32> = Cache::new(CacheConfig {
///     line_words: 4, capacity_words: 32, associativity: 2,
/// });
/// match c.access(5, None) {
///     CacheOutcome::Miss { fill_base, .. } => {
///         assert_eq!(fill_base, 4);
///         c.fill(4, vec![40, 41, 42, 43]);
///     }
///     _ => unreachable!("cold cache"),
/// }
/// assert_eq!(c.access(5, None), CacheOutcome::Hit { data: Some(41) });
/// ```
#[derive(Debug, Clone)]
pub struct Cache<T> {
    config: CacheConfig,
    sets: Vec<Vec<Option<Line<T>>>>,
    clock: u64,
    stats: CacheStats,
}

impl<T: Copy + Default> Cache<T> {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    /// Panics if `config` is invalid (see [`CacheConfig::validate`]).
    pub fn new(config: CacheConfig) -> Self {
        config.validate();
        Cache {
            config,
            sets: (0..config.sets())
                .map(|_| vec![None; config.associativity])
                .collect(),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn decompose(&self, addr: usize) -> (usize, usize, usize) {
        let offset = addr % self.config.line_words;
        let line_addr = addr / self.config.line_words;
        let set = line_addr % self.config.sets();
        let tag = line_addr / self.config.sets();
        (set, tag, offset)
    }

    fn line_base(&self, set: usize, tag: usize) -> usize {
        (tag * self.config.sets() + set) * self.config.line_words
    }

    /// Performs a read (`write == None`) or write (`write == Some(v)`)
    /// at word address `addr`.
    pub fn access(&mut self, addr: usize, write: Option<T>) -> CacheOutcome<T> {
        self.clock += 1;
        let (set, tag, offset) = self.decompose(addr);
        // Hit path.
        for way in self.sets[set].iter_mut().flatten() {
            if way.tag == tag {
                way.lru = self.clock;
                self.stats.hits += 1;
                return match write {
                    Some(v) => {
                        way.data[offset] = v;
                        way.dirty = true;
                        CacheOutcome::Hit { data: None }
                    }
                    None => CacheOutcome::Hit {
                        data: Some(way.data[offset]),
                    },
                };
            }
        }
        // Miss: select a victim (invalid way first, else LRU).
        self.stats.misses += 1;
        let victim_way = self.pick_victim(set);
        let writeback = match self.sets[set][victim_way].take() {
            Some(line) if line.dirty => {
                self.stats.writebacks += 1;
                Some((self.line_base(set, line.tag), line.data))
            }
            _ => None,
        };
        CacheOutcome::Miss {
            fill_base: self.line_base(set, tag),
            writeback,
        }
    }

    fn pick_victim(&self, set: usize) -> usize {
        if let Some(idx) = self.sets[set].iter().position(Option::is_none) {
            return idx;
        }
        self.sets[set]
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| w.as_ref().map(|l| l.lru).unwrap_or(0))
            .map(|(i, _)| i)
            .expect("set has ways")
    }

    /// Installs line data fetched after a miss. `base` must be the
    /// `fill_base` returned by the miss and `data` a full line.
    ///
    /// # Panics
    /// Panics if `base` is not line-aligned, `data` is not exactly one
    /// line, or no way is free (i.e. `fill` without a preceding miss).
    pub fn fill(&mut self, base: usize, data: Vec<T>) {
        assert_eq!(base % self.config.line_words, 0, "fill base not aligned");
        assert_eq!(data.len(), self.config.line_words, "fill must be one line");
        let (set, tag, _) = self.decompose(base);
        let way = self.sets[set]
            .iter()
            .position(Option::is_none)
            .expect("fill without free way — call access() first");
        self.clock += 1;
        self.sets[set][way] = Some(Line {
            tag,
            dirty: false,
            lru: self.clock,
            data,
        });
    }

    /// True if the line containing `addr` is resident.
    pub fn probe(&self, addr: usize) -> bool {
        let (set, tag, _) = self.decompose(addr);
        self.sets[set].iter().flatten().any(|line| line.tag == tag)
    }

    /// Flushes every dirty line, returning `(base, data)` pairs and
    /// marking them clean.
    pub fn flush_dirty(&mut self) -> Vec<(usize, Vec<T>)> {
        let mut out = Vec::new();
        let sets_n = self.sets.len();
        for set in 0..sets_n {
            for way in self.sets[set].iter_mut().flatten() {
                if way.dirty {
                    way.dirty = false;
                    self.stats.writebacks += 1;
                    out.push((
                        (way.tag * sets_n + set) * self.config.line_words,
                        way.data.clone(),
                    ));
                }
            }
        }
        out
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hits={} misses={} writebacks={} hit_rate={:.1}%",
            self.hits,
            self.misses,
            self.writebacks,
            self.hit_rate() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cfg(line: usize, cap: usize, ways: usize) -> CacheConfig {
        CacheConfig {
            line_words: line,
            capacity_words: cap,
            associativity: ways,
        }
    }

    /// Reference memory + cache pair that services misses immediately.
    struct Checked {
        cache: Cache<u64>,
        mem: Vec<u64>,
    }

    impl Checked {
        fn new(config: CacheConfig, mem_words: usize) -> Self {
            Checked {
                cache: Cache::new(config),
                mem: (0..mem_words as u64).map(|i| i * 3).collect(),
            }
        }

        fn read(&mut self, addr: usize) -> u64 {
            loop {
                match self.cache.access(addr, None) {
                    CacheOutcome::Hit { data } => return data.expect("read returns data"),
                    CacheOutcome::Miss {
                        fill_base,
                        writeback,
                    } => {
                        if let Some((base, line)) = writeback {
                            self.mem[base..base + line.len()].copy_from_slice(&line);
                        }
                        let line = self.mem[fill_base..fill_base + self.cache.config().line_words]
                            .to_vec();
                        self.cache.fill(fill_base, line);
                    }
                }
            }
        }

        fn write(&mut self, addr: usize, v: u64) {
            loop {
                match self.cache.access(addr, Some(v)) {
                    CacheOutcome::Hit { .. } => return,
                    CacheOutcome::Miss {
                        fill_base,
                        writeback,
                    } => {
                        if let Some((base, line)) = writeback {
                            self.mem[base..base + line.len()].copy_from_slice(&line);
                        }
                        let line = self.mem[fill_base..fill_base + self.cache.config().line_words]
                            .to_vec();
                        self.cache.fill(fill_base, line);
                    }
                }
            }
        }

        /// Ground truth: memory with all dirty lines flushed.
        fn coherent_mem(&mut self) -> Vec<u64> {
            let mut m = self.mem.clone();
            for (base, line) in self.cache.flush_dirty() {
                m[base..base + line.len()].copy_from_slice(&line);
            }
            m
        }
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Checked::new(cfg(4, 32, 2), 256);
        assert_eq!(c.read(10), 30);
        assert_eq!(c.cache.stats().misses, 1);
        assert_eq!(c.cache.stats().hits, 1); // the post-fill retry
        assert_eq!(c.read(11), 33); // same line
        assert_eq!(c.cache.stats().hits, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2-way, 1 set: capacity 2 lines of 4 words.
        let mut c = Checked::new(cfg(4, 8, 2), 256);
        c.read(0); // line 0
        c.read(4); // line 1
        c.read(0); // touch line 0 (now MRU)
        c.read(8); // line 2 evicts line 1 (LRU)
        assert!(c.cache.probe(0), "recently used line retained");
        assert!(!c.cache.probe(4), "LRU line evicted");
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut c = Checked::new(cfg(4, 8, 1), 256);
        c.write(0, 999); // dirty line 0 (1-way: set 0)
        c.read(8); // maps to set 0 in a 2-set direct-mapped cache
                   // Find where line 0 went: with 2 sets, addr 8 is set 0 too.
        assert_eq!(c.cache.stats().writebacks, 1);
        assert_eq!(c.mem[0], 999, "writeback landed in memory");
        assert_eq!(c.read(0), 999, "value survives round trip");
    }

    #[test]
    fn write_allocate_semantics() {
        let mut c = Checked::new(cfg(4, 32, 2), 256);
        c.write(20, 7);
        assert!(c.cache.probe(20), "write allocated the line");
        assert_eq!(c.read(20), 7);
        assert_eq!(c.read(21), 63, "rest of line fetched from memory");
    }

    #[test]
    fn flush_dirty_clears_dirty_state() {
        let mut c = Checked::new(cfg(4, 16, 2), 64);
        c.write(0, 1);
        c.write(5, 2);
        let flushed = c.cache.flush_dirty();
        assert_eq!(flushed.len(), 2);
        assert!(c.cache.flush_dirty().is_empty(), "second flush is empty");
    }

    #[test]
    #[should_panic(expected = "set count must be a power of two")]
    fn bad_geometry_panics() {
        let _: Cache<u8> = Cache::new(cfg(4, 48, 4)); // 3 sets
    }

    proptest! {
        /// The cache+memory system is functionally transparent: any
        /// access sequence leaves coherent memory equal to a flat-array
        /// model.
        #[test]
        fn transparency(ops in proptest::collection::vec((0usize..64, prop::option::of(any::<u64>())), 1..100)) {
            let mut c = Checked::new(cfg(4, 16, 2), 64);
            let mut model: Vec<u64> = (0..64u64).map(|i| i * 3).collect();
            for (addr, write) in ops {
                match write {
                    Some(v) => { c.write(addr, v); model[addr] = v; }
                    None => { prop_assert_eq!(c.read(addr), model[addr]); }
                }
            }
            prop_assert_eq!(c.coherent_mem(), model);
        }

        /// Hit rate is 100% after the first touch when the working set
        /// fits in the cache.
        #[test]
        fn small_working_set_all_hits(rounds in 2usize..10) {
            let mut c = Checked::new(cfg(4, 32, 2), 64);
            for _ in 0..rounds {
                for addr in 0..16 { let _ = c.read(addr); }
            }
            let s = c.cache.stats();
            // 4 cold misses (16 words / 4-word lines); every retry and
            // every other access hits.
            prop_assert_eq!(s.misses, 4);
            prop_assert_eq!(s.hits, (rounds * 16) as u64);
        }
    }
}
