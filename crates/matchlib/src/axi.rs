//! AXI components (Table 2): "master/slave interfaces & bridges for
//! AXI interconnect".
//!
//! A five-channel AXI-style burst protocol (AW, W, B, AR, R) carried
//! over LI channels — exactly the layering the paper advocates: AXI is
//! itself a latency-insensitive protocol, so each channel is a
//! Connections channel and any buffering/retiming may be inserted
//! without functional change.
//!
//! Addresses are **word** (64-bit) granular. Provided components:
//! [`AxiMemorySlave`] (memory-backed slave), [`AxiMaster`] (queue-driven
//! master), and [`AxiBus`] (1-master/N-slave address-decoding bridge).

use craft_connections::{In, Out};
use craft_sim::{Component, TickCtx};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Address-channel command (AW and AR beats).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AxiAddrCmd {
    /// Transaction id, echoed in responses.
    pub id: u8,
    /// Word address of the first beat.
    pub addr: u64,
    /// Burst beats minus one (AXI encoding: 0 = 1 beat).
    pub len: u8,
}

/// Write-data beat (W).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AxiWriteBeat {
    /// Data word.
    pub data: u64,
    /// Final beat of the burst.
    pub last: bool,
}

/// Write response (B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AxiWriteResp {
    /// Transaction id.
    pub id: u8,
    /// OKAY (true) or SLVERR (false).
    pub okay: bool,
}

/// Read-data beat (R).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AxiReadBeat {
    /// Transaction id.
    pub id: u8,
    /// Data word.
    pub data: u64,
    /// Final beat of the burst.
    pub last: bool,
    /// OKAY (true) or SLVERR (false).
    pub okay: bool,
}

/// The five slave-side channel endpoints.
#[derive(Debug)]
pub struct AxiSlavePorts {
    /// Write-address input.
    pub aw: In<AxiAddrCmd>,
    /// Write-data input.
    pub w: In<AxiWriteBeat>,
    /// Write-response output.
    pub b: Out<AxiWriteResp>,
    /// Read-address input.
    pub ar: In<AxiAddrCmd>,
    /// Read-data output.
    pub r: Out<AxiReadBeat>,
}

/// The five master-side channel endpoints.
#[derive(Debug)]
pub struct AxiMasterPorts {
    /// Write-address output.
    pub aw: Out<AxiAddrCmd>,
    /// Write-data output.
    pub w: Out<AxiWriteBeat>,
    /// Write-response input.
    pub b: In<AxiWriteResp>,
    /// Read-address output.
    pub ar: Out<AxiAddrCmd>,
    /// Read-data input.
    pub r: In<AxiReadBeat>,
}

/// One AXI channel's commit handle paired with its commit-dirty token.
pub type AxiLinkSequential = (
    Rc<RefCell<dyn craft_sim::Sequential>>,
    craft_sim::ActivityToken,
);

/// Creates the five channels of one AXI link and returns the two port
/// bundles plus, per channel, the commit handle paired with its
/// commit-dirty token. Register each pair with
/// [`craft_sim::Simulator::add_sequential_gated`] so idle AXI channels
/// (the common case between transactions) cost no commit work — or
/// drop the token and use plain `add_sequential` for unconditional
/// commits.
pub fn axi_link(
    name: &str,
    depth: usize,
) -> (AxiMasterPorts, AxiSlavePorts, Vec<AxiLinkSequential>) {
    use craft_connections::{channel, ChannelKind};
    let kind = ChannelKind::Buffer(depth);
    let (aw_tx, aw_rx, h1) = channel::<AxiAddrCmd>(format!("{name}.aw"), kind);
    let (w_tx, w_rx, h2) = channel::<AxiWriteBeat>(format!("{name}.w"), kind);
    let (b_tx, b_rx, h3) = channel::<AxiWriteResp>(format!("{name}.b"), kind);
    let (ar_tx, ar_rx, h4) = channel::<AxiAddrCmd>(format!("{name}.ar"), kind);
    let (r_tx, r_rx, h5) = channel::<AxiReadBeat>(format!("{name}.r"), kind);
    (
        AxiMasterPorts {
            aw: aw_tx,
            w: w_tx,
            b: b_rx,
            ar: ar_tx,
            r: r_rx,
        },
        AxiSlavePorts {
            aw: aw_rx,
            w: w_rx,
            b: b_tx,
            ar: ar_rx,
            r: r_tx,
        },
        vec![
            (h1.sequential(), h1.commit_token()),
            (h2.sequential(), h2.commit_token()),
            (h3.sequential(), h3.commit_token()),
            (h4.sequential(), h4.commit_token()),
            (h5.sequential(), h5.commit_token()),
        ],
    )
}

enum WriteState {
    Idle,
    Data { cmd: AxiAddrCmd, beat: u64 },
    Resp { id: u8, okay: bool },
}

enum ReadState {
    Idle,
    Data {
        cmd: AxiAddrCmd,
        beat: u64,
        okay: bool,
    },
}

/// Memory-backed AXI slave: services one write burst and one read
/// burst concurrently (the channels are independent).
pub struct AxiMemorySlave {
    name: String,
    ports: AxiSlavePorts,
    mem: crate::MemArray<u64>,
    wstate: WriteState,
    rstate: ReadState,
}

impl AxiMemorySlave {
    /// A slave backed by `depth` words of zeroed memory.
    pub fn new(name: impl Into<String>, ports: AxiSlavePorts, depth: usize) -> Self {
        AxiMemorySlave {
            name: name.into(),
            ports,
            mem: crate::MemArray::new(depth),
            wstate: WriteState::Idle,
            rstate: ReadState::Idle,
        }
    }

    /// Backdoor read for testbenches.
    pub fn debug_read(&self, addr: usize) -> u64 {
        self.mem.read(addr)
    }

    /// Backdoor load for testbenches.
    pub fn debug_load(&mut self, base: usize, values: &[u64]) {
        self.mem.load(base, values);
    }

    fn in_range(&self, cmd: AxiAddrCmd) -> bool {
        (cmd.addr + u64::from(cmd.len)) < self.mem.depth() as u64
    }
}

impl Component for AxiMemorySlave {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _ctx: &mut TickCtx<'_>) {
        // Write engine.
        match &mut self.wstate {
            WriteState::Idle => {
                if let Some(cmd) = self.ports.aw.pop_nb() {
                    self.wstate = WriteState::Data { cmd, beat: 0 };
                }
            }
            WriteState::Data { cmd, beat } => {
                if let Some(wbeat) = self.ports.w.pop_nb() {
                    let addr = cmd.addr + *beat;
                    let okay = (addr as usize) < self.mem.depth();
                    if okay {
                        self.mem.write(addr as usize, wbeat.data);
                    }
                    let expected_last = *beat == u64::from(cmd.len);
                    if wbeat.last || expected_last {
                        self.wstate = WriteState::Resp {
                            id: cmd.id,
                            okay: okay && wbeat.last == expected_last,
                        };
                    } else {
                        *beat += 1;
                    }
                }
            }
            WriteState::Resp { id, okay } => {
                let resp = AxiWriteResp {
                    id: *id,
                    okay: *okay,
                };
                if self.ports.b.push_nb(resp).is_ok() {
                    self.wstate = WriteState::Idle;
                }
            }
        }
        // Read engine.
        match &mut self.rstate {
            ReadState::Idle => {
                if let Some(cmd) = self.ports.ar.pop_nb() {
                    let okay = self.in_range(cmd);
                    self.rstate = ReadState::Data { cmd, beat: 0, okay };
                }
            }
            ReadState::Data { cmd, beat, okay } => {
                let addr = (cmd.addr + *beat) as usize;
                let data = if *okay { self.mem.read(addr) } else { 0 };
                let last = *beat == u64::from(cmd.len);
                let rbeat = AxiReadBeat {
                    id: cmd.id,
                    data,
                    last,
                    okay: *okay,
                };
                if self.ports.r.push_nb(rbeat).is_ok() {
                    if last {
                        self.rstate = ReadState::Idle;
                    } else {
                        *beat += 1;
                    }
                }
            }
        }
    }
}

/// An operation submitted to an [`AxiMaster`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AxiOp {
    /// Burst write of the words to consecutive addresses.
    Write {
        /// First word address.
        addr: u64,
        /// One word per beat (1..=256 beats).
        data: Vec<u64>,
    },
    /// Burst read of `beats` words.
    Read {
        /// First word address.
        addr: u64,
        /// Number of beats (1..=256).
        beats: u16,
    },
}

/// A completed master operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AxiResult {
    /// Write finished (OKAY status flag).
    WriteDone {
        /// True on OKAY.
        okay: bool,
    },
    /// Read finished with the returned words.
    ReadDone {
        /// True when every beat returned OKAY.
        okay: bool,
        /// One word per beat.
        data: Vec<u64>,
    },
}

/// Shared handle for submitting ops to / draining results from an
/// [`AxiMaster`].
#[derive(Debug, Clone, Default)]
pub struct AxiMasterHandle {
    queue: Rc<RefCell<VecDeque<AxiOp>>>,
    results: Rc<RefCell<VecDeque<AxiResult>>>,
}

impl AxiMasterHandle {
    /// Creates an empty handle (pass to [`AxiMaster::new`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues an operation.
    ///
    /// # Panics
    /// Panics on empty or >256-beat bursts.
    pub fn submit(&self, op: AxiOp) {
        match &op {
            AxiOp::Write { data, .. } => {
                assert!(
                    !data.is_empty() && data.len() <= 256,
                    "burst must be 1..=256 beats"
                );
            }
            AxiOp::Read { beats, .. } => {
                assert!((1..=256).contains(beats), "burst must be 1..=256 beats");
            }
        }
        self.queue.borrow_mut().push_back(op);
    }

    /// Pops the oldest completed result, if any.
    pub fn result(&self) -> Option<AxiResult> {
        self.results.borrow_mut().pop_front()
    }

    /// Operations still queued or in flight cannot be distinguished
    /// here; this is just the not-yet-started count.
    pub fn pending(&self) -> usize {
        self.queue.borrow().len()
    }
}

enum MasterState {
    Idle,
    Write { data: Vec<u64>, beat: usize },
    AwaitB,
    Read { collected: Vec<u64>, okay: bool },
}

/// Queue-driven AXI master: executes [`AxiOp`]s one at a time, in
/// order.
pub struct AxiMaster {
    name: String,
    ports: AxiMasterPorts,
    handle: AxiMasterHandle,
    state: MasterState,
    next_id: u8,
}

impl AxiMaster {
    /// Creates a master over `ports`, driven by `handle`.
    pub fn new(name: impl Into<String>, ports: AxiMasterPorts, handle: AxiMasterHandle) -> Self {
        AxiMaster {
            name: name.into(),
            ports,
            handle,
            state: MasterState::Idle,
            next_id: 0,
        }
    }
}

impl Component for AxiMaster {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _ctx: &mut TickCtx<'_>) {
        match &mut self.state {
            MasterState::Idle => {
                let Some(op) = self.handle.queue.borrow_mut().pop_front() else {
                    return;
                };
                let id = self.next_id;
                self.next_id = self.next_id.wrapping_add(1);
                match op {
                    AxiOp::Write { addr, data } => {
                        let cmd = AxiAddrCmd {
                            id,
                            addr,
                            len: (data.len() - 1) as u8,
                        };
                        let cmd_sent = self.ports.aw.push_nb(cmd).is_ok();
                        if !cmd_sent {
                            // Retry next cycle from a staging state.
                            self.handle
                                .queue
                                .borrow_mut()
                                .push_front(AxiOp::Write { addr, data });
                            return;
                        }
                        self.state = MasterState::Write { data, beat: 0 };
                    }
                    AxiOp::Read { addr, beats } => {
                        let cmd = AxiAddrCmd {
                            id,
                            addr,
                            len: (beats - 1) as u8,
                        };
                        if self.ports.ar.push_nb(cmd).is_err() {
                            self.handle
                                .queue
                                .borrow_mut()
                                .push_front(AxiOp::Read { addr, beats });
                            return;
                        }
                        self.state = MasterState::Read {
                            collected: Vec::with_capacity(beats as usize),
                            okay: true,
                        };
                    }
                }
            }
            MasterState::Write { data, beat } => {
                if *beat < data.len() {
                    let wbeat = AxiWriteBeat {
                        data: data[*beat],
                        last: *beat + 1 == data.len(),
                    };
                    if self.ports.w.push_nb(wbeat).is_ok() {
                        *beat += 1;
                    }
                }
                if *beat == data.len() {
                    self.state = MasterState::AwaitB;
                }
            }
            MasterState::AwaitB => {
                if let Some(resp) = self.ports.b.pop_nb() {
                    self.handle
                        .results
                        .borrow_mut()
                        .push_back(AxiResult::WriteDone { okay: resp.okay });
                    self.state = MasterState::Idle;
                }
            }
            MasterState::Read { collected, okay } => {
                if let Some(rbeat) = self.ports.r.pop_nb() {
                    collected.push(rbeat.data);
                    *okay &= rbeat.okay;
                    if rbeat.last {
                        let data = std::mem::take(collected);
                        self.handle
                            .results
                            .borrow_mut()
                            .push_back(AxiResult::ReadDone { okay: *okay, data });
                        self.state = MasterState::Idle;
                    }
                }
            }
        }
    }
}

/// Address range claimed by a slave behind an [`AxiBus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddrRange {
    /// First word address (inclusive).
    pub base: u64,
    /// Words in the range.
    pub words: u64,
}

impl AddrRange {
    fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.base + self.words
    }
}

/// 1-master / N-slave AXI bridge with address decoding. Commands whose
/// address matches no range receive an error response from the bus
/// itself (no slave access), per the AXI default-slave convention.
pub struct AxiBus {
    name: String,
    /// Bus's slave-side ports (facing the master).
    upstream: AxiSlavePorts,
    /// Bus's master-side ports (facing each slave) with their range.
    downstream: Vec<(AddrRange, AxiMasterPorts)>,
    /// Write routing state: which slave the in-flight write went to.
    write_target: Option<usize>,
    write_err_pending: Option<u8>,
    write_beats_to_drop: bool,
    /// Read routing state.
    read_target: Option<usize>,
    read_err_pending: Option<(u8, u8)>,
}

impl AxiBus {
    /// Builds the bridge. Ranges must not overlap.
    ///
    /// # Panics
    /// Panics if any two ranges overlap.
    pub fn new(
        name: impl Into<String>,
        upstream: AxiSlavePorts,
        downstream: Vec<(AddrRange, AxiMasterPorts)>,
    ) -> Self {
        for (i, (a, _)) in downstream.iter().enumerate() {
            for (b, _) in downstream.iter().skip(i + 1) {
                let disjoint = a.base + a.words <= b.base || b.base + b.words <= a.base;
                assert!(disjoint, "overlapping slave address ranges");
            }
        }
        AxiBus {
            name: name.into(),
            upstream,
            downstream,
            write_target: None,
            write_err_pending: None,
            write_beats_to_drop: false,
            read_target: None,
            read_err_pending: None,
        }
    }

    fn decode(&self, addr: u64) -> Option<usize> {
        self.downstream
            .iter()
            .position(|(range, _)| range.contains(addr))
    }
}

impl Component for AxiBus {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _ctx: &mut TickCtx<'_>) {
        // --- Write path ---
        if self.write_target.is_none() && self.write_err_pending.is_none() {
            if let Some(cmd) = self.upstream.aw.peek() {
                match self.decode(cmd.addr) {
                    Some(slave) => {
                        let local = AxiAddrCmd {
                            addr: cmd.addr - self.downstream[slave].0.base,
                            ..cmd
                        };
                        if self.downstream[slave].1.aw.push_nb(local).is_ok() {
                            let _ = self.upstream.aw.pop_nb();
                            self.write_target = Some(slave);
                        }
                    }
                    None => {
                        let _ = self.upstream.aw.pop_nb();
                        self.write_err_pending = Some(cmd.id);
                        self.write_beats_to_drop = true;
                    }
                }
            }
        }
        if let Some(slave) = self.write_target {
            // Forward write beats.
            if let Some(beat) = self.upstream.w.peek() {
                if self.downstream[slave].1.w.push_nb(beat).is_ok() {
                    let _ = self.upstream.w.pop_nb();
                }
            }
            // Route the response back.
            if let Some(resp) = self.downstream[slave].1.b.pop_nb() {
                if self.upstream.b.push_nb(resp).is_err() {
                    // Upstream full: retry next cycle. (Response channel
                    // depth should cover this; drop-free by re-staging.)
                    self.write_target = Some(slave);
                } else {
                    self.write_target = None;
                }
            }
        } else if self.write_err_pending.is_some() {
            // Swallow the data beats of the errored write, then respond.
            if self.write_beats_to_drop {
                if let Some(beat) = self.upstream.w.pop_nb() {
                    if beat.last {
                        self.write_beats_to_drop = false;
                    }
                }
            }
            if !self.write_beats_to_drop {
                let id = self.write_err_pending.expect("checked some");
                if self
                    .upstream
                    .b
                    .push_nb(AxiWriteResp { id, okay: false })
                    .is_ok()
                {
                    self.write_err_pending = None;
                }
            }
        }

        // --- Read path ---
        if self.read_target.is_none() && self.read_err_pending.is_none() {
            if let Some(cmd) = self.upstream.ar.peek() {
                match self.decode(cmd.addr) {
                    Some(slave) => {
                        let local = AxiAddrCmd {
                            addr: cmd.addr - self.downstream[slave].0.base,
                            ..cmd
                        };
                        if self.downstream[slave].1.ar.push_nb(local).is_ok() {
                            let _ = self.upstream.ar.pop_nb();
                            self.read_target = Some(slave);
                        }
                    }
                    None => {
                        let _ = self.upstream.ar.pop_nb();
                        self.read_err_pending = Some((cmd.id, cmd.len));
                    }
                }
            }
        }
        if let Some(slave) = self.read_target {
            if let Some(beat) = self.downstream[slave].1.r.peek() {
                if self.upstream.r.push_nb(beat).is_ok() {
                    let _ = self.downstream[slave].1.r.pop_nb();
                    if beat.last {
                        self.read_target = None;
                    }
                }
            }
        } else if let Some((id, len)) = self.read_err_pending {
            let last = len == 0;
            let beat = AxiReadBeat {
                id,
                data: 0,
                last,
                okay: false,
            };
            if self.upstream.r.push_nb(beat).is_ok() {
                self.read_err_pending = if last { None } else { Some((id, len - 1)) };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use craft_sim::{ClockSpec, Picoseconds, Simulator};

    fn run_ops(ops: Vec<AxiOp>) -> (Vec<AxiResult>, Simulator) {
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("c", Picoseconds(1000)));
        let (mports, sports, seqs) = axi_link("lnk", 2);
        for (s, dirty) in seqs {
            sim.add_sequential_gated(clk, s, dirty);
        }
        let handle = AxiMasterHandle::new();
        for op in ops {
            handle.submit(op);
        }
        sim.add_component(clk, AxiMaster::new("m", mports, handle.clone()));
        sim.add_component(clk, AxiMemorySlave::new("s", sports, 64));
        sim.run_cycles(clk, 500);
        let mut results = Vec::new();
        while let Some(r) = handle.result() {
            results.push(r);
        }
        (results, sim)
    }

    #[test]
    fn single_beat_write_then_read() {
        let (results, _) = run_ops(vec![
            AxiOp::Write {
                addr: 5,
                data: vec![0xABCD],
            },
            AxiOp::Read { addr: 5, beats: 1 },
        ]);
        assert_eq!(
            results,
            vec![
                AxiResult::WriteDone { okay: true },
                AxiResult::ReadDone {
                    okay: true,
                    data: vec![0xABCD]
                },
            ]
        );
    }

    #[test]
    fn burst_write_read_round_trip() {
        let words: Vec<u64> = (100..116).collect();
        let (results, _) = run_ops(vec![
            AxiOp::Write {
                addr: 8,
                data: words.clone(),
            },
            AxiOp::Read { addr: 8, beats: 16 },
        ]);
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[1],
            AxiResult::ReadDone {
                okay: true,
                data: words
            }
        );
    }

    #[test]
    fn out_of_range_read_errors() {
        let (results, _) = run_ops(vec![AxiOp::Read {
            addr: 200,
            beats: 1,
        }]);
        assert_eq!(results.len(), 1);
        match &results[0] {
            AxiResult::ReadDone { okay, .. } => assert!(!okay),
            other => panic!("expected read result, got {other:?}"),
        }
    }

    #[test]
    fn bus_decodes_to_correct_slave() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("c", Picoseconds(1000)));
        // master -> bus
        let (mports, bus_up, s1) = axi_link("m2bus", 2);
        // bus -> two slaves at [0,32) and [32,64)
        let (bus_dn0, slave0, s2) = axi_link("bus2s0", 2);
        let (bus_dn1, slave1, s3) = axi_link("bus2s1", 2);
        for (s, dirty) in s1.into_iter().chain(s2).chain(s3) {
            sim.add_sequential_gated(clk, s, dirty);
        }
        let handle = AxiMasterHandle::new();
        handle.submit(AxiOp::Write {
            addr: 3,
            data: vec![111],
        });
        handle.submit(AxiOp::Write {
            addr: 35,
            data: vec![222],
        });
        handle.submit(AxiOp::Read { addr: 35, beats: 1 });
        handle.submit(AxiOp::Read { addr: 99, beats: 1 }); // undecoded
        sim.add_component(clk, AxiMaster::new("m", mports, handle.clone()));
        sim.add_component(
            clk,
            AxiBus::new(
                "bus",
                bus_up,
                vec![
                    (AddrRange { base: 0, words: 32 }, bus_dn0),
                    (
                        AddrRange {
                            base: 32,
                            words: 32,
                        },
                        bus_dn1,
                    ),
                ],
            ),
        );
        sim.add_component(clk, AxiMemorySlave::new("s0", slave0, 32));
        sim.add_component(clk, AxiMemorySlave::new("s1", slave1, 32));
        sim.run_cycles(clk, 800);

        assert_eq!(handle.result(), Some(AxiResult::WriteDone { okay: true }));
        assert_eq!(handle.result(), Some(AxiResult::WriteDone { okay: true }));
        assert_eq!(
            handle.result(),
            Some(AxiResult::ReadDone {
                okay: true,
                data: vec![222]
            })
        );
        match handle.result() {
            Some(AxiResult::ReadDone { okay, .. }) => assert!(!okay, "undecoded must error"),
            other => panic!("missing default-slave response: {other:?}"),
        }
    }
}

#[cfg(test)]
mod bus_burst_tests {
    use super::*;
    use craft_sim::{ClockSpec, Picoseconds, Simulator};

    /// Multi-beat bursts route through the AxiBus to the right slave
    /// with addresses rebased and data intact.
    #[test]
    fn burst_through_bus() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("c", Picoseconds::new(909)));
        let (mports, bus_up, s1) = axi_link("m2bus", 2);
        let (bus_dn0, slave0, s2) = axi_link("bus2s0", 2);
        let (bus_dn1, slave1, s3) = axi_link("bus2s1", 2);
        for (s, dirty) in s1.into_iter().chain(s2).chain(s3) {
            sim.add_sequential_gated(clk, s, dirty);
        }
        let handle = AxiMasterHandle::new();
        let words: Vec<u64> = (500..532).collect();
        handle.submit(AxiOp::Write {
            addr: 40, // slave 1 local addr 8
            data: words.clone(),
        });
        handle.submit(AxiOp::Read {
            addr: 40,
            beats: 32,
        });
        sim.add_component(clk, AxiMaster::new("m", mports, handle.clone()));
        sim.add_component(
            clk,
            AxiBus::new(
                "bus",
                bus_up,
                vec![
                    (AddrRange { base: 0, words: 32 }, bus_dn0),
                    (
                        AddrRange {
                            base: 32,
                            words: 64,
                        },
                        bus_dn1,
                    ),
                ],
            ),
        );
        sim.add_component(clk, AxiMemorySlave::new("s0", slave0, 32));
        let s1_mem = AxiMemorySlave::new("s1", slave1, 64);
        sim.add_component(clk, s1_mem);
        sim.run_cycles(clk, 2_000);
        assert_eq!(handle.result(), Some(AxiResult::WriteDone { okay: true }));
        assert_eq!(
            handle.result(),
            Some(AxiResult::ReadDone {
                okay: true,
                data: words
            })
        );
    }
}
