//! NoC routers (Table 2): [`SfRouter`] (store-and-forward) and
//! [`WhvcRouter`] (wormhole with virtual channels), plus the flit
//! format and XY-mesh routing helpers shared by both.

mod store_forward;
mod wormhole;

pub use store_forward::SfRouter;
pub use wormhole::{WhvcConfig, WhvcRouter};

/// Position of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlitKind {
    /// First flit of a multi-flit packet (carries the route).
    Head,
    /// Interior flit.
    Body,
    /// Final flit (releases wormhole locks).
    Tail,
    /// Single-flit packet (head and tail at once).
    Single,
}

impl FlitKind {
    /// True for `Head` and `Single`.
    pub fn is_head(self) -> bool {
        matches!(self, FlitKind::Head | FlitKind::Single)
    }

    /// True for `Tail` and `Single`.
    pub fn is_tail(self) -> bool {
        matches!(self, FlitKind::Tail | FlitKind::Single)
    }
}

/// One flow-control unit on a NoC link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NocFlit {
    /// Destination node id.
    pub dst: u16,
    /// Source node id (carried for reassembly and debug).
    pub src: u16,
    /// Virtual channel (assigned at the source, preserved end-to-end).
    pub vc: u8,
    /// Position within the packet.
    pub kind: FlitKind,
    /// Payload word.
    pub data: u64,
}

/// Wire format for fault injection and serialization: two words —
/// `[dst | src<<16 | vc<<32 | kind<<40, data]`.
///
/// Deliberately *defensive* on the way back in: every field is masked
/// to its width and any 2-bit pattern decodes to a valid [`FlitKind`],
/// so a bit-flip injected on a NoC link yields a well-formed (if
/// wrong) flit rather than a panic — misrouting and payload corruption
/// are then detected architecturally (scoreboards, reliable links,
/// the hang watchdog), which is the failure model fault campaigns
/// measure.
impl craft_connections::Payload for NocFlit {
    fn to_words(&self) -> Vec<u64> {
        let kind = match self.kind {
            FlitKind::Head => 0u64,
            FlitKind::Body => 1,
            FlitKind::Tail => 2,
            FlitKind::Single => 3,
        };
        vec![
            u64::from(self.dst) | u64::from(self.src) << 16 | u64::from(self.vc) << 32 | kind << 40,
            self.data,
        ]
    }

    fn from_words(words: &[u64]) -> Self {
        assert_eq!(words.len(), 2, "NocFlit is two words");
        let w = words[0];
        NocFlit {
            dst: (w & 0xffff) as u16,
            src: ((w >> 16) & 0xffff) as u16,
            vc: ((w >> 32) & 0xff) as u8,
            kind: match (w >> 40) & 0b11 {
                0 => FlitKind::Head,
                1 => FlitKind::Body,
                2 => FlitKind::Tail,
                _ => FlitKind::Single,
            },
            data: words[1],
        }
    }
}

/// Builds the flit sequence for a packet of `words` from `src` to
/// `dst` on virtual channel `vc`.
///
/// # Panics
/// Panics if `words` is empty.
///
/// ```
/// use craft_matchlib::router::{make_packet, FlitKind};
/// let pkt = make_packet(3, 1, 0, &[10, 20]);
/// assert_eq!(pkt[0].kind, FlitKind::Head);
/// assert_eq!(pkt[1].kind, FlitKind::Tail);
/// ```
pub fn make_packet(dst: u16, src: u16, vc: u8, words: &[u64]) -> Vec<NocFlit> {
    assert!(!words.is_empty(), "packet must carry at least one word");
    let n = words.len();
    words
        .iter()
        .enumerate()
        .map(|(i, &data)| NocFlit {
            dst,
            src,
            vc,
            kind: if n == 1 {
                FlitKind::Single
            } else if i == 0 {
                FlitKind::Head
            } else if i == n - 1 {
                FlitKind::Tail
            } else {
                FlitKind::Body
            },
            data,
        })
        .collect()
}

/// Port numbering used by the mesh routing helper.
pub mod port {
    /// Ejection to the locally attached node.
    pub const LOCAL: usize = 0;
    /// Toward smaller y.
    pub const NORTH: usize = 1;
    /// Toward larger x.
    pub const EAST: usize = 2;
    /// Toward larger y.
    pub const SOUTH: usize = 3;
    /// Toward smaller x.
    pub const WEST: usize = 4;
    /// Ports on a mesh router.
    pub const COUNT: usize = 5;
}

/// Dimension-ordered (XY) routing on a `width`-wide mesh whose node
/// ids are `y * width + x`: route X first, then Y — deadlock-free with
/// wormhole flow control.
///
/// # Panics
/// Panics if `width` is zero.
///
/// ```
/// use craft_matchlib::router::{xy_route, port};
/// // Node 0 (0,0) routing to node 5 (1,1) on a 4-wide mesh: X first.
/// assert_eq!(xy_route(0, 5, 4), port::EAST);
/// // Node 5 routing to itself: eject.
/// assert_eq!(xy_route(5, 5, 4), port::LOCAL);
/// ```
pub fn xy_route(here: u16, dst: u16, width: u16) -> usize {
    assert!(width > 0, "mesh width must be nonzero");
    let (hx, hy) = (here % width, here / width);
    let (dx, dy) = (dst % width, dst / width);
    if dx > hx {
        port::EAST
    } else if dx < hx {
        port::WEST
    } else if dy > hy {
        port::SOUTH
    } else if dy < hy {
        port::NORTH
    } else {
        port::LOCAL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_flit_kinds() {
        let single = make_packet(1, 0, 0, &[5]);
        assert_eq!(single.len(), 1);
        assert_eq!(single[0].kind, FlitKind::Single);

        let multi = make_packet(1, 0, 0, &[1, 2, 3]);
        assert_eq!(
            multi.iter().map(|f| f.kind).collect::<Vec<_>>(),
            vec![FlitKind::Head, FlitKind::Body, FlitKind::Tail]
        );
        assert!(multi[0].kind.is_head() && !multi[0].kind.is_tail());
        assert!(multi[2].kind.is_tail());
    }

    #[test]
    fn xy_routes_x_before_y() {
        // 4-wide mesh, node 0 = (0,0), node 10 = (2,2).
        assert_eq!(xy_route(0, 10, 4), port::EAST);
        // Node 2 = (2,0) to node 10: x aligned, go south.
        assert_eq!(xy_route(2, 10, 4), port::SOUTH);
        // West and north directions.
        assert_eq!(xy_route(10, 8, 4), port::WEST);
        assert_eq!(xy_route(10, 2, 4), port::NORTH);
    }

    #[test]
    fn xy_route_full_path_terminates() {
        // Walk the route hop by hop and confirm arrival for all pairs
        // on a 4x4 mesh.
        let width = 4u16;
        for src in 0..16u16 {
            for dst in 0..16u16 {
                let mut here = src;
                let mut hops = 0;
                loop {
                    match xy_route(here, dst, width) {
                        port::LOCAL => break,
                        port::EAST => here += 1,
                        port::WEST => here -= 1,
                        port::SOUTH => here += width,
                        port::NORTH => here -= width,
                        other => panic!("bad port {other}"),
                    }
                    hops += 1;
                    assert!(hops <= 6, "route {src}->{dst} too long");
                }
                assert_eq!(here, dst);
            }
        }
    }

    #[test]
    #[should_panic(expected = "packet must carry at least one word")]
    fn empty_packet_panics() {
        let _ = make_packet(0, 0, 0, &[]);
    }

    #[test]
    fn flit_payload_roundtrip_and_defensive_decode() {
        use craft_connections::Payload;
        for kind in [
            FlitKind::Head,
            FlitKind::Body,
            FlitKind::Tail,
            FlitKind::Single,
        ] {
            let f = NocFlit {
                dst: 0xBEEF,
                src: 0x1234,
                vc: 3,
                kind,
                data: 0xDEAD_BEEF_CAFE_F00D,
            };
            assert_eq!(NocFlit::from_words(&f.to_words()), f);
        }
        // Any header bit pattern decodes without panicking: garbage in
        // the unused high bits is masked away, and all four kind codes
        // are valid.
        let f = NocFlit::from_words(&[u64::MAX, 42]);
        assert_eq!(f.dst, 0xFFFF);
        assert_eq!(f.vc, 0xFF);
        assert_eq!(f.kind, FlitKind::Single);
        assert_eq!(f.data, 42);
    }
}
