//! Wormhole router with virtual channels (Table 2, `WHVCRouter`) —
//! the router used for the prototype SoC's PE-array NoC (Fig. 5).
//!
//! Microarchitecture: per-(input, VC) flit buffers, route computation
//! on head flits via a caller-supplied routing function, per-output
//! wormhole locking (a granted packet holds its output until the tail
//! flit passes), and round-robin switch allocation among competing
//! (input, VC) candidates. Backpressure is channel-level: a flit is
//! only accepted from the link when its VC buffer has room.

use super::NocFlit;
use crate::{Arbiter, Fifo};
use craft_connections::{In, Out};
use craft_sim::{Component, TickCtx};

/// Router configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WhvcConfig {
    /// Virtual channels per input port (1..=8).
    pub vcs: usize,
    /// Flit slots per (input, VC) buffer.
    pub buffer_depth: usize,
}

impl Default for WhvcConfig {
    fn default() -> Self {
        WhvcConfig {
            vcs: 2,
            buffer_depth: 4,
        }
    }
}

/// Wormhole virtual-channel router component.
pub struct WhvcRouter {
    name: String,
    inputs: Vec<In<NocFlit>>,
    outputs: Vec<Out<NocFlit>>,
    route: Box<dyn Fn(u16) -> usize>,
    cfg: WhvcConfig,
    /// Flit buffers indexed `input * vcs + vc`.
    buffers: Vec<Fifo<NocFlit>>,
    /// Route lock per (input, VC): output claimed by the in-flight
    /// packet.
    route_lock: Vec<Option<usize>>,
    /// Wormhole owner per output: the (input*vcs+vc) holding it.
    output_owner: Vec<Option<usize>>,
    /// Switch allocator per output.
    allocators: Vec<Arbiter>,
    /// Flits forwarded (lifetime).
    forwarded: u64,
}

impl WhvcRouter {
    /// Builds a router over matching input/output port vectors. `route`
    /// maps a destination node id to an output port index.
    ///
    /// # Panics
    /// Panics if the port vectors differ in length, are empty, or the
    /// configuration is out of range.
    pub fn new(
        name: impl Into<String>,
        inputs: Vec<In<NocFlit>>,
        outputs: Vec<Out<NocFlit>>,
        cfg: WhvcConfig,
        route: impl Fn(u16) -> usize + 'static,
    ) -> Self {
        assert_eq!(inputs.len(), outputs.len(), "router must be square");
        assert!(!inputs.is_empty(), "router needs at least one port");
        assert!((1..=8).contains(&cfg.vcs), "vcs must be 1..=8");
        assert!(cfg.buffer_depth > 0, "buffer depth must be nonzero");
        let ports = inputs.len();
        let slots = ports * cfg.vcs;
        assert!(slots <= 64, "ports * vcs must be <= 64 for the allocator");
        WhvcRouter {
            name: name.into(),
            inputs,
            outputs,
            route: Box::new(route),
            cfg,
            buffers: (0..slots).map(|_| Fifo::new(cfg.buffer_depth)).collect(),
            route_lock: vec![None; slots],
            output_owner: vec![None; ports],
            allocators: (0..ports).map(|_| Arbiter::new(slots)).collect(),
            forwarded: 0,
        }
    }

    /// Total flits forwarded through the switch.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }

    fn slot(&self, input: usize, vc: usize) -> usize {
        input * self.cfg.vcs + vc
    }

    /// Output port the head of `slot` needs, computing and caching the
    /// route on head flits.
    fn desired_output(&mut self, slot: usize) -> Option<usize> {
        if let Some(out) = self.route_lock[slot] {
            return Some(out);
        }
        let head = *self.buffers[slot].peek()?;
        if head.kind.is_head() {
            let out = (self.route)(head.dst);
            assert!(
                out < self.outputs.len(),
                "routing function returned bad port"
            );
            self.route_lock[slot] = Some(out);
            Some(out)
        } else {
            // Body/tail without a lock: packet not yet started — cannot
            // happen with in-order links; defensive None.
            None
        }
    }
}

impl Component for WhvcRouter {
    fn name(&self) -> &str {
        &self.name
    }

    /// Quiescent when every VC buffer is empty and no input channel
    /// holds committed or staged flits. In that state a tick moves
    /// nothing and leaves all arbitration state untouched
    /// (`Arbiter::pick(0)` returns `None` without advancing the
    /// round-robin pointer, and an output owner with an empty buffer
    /// just waits), so elided ticks are behaviour-exact. Route locks
    /// and output owners may stay held across a sleep: the wormhole
    /// resumes when the owner's next flit arrives and wakes us.
    fn is_quiescent(&self) -> bool {
        self.buffers.iter().all(Fifo::is_empty) && self.inputs.iter().all(|i| !i.has_pending())
    }

    fn tick(&mut self, _ctx: &mut TickCtx<'_>) {
        let ports = self.inputs.len();
        // Input stage: accept at most one flit per input port, into the
        // VC buffer the flit names, only when that buffer has room.
        for i in 0..ports {
            if let Some(flit) = self.inputs[i].peek() {
                let vc = flit.vc as usize;
                assert!(vc < self.cfg.vcs, "flit names nonexistent vc {vc}");
                let slot = self.slot(i, vc);
                if !self.buffers[slot].is_full() {
                    let flit = self.inputs[i].pop_nb().expect("peeked");
                    self.buffers[slot].push(flit).expect("had room");
                }
            }
        }
        // Switch stage: per output, pick among candidate slots.
        for out in 0..ports {
            if !self.outputs[out].can_push() {
                continue;
            }
            let granted_slot = match self.output_owner[out] {
                Some(owner) => {
                    // Wormhole: the owner streams until its tail, but
                    // only when it has a flit ready.
                    if self.buffers[owner].is_empty() {
                        continue;
                    }
                    owner
                }
                None => {
                    let mut mask = 0u64;
                    for slot in 0..self.buffers.len() {
                        if self.buffers[slot].is_empty() {
                            continue;
                        }
                        if self.desired_output(slot) == Some(out) {
                            mask |= 1 << slot;
                        }
                    }
                    match self.allocators[out].pick(mask) {
                        Some(slot) => slot,
                        None => continue,
                    }
                }
            };
            let flit = self.buffers[granted_slot]
                .pop()
                .expect("candidate has flit");
            self.outputs[out].push_nb(flit).expect("output ready");
            self.forwarded += 1;
            if flit.kind.is_tail() {
                self.output_owner[out] = None;
                self.route_lock[granted_slot] = None;
            } else {
                self.output_owner[out] = Some(granted_slot);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::{make_packet, FlitKind};
    use craft_connections::{channel, ChannelKind};
    use craft_sim::{ClockSpec, Picoseconds, Simulator};

    struct Ring {
        sim: Simulator,
        clk: craft_sim::ClockId,
        inject: Vec<Out<NocFlit>>,
        drain: Vec<In<NocFlit>>,
    }

    /// A single router whose routing function is `dst as port`.
    fn single_router(ports: usize, cfg: WhvcConfig) -> Ring {
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("c", Picoseconds(1000)));
        let mut inject = Vec::new();
        let mut rin = Vec::new();
        let mut rout = Vec::new();
        let mut drain = Vec::new();
        for p in 0..ports {
            let (tx, rx, h) = channel::<NocFlit>(format!("in{p}"), ChannelKind::Buffer(2));
            sim.add_sequential(clk, h.sequential());
            inject.push(tx);
            rin.push(rx);
            let (tx2, rx2, h2) = channel::<NocFlit>(format!("out{p}"), ChannelKind::Buffer(2));
            sim.add_sequential(clk, h2.sequential());
            rout.push(tx2);
            drain.push(rx2);
        }
        sim.add_component(
            clk,
            WhvcRouter::new("r", rin, rout, cfg, |dst| dst as usize),
        );
        Ring {
            sim,
            clk,
            inject,
            drain,
        }
    }

    fn push_packet(ring: &mut Ring, input: usize, pkt: &[NocFlit]) {
        let mut idx = 0;
        while idx < pkt.len() {
            if ring.inject[input].push_nb(pkt[idx]).is_ok() {
                idx += 1;
            }
            ring.sim.run_cycles(ring.clk, 1);
        }
    }

    #[test]
    fn routes_single_flit_to_named_port() {
        let mut r = single_router(4, WhvcConfig::default());
        push_packet(&mut r, 0, &make_packet(2, 0, 0, &[77]));
        for _ in 0..10 {
            r.sim.run_cycles(r.clk, 1);
        }
        let got = r.drain[2].pop_nb().expect("flit delivered");
        assert_eq!(got.data, 77);
        assert_eq!(got.kind, FlitKind::Single);
        for p in [0, 1, 3] {
            assert!(r.drain[p].pop_nb().is_none(), "leak to port {p}");
        }
    }

    #[test]
    fn wormhole_packets_never_interleave_on_an_output() {
        let mut r = single_router(3, WhvcConfig::default());
        // Two inputs send multi-flit packets to output 2 concurrently.
        let pa = make_packet(2, 0, 0, &[10, 11, 12, 13]);
        let pb = make_packet(2, 1, 0, &[20, 21, 22, 23]);
        let mut ai = 0;
        let mut bi = 0;
        let mut got = Vec::new();
        for _ in 0..80 {
            if ai < pa.len() && r.inject[0].push_nb(pa[ai]).is_ok() {
                ai += 1;
            }
            if bi < pb.len() && r.inject[1].push_nb(pb[bi]).is_ok() {
                bi += 1;
            }
            r.sim.run_cycles(r.clk, 1);
            while let Some(f) = r.drain[2].pop_nb() {
                got.push(f);
            }
        }
        assert_eq!(got.len(), 8, "all flits delivered");
        // Group by src: each packet's flits must be contiguous.
        let srcs: Vec<u16> = got.iter().map(|f| f.src).collect();
        let transitions = srcs.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(transitions <= 1, "packets interleaved: {srcs:?}");
        // Payload order preserved within each packet.
        let a_payload: Vec<u64> = got.iter().filter(|f| f.src == 0).map(|f| f.data).collect();
        assert_eq!(a_payload, vec![10, 11, 12, 13]);
    }

    #[test]
    fn distinct_outputs_proceed_in_parallel() {
        let mut r = single_router(4, WhvcConfig::default());
        r.inject[0]
            .push_nb(make_packet(1, 0, 0, &[1])[0])
            .expect("room");
        r.inject[2]
            .push_nb(make_packet(3, 2, 0, &[3])[0])
            .expect("room");
        for _ in 0..6 {
            r.sim.run_cycles(r.clk, 1);
        }
        assert!(r.drain[1].pop_nb().is_some());
        assert!(r.drain[3].pop_nb().is_some());
    }

    #[test]
    fn vcs_buffer_independently() {
        let cfg = WhvcConfig {
            vcs: 2,
            buffer_depth: 2,
        };
        let mut r = single_router(2, cfg);
        // Congest vc0: a packet to output 1 that is never drained. The
        // packet length is chosen so the *link* channel itself drains
        // (2 flits land in the output channel, 2 in the vc0 buffer),
        // leaving the link free — the point of per-VC buffering.
        let long = make_packet(1, 0, 0, &[1, 2, 3, 4]);
        let mut li = 0;
        // Don't drain output: back-pressure builds.
        for _ in 0..20 {
            if li < long.len() && r.inject[0].push_nb(long[li]).is_ok() {
                li += 1;
            }
            r.sim.run_cycles(r.clk, 1);
        }
        // vc1 single flit still gets in and (after drain) through.
        let f = make_packet(1, 0, 1, &[99])[0];
        let mut accepted = false;
        for _ in 0..10 {
            if !accepted && r.inject[0].push_nb(f).is_ok() {
                accepted = true;
            }
            r.sim.run_cycles(r.clk, 1);
        }
        assert!(accepted, "vc1 flit blocked by vc0 congestion");
    }

    #[test]
    fn fairness_across_inputs() {
        let mut r = single_router(3, WhvcConfig::default());
        let mut counts = [0u32; 2];
        let mut seq = 0u64;
        for _ in 0..100 {
            for input in 0..2 {
                let _ = r.inject[input].push_nb(NocFlit {
                    dst: 2,
                    src: input as u16,
                    vc: 0,
                    kind: FlitKind::Single,
                    data: seq,
                });
                seq += 1;
            }
            r.sim.run_cycles(r.clk, 1);
            while let Some(f) = r.drain[2].pop_nb() {
                counts[f.src as usize] += 1;
            }
        }
        let (a, b) = (counts[0] as i64, counts[1] as i64);
        assert!(a + b > 50, "throughput too low: {}", a + b);
        assert!((a - b).abs() <= 4, "unfair: {a} vs {b}");
    }
}
