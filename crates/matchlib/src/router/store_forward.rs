//! Store-and-forward router (Table 2, `SFRouter`).
//!
//! The baseline against [`super::WhvcRouter`]: every packet is fully
//! buffered at each hop before any of it is forwarded, so per-hop
//! latency grows with packet length (the classic store-and-forward vs
//! wormhole trade-off; see the `noc_router_ablation` bench).

use super::NocFlit;
use crate::{Arbiter, Fifo};
use craft_connections::{In, Out};
use craft_sim::{Component, TickCtx};
use std::collections::VecDeque;

/// Store-and-forward router component.
pub struct SfRouter {
    name: String,
    inputs: Vec<In<NocFlit>>,
    outputs: Vec<Out<NocFlit>>,
    route: Box<dyn Fn(u16) -> usize>,
    /// Per-input packet under assembly.
    assembling: Vec<Vec<NocFlit>>,
    /// Per-input queue of complete packets awaiting the switch.
    complete: Vec<Fifo<Vec<NocFlit>>>,
    /// Per-output packet currently streaming out.
    streaming: Vec<VecDeque<NocFlit>>,
    allocators: Vec<Arbiter>,
    forwarded: u64,
}

impl SfRouter {
    /// Builds the router; `route` maps destination node id to output
    /// port. `packet_queue` bounds complete packets buffered per input.
    ///
    /// # Panics
    /// Panics if the port vectors differ in length or are empty, or
    /// `packet_queue` is zero.
    pub fn new(
        name: impl Into<String>,
        inputs: Vec<In<NocFlit>>,
        outputs: Vec<Out<NocFlit>>,
        packet_queue: usize,
        route: impl Fn(u16) -> usize + 'static,
    ) -> Self {
        assert_eq!(inputs.len(), outputs.len(), "router must be square");
        assert!(!inputs.is_empty(), "router needs at least one port");
        let ports = inputs.len();
        assert!(ports <= 64, "at most 64 ports");
        SfRouter {
            name: name.into(),
            inputs,
            outputs,
            route: Box::new(route),
            assembling: vec![Vec::new(); ports],
            complete: (0..ports).map(|_| Fifo::new(packet_queue)).collect(),
            streaming: (0..ports).map(|_| VecDeque::new()).collect(),
            allocators: (0..ports).map(|_| Arbiter::new(ports)).collect(),
            forwarded: 0,
        }
    }

    /// Total flits forwarded.
    pub fn forwarded(&self) -> u64 {
        self.forwarded
    }
}

impl Component for SfRouter {
    fn name(&self) -> &str {
        &self.name
    }

    /// Quiescent when no packet is under assembly, queued, or
    /// streaming, and no input channel holds committed or staged
    /// flits. Idle ticks touch no arbiter state (`pick(0)` is a
    /// no-op), so eliding them is behaviour-exact.
    fn is_quiescent(&self) -> bool {
        self.assembling.iter().all(Vec::is_empty)
            && self.complete.iter().all(Fifo::is_empty)
            && self.streaming.iter().all(VecDeque::is_empty)
            && self.inputs.iter().all(|i| !i.has_pending())
    }

    fn tick(&mut self, _ctx: &mut TickCtx<'_>) {
        let ports = self.inputs.len();
        // Assemble whole packets per input.
        for i in 0..ports {
            if self.complete[i].is_full() {
                continue; // backpressure: stop accepting flits
            }
            if let Some(flit) = self.inputs[i].pop_nb() {
                self.assembling[i].push(flit);
                if flit.kind.is_tail() {
                    let pkt = std::mem::take(&mut self.assembling[i]);
                    self.complete[i].push(pkt).expect("checked not full");
                }
            }
        }
        // Per output: continue streaming, else allocate a new packet.
        for out in 0..ports {
            if self.streaming[out].is_empty() {
                let mut mask = 0u64;
                for (i, q) in self.complete.iter().enumerate() {
                    if let Some(pkt) = q.peek() {
                        if (self.route)(pkt[0].dst) == out {
                            mask |= 1 << i;
                        }
                    }
                }
                if let Some(winner) = self.allocators[out].pick(mask) {
                    let pkt = self.complete[winner].pop().expect("peeked");
                    self.streaming[out] = pkt.into();
                }
            }
            if let Some(&flit) = self.streaming[out].front() {
                if self.outputs[out].push_nb(flit).is_ok() {
                    self.streaming[out].pop_front();
                    self.forwarded += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::make_packet;
    use craft_connections::{channel, ChannelKind};
    use craft_sim::{ClockSpec, Picoseconds, Simulator};

    struct Bench {
        sim: Simulator,
        clk: craft_sim::ClockId,
        inject: Vec<Out<NocFlit>>,
        drain: Vec<In<NocFlit>>,
    }

    fn single_router(ports: usize) -> Bench {
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("c", Picoseconds(1000)));
        let mut inject = Vec::new();
        let mut rin = Vec::new();
        let mut rout = Vec::new();
        let mut drain = Vec::new();
        for p in 0..ports {
            let (tx, rx, h) = channel::<NocFlit>(format!("in{p}"), ChannelKind::Buffer(2));
            sim.add_sequential(clk, h.sequential());
            inject.push(tx);
            rin.push(rx);
            let (tx2, rx2, h2) = channel::<NocFlit>(format!("out{p}"), ChannelKind::Buffer(2));
            sim.add_sequential(clk, h2.sequential());
            rout.push(tx2);
            drain.push(rx2);
        }
        sim.add_component(clk, SfRouter::new("sf", rin, rout, 2, |dst| dst as usize));
        Bench {
            sim,
            clk,
            inject,
            drain,
        }
    }

    /// Cycles from first flit injected until last flit drained.
    fn packet_latency(b: &mut Bench, pkt: &[NocFlit], out: usize) -> u64 {
        let mut idx = 0;
        let mut cycles = 0;
        let mut got = 0;
        while got < pkt.len() {
            if idx < pkt.len() && b.inject[0].push_nb(pkt[idx]).is_ok() {
                idx += 1;
            }
            b.sim.run_cycles(b.clk, 1);
            cycles += 1;
            while b.drain[out].pop_nb().is_some() {
                got += 1;
            }
            assert!(cycles < 500, "packet lost");
        }
        cycles
    }

    #[test]
    fn whole_packet_delivered_in_order() {
        let mut b = single_router(3);
        let pkt = make_packet(2, 0, 0, &[7, 8, 9]);
        let mut idx = 0;
        let mut got = Vec::new();
        for _ in 0..40 {
            if idx < pkt.len() && b.inject[0].push_nb(pkt[idx]).is_ok() {
                idx += 1;
            }
            b.sim.run_cycles(b.clk, 1);
            while let Some(f) = b.drain[2].pop_nb() {
                got.push(f.data);
            }
        }
        assert_eq!(got, vec![7, 8, 9]);
    }

    #[test]
    fn latency_grows_with_packet_length() {
        // Store-and-forward serializes buffer-then-send: latency of a
        // k-flit packet is ~2k, vs ~k+const for wormhole.
        let mut b4 = single_router(2);
        let lat4 = packet_latency(&mut b4, &make_packet(1, 0, 0, &[0; 4]), 1);
        let mut b16 = single_router(2);
        let lat16 = packet_latency(&mut b16, &make_packet(1, 0, 0, &[0; 16]), 1);
        assert!(
            lat16 >= lat4 + 12,
            "SF latency must scale ~2x flits: {lat4} vs {lat16}"
        );
    }

    #[test]
    fn no_forwarding_before_tail_arrives() {
        let mut b = single_router(2);
        let pkt = make_packet(1, 0, 0, &[1, 2, 3, 4]);
        // Inject all but the tail.
        for f in &pkt[..3] {
            let mut pushed = false;
            for _ in 0..5 {
                if !pushed && b.inject[0].push_nb(*f).is_ok() {
                    pushed = true;
                }
                b.sim.run_cycles(b.clk, 1);
            }
            assert!(pushed);
        }
        for _ in 0..10 {
            b.sim.run_cycles(b.clk, 1);
        }
        assert!(
            b.drain[1].pop_nb().is_none(),
            "flit escaped before tail arrived"
        );
    }

    #[test]
    fn arbitration_alternates_between_inputs() {
        let mut b = single_router(3);
        let pa = make_packet(2, 0, 0, &[1, 2]);
        let pb = make_packet(2, 1, 0, &[3, 4]);
        let (mut ai, mut bi) = (0, 0);
        let mut srcs = Vec::new();
        for _ in 0..60 {
            if ai < pa.len() && b.inject[0].push_nb(pa[ai]).is_ok() {
                ai += 1;
            }
            if bi < pb.len() && b.inject[1].push_nb(pb[bi]).is_ok() {
                bi += 1;
            }
            b.sim.run_cycles(b.clk, 1);
            while let Some(f) = b.drain[2].pop_nb() {
                srcs.push(f.src);
            }
        }
        assert_eq!(srcs.len(), 4);
        // Packets whole, not interleaved.
        let transitions = srcs.windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(transitions, 1, "{srcs:?}");
    }
}
