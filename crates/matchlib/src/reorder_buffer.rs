//! Reorder buffer (Table 2): "queue with in-order reads, out-of-order
//! writes".
//!
//! Producers allocate slots in program order, fill them in any order
//! (e.g. as banked-memory responses return), and the consumer drains
//! completed entries strictly in allocation order. Used by the
//! arbitrated scratchpad to restore response ordering.

use std::collections::VecDeque;

/// Ticket identifying an allocated slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag(u64);

impl Tag {
    /// Raw sequence number (diagnostics only).
    pub fn sequence(self) -> u64 {
        self.0
    }
}

/// Bounded reorder buffer.
///
/// ```
/// use craft_matchlib::ReorderBuffer;
/// let mut rob: ReorderBuffer<&str> = ReorderBuffer::new(4);
/// let t0 = rob.allocate().expect("room");
/// let t1 = rob.allocate().expect("room");
/// rob.write(t1, "second"); // completes out of order
/// assert_eq!(rob.read(), None); // head not ready
/// rob.write(t0, "first");
/// assert_eq!(rob.read(), Some("first"));
/// assert_eq!(rob.read(), Some("second"));
/// ```
#[derive(Debug, Clone)]
pub struct ReorderBuffer<T> {
    slots: VecDeque<Option<T>>,
    head_seq: u64,
    capacity: usize,
}

impl<T> ReorderBuffer<T> {
    /// A buffer with `capacity` in-flight slots.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "reorder buffer capacity must be nonzero");
        ReorderBuffer {
            slots: VecDeque::with_capacity(capacity),
            head_seq: 0,
            capacity,
        }
    }

    /// In-flight (allocated, not yet read) entries.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// True when no more slots can be allocated.
    pub fn is_full(&self) -> bool {
        self.slots.len() == self.capacity
    }

    /// Reserves the next in-order slot, or `None` when full.
    pub fn allocate(&mut self) -> Option<Tag> {
        if self.is_full() {
            return None;
        }
        let tag = Tag(self.head_seq + self.slots.len() as u64);
        self.slots.push_back(None);
        Some(tag)
    }

    /// Fills the slot for `tag` (out of order allowed).
    ///
    /// # Panics
    /// Panics if `tag` is not currently allocated or was already
    /// written — both are protocol violations upstream.
    pub fn write(&mut self, tag: Tag, value: T) {
        let idx = tag
            .0
            .checked_sub(self.head_seq)
            .expect("reorder buffer tag already retired");
        let slot = self
            .slots
            .get_mut(idx as usize)
            .expect("reorder buffer tag not allocated");
        assert!(slot.is_none(), "reorder buffer slot written twice");
        *slot = Some(value);
    }

    /// True when the oldest entry has been written and can be read.
    pub fn head_ready(&self) -> bool {
        matches!(self.slots.front(), Some(Some(_)))
    }

    /// Pops the oldest entry if it has been written; `None` while the
    /// head is still pending (even if younger entries are complete —
    /// the in-order guarantee).
    pub fn read(&mut self) -> Option<T> {
        if self.head_ready() {
            self.head_seq += 1;
            self.slots.pop_front().flatten()
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn strictly_in_order_reads() {
        let mut rob = ReorderBuffer::new(3);
        let tags: Vec<Tag> = (0..3).map(|_| rob.allocate().expect("room")).collect();
        rob.write(tags[2], 2);
        rob.write(tags[1], 1);
        assert_eq!(rob.read(), None);
        rob.write(tags[0], 0);
        assert_eq!(rob.read(), Some(0));
        assert_eq!(rob.read(), Some(1));
        assert_eq!(rob.read(), Some(2));
        assert_eq!(rob.read(), None);
    }

    #[test]
    fn full_blocks_allocation_until_read() {
        let mut rob = ReorderBuffer::new(2);
        let a = rob.allocate().expect("room");
        let _b = rob.allocate().expect("room");
        assert!(rob.allocate().is_none());
        rob.write(a, 10);
        assert_eq!(rob.read(), Some(10));
        assert!(rob.allocate().is_some());
    }

    #[test]
    fn tags_remain_valid_across_wraparound() {
        let mut rob = ReorderBuffer::new(2);
        for round in 0..10u64 {
            let t = rob.allocate().expect("room");
            rob.write(t, round);
            assert_eq!(rob.read(), Some(round));
        }
    }

    #[test]
    #[should_panic(expected = "reorder buffer slot written twice")]
    fn double_write_panics() {
        let mut rob = ReorderBuffer::new(2);
        let t = rob.allocate().expect("room");
        rob.write(t, 1);
        rob.write(t, 2);
    }

    #[test]
    #[should_panic(expected = "reorder buffer tag already retired")]
    fn stale_tag_panics() {
        let mut rob = ReorderBuffer::new(2);
        let t = rob.allocate().expect("room");
        rob.write(t, 1);
        let _ = rob.read();
        rob.write(t, 2);
    }

    proptest! {
        /// Whatever the completion order, reads return values in
        /// allocation order.
        #[test]
        fn completion_order_irrelevant(order in proptest::sample::subsequence((0..8usize).collect::<Vec<_>>(), 8)) {
            let mut completion: Vec<usize> = order;
            let missing: Vec<usize> = (0..8).filter(|i| !completion.contains(i)).collect();
            completion.extend(missing);

            let mut rob = ReorderBuffer::new(8);
            let tags: Vec<Tag> = (0..8).map(|_| rob.allocate().expect("room")).collect();
            for &i in &completion {
                rob.write(tags[i], i);
            }
            let drained: Vec<usize> = std::iter::from_fn(|| rob.read()).collect();
            prop_assert_eq!(drained, (0..8).collect::<Vec<_>>());
        }
    }
}
