//! Configurable FIFO (Table 2, C++ class).
//!
//! A plain software queue with hardware-style full/empty semantics,
//! used as internal state by RTL-style components (routers, arbitrated
//! crossbars). Unlike a [`craft_connections`] channel it has no
//! handshake or commit phase — it mutates immediately.

use std::collections::VecDeque;

/// Bounded FIFO with hardware-style accessors.
///
/// ```
/// use craft_matchlib::Fifo;
/// let mut f = Fifo::new(2);
/// assert!(f.push(1).is_ok());
/// assert!(f.push(2).is_ok());
/// assert!(f.is_full());
/// assert_eq!(f.push(3), Err(3));
/// assert_eq!(f.pop(), Some(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fifo<T> {
    items: VecDeque<T>,
    capacity: usize,
}

impl<T> Fifo<T> {
    /// Creates a FIFO holding at most `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "fifo capacity must be nonzero");
        Fifo {
            items: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Maximum number of items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True when no more items can be pushed.
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Free slots remaining.
    pub fn free(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// Enqueues `v`.
    ///
    /// # Errors
    /// Returns `Err(v)` when full, handing the item back.
    pub fn push(&mut self, v: T) -> Result<(), T> {
        if self.is_full() {
            Err(v)
        } else {
            self.items.push_back(v);
            Ok(())
        }
    }

    /// Dequeues the oldest item, if any.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// The oldest item without removing it.
    pub fn peek(&self) -> Option<&T> {
        self.items.front()
    }

    /// Removes all items.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Iterates oldest-first without consuming.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fifo_ordering() {
        let mut f = Fifo::new(4);
        for i in 0..4 {
            f.push(i).expect("has room");
        }
        assert_eq!(f.pop(), Some(0));
        assert_eq!(f.peek(), Some(&1));
        f.push(9).expect("freed a slot");
        let drained: Vec<i32> = std::iter::from_fn(|| f.pop()).collect();
        assert_eq!(drained, vec![1, 2, 3, 9]);
    }

    #[test]
    fn full_and_free_track_len() {
        let mut f = Fifo::new(3);
        assert_eq!(f.free(), 3);
        f.push(1).expect("room");
        assert_eq!(f.free(), 2);
        assert!(!f.is_full());
        f.push(2).expect("room");
        f.push(3).expect("room");
        assert!(f.is_full());
        assert_eq!(f.free(), 0);
    }

    #[test]
    fn clear_empties() {
        let mut f = Fifo::new(2);
        f.push(1).expect("room");
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.pop(), None);
    }

    #[test]
    #[should_panic(expected = "fifo capacity must be nonzero")]
    fn zero_capacity_panics() {
        let _: Fifo<u8> = Fifo::new(0);
    }

    proptest! {
        /// A FIFO behaves like a bounded VecDeque under any mixed
        /// push/pop sequence.
        #[test]
        fn model_equivalence(ops in proptest::collection::vec(any::<Option<u8>>(), 0..200)) {
            let mut dut = Fifo::new(5);
            let mut model: VecDeque<u8> = VecDeque::new();
            for op in ops {
                match op {
                    Some(v) => {
                        let expect_ok = model.len() < 5;
                        let got = dut.push(v);
                        prop_assert_eq!(got.is_ok(), expect_ok);
                        if expect_ok { model.push_back(v); }
                    }
                    None => {
                        prop_assert_eq!(dut.pop(), model.pop_front());
                    }
                }
                prop_assert_eq!(dut.len(), model.len());
                prop_assert_eq!(dut.is_empty(), model.is_empty());
            }
        }
    }
}
