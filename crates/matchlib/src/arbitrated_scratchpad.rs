//! Arbitrated scratchpad (Table 2): "banked memories with arbitration
//! and queuing".
//!
//! Unlike [`crate::Scratchpad`], conflicting lane accesses are legal:
//! requests queue per bank, a round-robin arbiter serves one request
//! per bank per cycle, and per-lane [`crate::ReorderBuffer`]s restore
//! response order (bank service order is otherwise out-of-order with
//! respect to a lane's issue order).

use crate::{Arbiter, Fifo, MemArray, ReorderBuffer};
use std::fmt;

/// A scratchpad request issued by a lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpRequest<T> {
    /// Read the word at the flat address.
    Read {
        /// Flat word address.
        addr: usize,
    },
    /// Write `value` at the flat address.
    Write {
        /// Flat word address.
        addr: usize,
        /// Word to store.
        value: T,
    },
}

impl<T> SpRequest<T> {
    fn addr(&self) -> usize {
        match self {
            SpRequest::Read { addr } | SpRequest::Write { addr, .. } => *addr,
        }
    }
}

/// A completed scratchpad operation, delivered in issue order per lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpResponse<T> {
    /// Data returned by a read.
    ReadData(T),
    /// Acknowledgement of a write.
    WriteAck,
}

/// Banked, arbitrated, queuing scratchpad.
///
/// Drive it one cycle at a time: [`issue`](Self::issue) enqueues lane
/// requests, [`tick`](Self::tick) performs one cycle of bank service,
/// and [`response`](Self::response) drains per-lane in-order results.
///
/// ```
/// use craft_matchlib::{ArbitratedScratchpad, SpRequest, SpResponse};
/// let mut sp: ArbitratedScratchpad<u32> = ArbitratedScratchpad::new(2, 16, 2, 4);
/// // Both lanes hit bank 0 — legal here, resolved by arbitration.
/// sp.issue(0, SpRequest::Write { addr: 0, value: 7 }).expect("queue room");
/// sp.issue(1, SpRequest::Read { addr: 0 }).expect("queue room");
/// for _ in 0..4 { sp.tick(); }
/// assert_eq!(sp.response(0), Some(SpResponse::WriteAck));
/// assert!(matches!(sp.response(1), Some(SpResponse::ReadData(_))));
/// ```
pub struct ArbitratedScratchpad<T> {
    banks: Vec<MemArray<T>>,
    /// Per-bank request queues of (lane, rob tag index within lane, request).
    bank_queues: Vec<Fifo<(usize, crate::Tag, SpRequest<T>)>>,
    arbiters: Vec<Arbiter>,
    /// Per-lane reorder buffers restoring issue order.
    robs: Vec<ReorderBuffer<SpResponse<T>>>,
    /// Lifetime served requests (for stats).
    served: u64,
}

impl<T: Copy + Default> ArbitratedScratchpad<T> {
    /// Creates a scratchpad with `banks` banks of `bank_depth` words,
    /// serving `lanes` requesters, with per-bank queues of
    /// `queue_depth`.
    ///
    /// # Panics
    /// Panics if any parameter is zero or `lanes > 64`.
    pub fn new(banks: usize, bank_depth: usize, lanes: usize, queue_depth: usize) -> Self {
        assert!(banks > 0, "need at least one bank");
        assert!((1..=64).contains(&lanes), "lanes must be 1..=64");
        ArbitratedScratchpad {
            banks: (0..banks).map(|_| MemArray::new(bank_depth)).collect(),
            bank_queues: (0..banks).map(|_| Fifo::new(queue_depth)).collect(),
            arbiters: (0..banks).map(|_| Arbiter::new(lanes)).collect(),
            robs: (0..lanes)
                .map(|_| ReorderBuffer::new(queue_depth * banks))
                .collect(),
            served: 0,
        }
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks.len()
    }

    /// Total requests served over the scratchpad's lifetime.
    pub fn served(&self) -> u64 {
        self.served
    }

    fn split(&self, addr: usize) -> (usize, usize) {
        (addr % self.banks.len(), addr / self.banks.len())
    }

    /// Enqueues `req` from `lane`.
    ///
    /// # Errors
    /// Returns the request back when the target bank's queue or the
    /// lane's reorder buffer is full (backpressure).
    ///
    /// # Panics
    /// Panics if `lane` is out of range or the address exceeds
    /// capacity.
    pub fn issue(&mut self, lane: usize, req: SpRequest<T>) -> Result<(), SpRequest<T>> {
        let (bank, row) = self.split(req.addr());
        assert!(row < self.banks[bank].depth(), "address beyond capacity");
        if self.bank_queues[bank].is_full() || self.robs[lane].is_full() {
            return Err(req);
        }
        let tag = self.robs[lane].allocate().expect("rob checked not full");
        self.bank_queues[bank]
            .push((lane, tag, req))
            .ok()
            .expect("queue checked not full");
        Ok(())
    }

    /// One cycle of bank service: each bank completes at most one
    /// queued request (arbitrated round-robin over requesting lanes).
    pub fn tick(&mut self) {
        for bank in 0..self.banks.len() {
            // Build the request mask over lanes whose *head-of-queue*
            // entry belongs to them. Per-bank queues are FIFO, so the
            // arbiter only matters when heads of multiple lanes collide
            // in one cycle; we serve the queue head (FIFO per bank) and
            // use the arbiter to break same-cycle insert ties at issue
            // time. Here: serve head.
            let Some(&(lane, _, _)) = self.bank_queues[bank].peek() else {
                continue;
            };
            let _ = self.arbiters[bank].pick(1 << lane);
            let (lane, tag, req) = self.bank_queues[bank].pop().expect("peeked head");
            let (_, row) = self.split(req.addr());
            let resp = match req {
                SpRequest::Read { .. } => SpResponse::ReadData(self.banks[bank].read(row)),
                SpRequest::Write { value, .. } => {
                    self.banks[bank].write(row, value);
                    SpResponse::WriteAck
                }
            };
            self.robs[lane].write(tag, resp);
            self.served += 1;
        }
    }

    /// Pops the next in-issue-order response for `lane`, if complete.
    ///
    /// # Panics
    /// Panics if `lane` is out of range.
    pub fn response(&mut self, lane: usize) -> Option<SpResponse<T>> {
        self.robs[lane].read()
    }

    /// Direct backdoor read for testbenches.
    pub fn debug_read(&self, addr: usize) -> T {
        let (bank, row) = self.split(addr);
        self.banks[bank].read(row)
    }

    /// Direct backdoor bulk load for testbenches.
    pub fn debug_load(&mut self, base: usize, values: &[T]) {
        for (i, &v) in values.iter().enumerate() {
            let (bank, row) = self.split(base + i);
            self.banks[bank].write(row, v);
        }
    }
}

impl<T> fmt::Debug for ArbitratedScratchpad<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ArbitratedScratchpad")
            .field("banks", &self.banks.len())
            .field("served", &self.served)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn conflicting_requests_serialize_but_complete() {
        let mut sp: ArbitratedScratchpad<u32> = ArbitratedScratchpad::new(2, 8, 4, 4);
        // All four lanes write to bank 0 (addresses 0,2,4,6).
        for lane in 0..4 {
            sp.issue(
                lane,
                SpRequest::Write {
                    addr: lane * 2,
                    value: lane as u32 + 100,
                },
            )
            .expect("queue room");
        }
        // One bank serves one per cycle: needs 4 ticks.
        for _ in 0..4 {
            sp.tick();
        }
        for lane in 0..4 {
            assert_eq!(sp.response(lane), Some(SpResponse::WriteAck));
            assert_eq!(sp.debug_read(lane * 2), lane as u32 + 100);
        }
    }

    #[test]
    fn per_lane_responses_in_issue_order() {
        let mut sp: ArbitratedScratchpad<u32> = ArbitratedScratchpad::new(4, 8, 1, 8);
        sp.debug_load(0, &[10, 11, 12, 13]);
        // Lane 0 issues reads to different banks; bank service order is
        // per-bank but responses must return in issue order.
        for addr in [3, 0, 2, 1] {
            sp.issue(0, SpRequest::Read { addr }).expect("room");
        }
        for _ in 0..4 {
            sp.tick();
        }
        let got: Vec<_> = std::iter::from_fn(|| sp.response(0)).collect();
        assert_eq!(
            got,
            vec![
                SpResponse::ReadData(13),
                SpResponse::ReadData(10),
                SpResponse::ReadData(12),
                SpResponse::ReadData(11),
            ]
        );
    }

    #[test]
    fn backpressure_on_full_queue() {
        let mut sp: ArbitratedScratchpad<u32> = ArbitratedScratchpad::new(1, 8, 2, 2);
        assert!(sp.issue(0, SpRequest::Read { addr: 0 }).is_ok());
        assert!(sp.issue(0, SpRequest::Read { addr: 1 }).is_ok());
        assert!(sp.issue(1, SpRequest::Read { addr: 2 }).is_err());
        sp.tick();
        assert!(sp.issue(1, SpRequest::Read { addr: 2 }).is_ok());
    }

    #[test]
    fn throughput_one_per_bank_per_cycle() {
        let mut sp: ArbitratedScratchpad<u32> = ArbitratedScratchpad::new(4, 16, 4, 4);
        // Conflict-free: each lane owns a bank.
        for lane in 0..4 {
            sp.issue(lane, SpRequest::Read { addr: lane })
                .expect("room");
        }
        sp.tick();
        for lane in 0..4 {
            assert!(
                sp.response(lane).is_some(),
                "lane {lane} not served in 1 cycle"
            );
        }
    }

    proptest! {
        /// Writes followed by reads round-trip through arbitration for
        /// any address pattern.
        #[test]
        fn write_read_round_trip(addrs in proptest::collection::vec(0usize..32, 1..8)) {
            let mut sp: ArbitratedScratchpad<u64> = ArbitratedScratchpad::new(4, 8, 1, 8);
            for (i, &a) in addrs.iter().enumerate() {
                // Later writes to the same address overwrite earlier.
                sp.issue(0, SpRequest::Write { addr: a, value: i as u64 }).expect("room");
                for _ in 0..4 { sp.tick(); }
                prop_assert_eq!(sp.response(0), Some(SpResponse::WriteAck));
            }
            for (i, &a) in addrs.iter().enumerate().rev() {
                // The LAST write to address a wins.
                let last = addrs.iter().rposition(|&x| x == a).expect("present");
                if last != i { continue; }
                sp.issue(0, SpRequest::Read { addr: a }).expect("room");
                for _ in 0..4 { sp.tick(); }
                prop_assert_eq!(sp.response(0), Some(SpResponse::ReadData(last as u64)));
            }
        }
    }
}
