//! Combinational N-to-N crossbar (Table 2, C++ function), in both the
//! `dst`-loop and `src`-loop coding styles of the paper's §2.4 case
//! study.
//!
//! Functionally the two are identical permutation routines; the HLS
//! consequences differ sharply (the src-loop form implies per-output
//! priority decoding and a dependency path from every `dst[src]`
//! control input to every output — a ~25% area penalty measured by the
//! paper). `craft-hls` reproduces that structural difference; here we
//! provide both functional forms plus validity checking.

/// Routes `inputs[src]` to output `dst[src]` — the paper's *src-loop*
/// form. When several sources name the same destination the **highest
/// source index wins** (the priority the paper says HLS must decode).
/// Outputs not named by any source hold `T::default()`.
///
/// # Panics
/// Panics if `dst.len() != inputs.len()` or any destination index is
/// out of range.
///
/// ```
/// use craft_matchlib::crossbar;
/// let out = crossbar::route_src_loop(&[10, 20, 30], &[2, 0, 1]);
/// assert_eq!(out, vec![20, 30, 10]);
/// ```
pub fn route_src_loop<T: Copy + Default>(inputs: &[T], dst: &[usize]) -> Vec<T> {
    assert_eq!(inputs.len(), dst.len(), "dst map length mismatch");
    let lanes = inputs.len();
    let mut out = vec![T::default(); lanes];
    for src in 0..lanes {
        assert!(dst[src] < lanes, "destination index out of range");
        out[dst[src]] = inputs[src];
    }
    out
}

/// Routes `inputs[src[dst]]` to output `dst` — the paper's *dst-loop*
/// form. Every output names exactly one source, so no priority logic
/// is implied.
///
/// # Panics
/// Panics if `src.len() != inputs.len()` or any source index is out of
/// range.
///
/// ```
/// use craft_matchlib::crossbar;
/// let out = crossbar::route_dst_loop(&[10, 20, 30], &[1, 2, 0]);
/// assert_eq!(out, vec![20, 30, 10]);
/// ```
pub fn route_dst_loop<T: Copy>(inputs: &[T], src: &[usize]) -> Vec<T> {
    assert_eq!(inputs.len(), src.len(), "src map length mismatch");
    let lanes = inputs.len();
    (0..lanes)
        .map(|dst| {
            assert!(src[dst] < lanes, "source index out of range");
            inputs[src[dst]]
        })
        .collect()
}

/// Inverts a permutation `dst` map (src→dst) into a `src` map
/// (dst→src), the transformation that converts a src-loop crossbar
/// configuration into the cheaper dst-loop form.
///
/// # Errors
/// Returns `Err(InvertPermutationError)` if `dst` is not a permutation
/// (duplicate or out-of-range destinations).
pub fn invert_permutation(dst: &[usize]) -> Result<Vec<usize>, InvertPermutationError> {
    let n = dst.len();
    let mut src = vec![usize::MAX; n];
    for (s, &d) in dst.iter().enumerate() {
        if d >= n {
            return Err(InvertPermutationError::OutOfRange { src: s, dst: d });
        }
        if src[d] != usize::MAX {
            return Err(InvertPermutationError::Duplicate { dst: d });
        }
        src[d] = s;
    }
    Ok(src)
}

/// Failure to invert a destination map that is not a permutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvertPermutationError {
    /// Source `src` names destination `dst` beyond the lane count.
    OutOfRange {
        /// Offending source lane.
        src: usize,
        /// Its out-of-range destination.
        dst: usize,
    },
    /// Two sources name destination `dst`.
    Duplicate {
        /// The doubly-targeted destination.
        dst: usize,
    },
}

impl std::fmt::Display for InvertPermutationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvertPermutationError::OutOfRange { src, dst } => {
                write!(f, "source {src} routes to out-of-range destination {dst}")
            }
            InvertPermutationError::Duplicate { dst } => {
                write!(f, "destination {dst} targeted by multiple sources")
            }
        }
    }
}

impl std::error::Error for InvertPermutationError {}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn both_forms_agree_on_permutations() {
        let inputs = [5u32, 6, 7, 8];
        let dst = [3, 1, 0, 2];
        let src = invert_permutation(&dst).expect("valid permutation");
        assert_eq!(route_src_loop(&inputs, &dst), route_dst_loop(&inputs, &src));
    }

    #[test]
    fn src_loop_priority_highest_index_wins() {
        // Sources 0 and 2 both target output 1; source 2 wins.
        let out = route_src_loop(&[10u32, 20, 30], &[1, 0, 1]);
        assert_eq!(out[1], 30);
        assert_eq!(out[0], 20);
        assert_eq!(out[2], 0); // untargeted output holds default
    }

    #[test]
    fn identity_route() {
        let inputs = [1u8, 2, 3];
        assert_eq!(route_dst_loop(&inputs, &[0, 1, 2]), inputs.to_vec());
    }

    #[test]
    fn invert_detects_duplicates_and_range() {
        assert_eq!(
            invert_permutation(&[0, 0]),
            Err(InvertPermutationError::Duplicate { dst: 0 })
        );
        assert_eq!(
            invert_permutation(&[5]),
            Err(InvertPermutationError::OutOfRange { src: 0, dst: 5 })
        );
    }

    #[test]
    #[should_panic(expected = "destination index out of range")]
    fn src_loop_bad_destination_panics() {
        let _ = route_src_loop(&[1u8], &[3]);
    }

    proptest! {
        /// For any true permutation the two loop styles are equivalent
        /// (the paper's premise: identical function, different RTL).
        #[test]
        fn forms_equivalent(perm in proptest::sample::subsequence((0..8usize).collect::<Vec<_>>(), 8)) {
            // subsequence of all 8 elements == shuffled? No — build a
            // permutation deterministically from the sample instead.
            let mut dst: Vec<usize> = perm;
            let missing: Vec<usize> = (0..8).filter(|i| !dst.contains(i)).collect();
            dst.extend(missing);
            let inputs: Vec<u32> = (100..108).collect();
            let src = invert_permutation(&dst).expect("constructed permutation");
            prop_assert_eq!(route_src_loop(&inputs, &dst), route_dst_loop(&inputs, &src));
        }

        /// Inversion round-trips.
        #[test]
        fn invert_round_trip(seed in 0u64..1000) {
            // Cheap Fisher-Yates with a seeded LCG.
            let n = 16usize;
            let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let mut dst: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                dst.swap(i, j);
            }
            let src = invert_permutation(&dst).expect("permutation");
            let back = invert_permutation(&src).expect("inverse is a permutation");
            prop_assert_eq!(back, dst);
        }
    }
}
