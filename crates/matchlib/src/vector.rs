//! Vector helper container with vector operations (Table 2).
//!
//! The paper's PEs use "the MatchLib vector library to design the
//! datapath unit"; the prototype SoC's compute kernels (vector
//! multiply, dot-product, reduction) are built from these operations.

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul};

/// Fixed-length numeric vector with element-wise and reduction ops.
///
/// ```
/// use craft_matchlib::Vector;
/// let a = Vector::from(vec![1i64, 2, 3]);
/// let b = Vector::from(vec![4i64, 5, 6]);
/// assert_eq!(a.dot(&b), 32);
/// assert_eq!(a.add(&b).as_slice(), &[5, 7, 9]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Vector<T> {
    elems: Vec<T>,
}

impl<T> Vector<T> {
    /// Length in elements.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// True when the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Read-only view of the elements.
    pub fn as_slice(&self) -> &[T] {
        &self.elems
    }

    /// Iterates over elements.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.elems.iter()
    }
}

impl<T: Copy + Default> Vector<T> {
    /// A vector of `n` default-valued elements.
    pub fn zeros(n: usize) -> Self {
        Vector {
            elems: vec![T::default(); n],
        }
    }
}

impl<T: Copy + Add<Output = T> + Mul<Output = T> + Default> Vector<T> {
    /// Element-wise sum.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn add(&self, rhs: &Self) -> Self {
        self.zip_with(rhs, |a, b| a + b)
    }

    /// Element-wise (Hadamard) product — the PE "vector multiply"
    /// kernel.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn mul(&self, rhs: &Self) -> Self {
        self.zip_with(rhs, |a, b| a * b)
    }

    /// Multiply-accumulate: `self + a * b`, element-wise.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn mac(&self, a: &Self, b: &Self) -> Self {
        assert_eq!(self.len(), a.len(), "vector length mismatch");
        assert_eq!(a.len(), b.len(), "vector length mismatch");
        Vector {
            elems: self
                .elems
                .iter()
                .zip(&a.elems)
                .zip(&b.elems)
                .map(|((&acc, &x), &y)| acc + x * y)
                .collect(),
        }
    }

    /// Sum of all elements — the PE "reduction" kernel.
    pub fn reduce(&self) -> T {
        self.elems.iter().fold(T::default(), |acc, &x| acc + x)
    }

    /// Inner product — the PE "dot-product" kernel.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn dot(&self, rhs: &Self) -> T {
        self.mul(rhs).reduce()
    }

    /// Scales every element by `k`.
    pub fn scale(&self, k: T) -> Self {
        Vector {
            elems: self.elems.iter().map(|&x| x * k).collect(),
        }
    }

    fn zip_with(&self, rhs: &Self, f: impl Fn(T, T) -> T) -> Self {
        assert_eq!(self.len(), rhs.len(), "vector length mismatch");
        Vector {
            elems: self
                .elems
                .iter()
                .zip(&rhs.elems)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }
}

impl<T: Copy + Ord> Vector<T> {
    /// Largest element, if any.
    pub fn max(&self) -> Option<T> {
        self.elems.iter().copied().max()
    }

    /// Smallest element, if any.
    pub fn min(&self) -> Option<T> {
        self.elems.iter().copied().min()
    }
}

impl<T> From<Vec<T>> for Vector<T> {
    fn from(elems: Vec<T>) -> Self {
        Vector { elems }
    }
}

impl<T> FromIterator<T> for Vector<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Vector {
            elems: iter.into_iter().collect(),
        }
    }
}

impl<T> Extend<T> for Vector<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        self.elems.extend(iter);
    }
}

impl<T> IntoIterator for Vector<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;
    fn into_iter(self) -> Self::IntoIter {
        self.elems.into_iter()
    }
}

impl<'a, T> IntoIterator for &'a Vector<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.elems.iter()
    }
}

impl<T> Index<usize> for Vector<T> {
    type Output = T;
    fn index(&self, i: usize) -> &T {
        &self.elems[i]
    }
}

impl<T> IndexMut<usize> for Vector<T> {
    fn index_mut(&mut self, i: usize) -> &mut T {
        &mut self.elems[i]
    }
}

impl<T: fmt::Display> fmt::Display for Vector<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, e) in self.elems.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn elementwise_ops() {
        let a = Vector::from(vec![1i64, -2, 3]);
        let b = Vector::from(vec![10i64, 20, 30]);
        assert_eq!(a.add(&b).as_slice(), &[11, 18, 33]);
        assert_eq!(a.mul(&b).as_slice(), &[10, -40, 90]);
        assert_eq!(a.scale(2).as_slice(), &[2, -4, 6]);
    }

    #[test]
    fn reductions() {
        let a = Vector::from(vec![1i64, 2, 3, 4]);
        assert_eq!(a.reduce(), 10);
        assert_eq!(a.max(), Some(4));
        assert_eq!(a.min(), Some(1));
        assert_eq!(Vector::<i64>::zeros(0).max(), None);
    }

    #[test]
    fn mac_matches_manual() {
        let acc = Vector::from(vec![1i64, 1]);
        let a = Vector::from(vec![2i64, 3]);
        let b = Vector::from(vec![4i64, 5]);
        assert_eq!(acc.mac(&a, &b).as_slice(), &[9, 16]);
    }

    #[test]
    fn collection_traits() {
        let v: Vector<u32> = (0..3).collect();
        assert_eq!(v.as_slice(), &[0, 1, 2]);
        let mut w = v.clone();
        w.extend(3..5);
        assert_eq!(w.len(), 5);
        let back: Vec<u32> = w.into_iter().collect();
        assert_eq!(back, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "vector length mismatch")]
    fn length_mismatch_panics() {
        let a = Vector::from(vec![1i64]);
        let b = Vector::from(vec![1i64, 2]);
        let _ = a.add(&b);
    }

    proptest! {
        /// dot(a, b) == sum_i a_i * b_i (reference model).
        #[test]
        fn dot_matches_reference(
            a in proptest::collection::vec(-1000i64..1000, 0..32),
        ) {
            let b: Vec<i64> = a.iter().map(|x| x.wrapping_mul(3) % 100).collect();
            let expect: i64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            let va = Vector::from(a);
            let vb = Vector::from(b);
            prop_assert_eq!(va.dot(&vb), expect);
        }

        /// Reduction is invariant under reversal (commutativity check).
        #[test]
        fn reduce_order_invariant(a in proptest::collection::vec(-1000i64..1000, 0..64)) {
            let mut rev = a.clone();
            rev.reverse();
            prop_assert_eq!(Vector::from(a).reduce(), Vector::from(rev).reduce());
        }
    }
}
