//! 1-hot encoders and decoders (Table 2, C++ functions).

/// Decodes an index into a one-hot mask: `decode(3) == 0b1000`.
///
/// # Panics
/// Panics if `index >= 64`.
///
/// ```
/// use craft_matchlib::onehot;
/// assert_eq!(onehot::decode(0), 0b1);
/// assert_eq!(onehot::decode(5), 0b100000);
/// ```
pub fn decode(index: usize) -> u64 {
    assert!(index < 64, "one-hot index must be < 64");
    1u64 << index
}

/// Encodes a one-hot mask into its index.
///
/// Returns `None` when the mask is zero or has more than one bit set —
/// exposing the invalid-input case instead of silently picking a bit.
///
/// ```
/// use craft_matchlib::onehot;
/// assert_eq!(onehot::encode(0b0100), Some(2));
/// assert_eq!(onehot::encode(0b0110), None);
/// assert_eq!(onehot::encode(0), None);
/// ```
pub fn encode(mask: u64) -> Option<usize> {
    if mask != 0 && mask.is_power_of_two() {
        Some(mask.trailing_zeros() as usize)
    } else {
        None
    }
}

/// Priority-encodes a mask: index of the lowest set bit, if any. This
/// is the hardware priority encoder a `src`-loop crossbar implies
/// (§2.4).
///
/// ```
/// use craft_matchlib::onehot;
/// assert_eq!(onehot::priority_encode(0b0110), Some(1));
/// ```
pub fn priority_encode(mask: u64) -> Option<usize> {
    if mask == 0 {
        None
    } else {
        Some(mask.trailing_zeros() as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn decode_all_positions() {
        for i in 0..64 {
            assert_eq!(decode(i), 1u64 << i);
        }
    }

    #[test]
    fn encode_rejects_multi_hot_and_zero() {
        assert_eq!(encode(0), None);
        assert_eq!(encode(0b11), None);
        assert_eq!(encode(u64::MAX), None);
    }

    #[test]
    fn priority_encoder_picks_lowest() {
        assert_eq!(priority_encode(0), None);
        assert_eq!(priority_encode(0b1000_0100), Some(2));
        assert_eq!(priority_encode(u64::MAX), Some(0));
    }

    #[test]
    #[should_panic(expected = "one-hot index must be < 64")]
    fn decode_out_of_range_panics() {
        let _ = decode(64);
    }

    proptest! {
        /// encode/decode round-trip for every index.
        #[test]
        fn round_trip(i in 0usize..64) {
            prop_assert_eq!(encode(decode(i)), Some(i));
        }
    }
}
