//! Arbitrated crossbar (Table 2): "crossbar with conflict arbitration
//! and queuing" — the design-under-test of the paper's Fig. 3
//! performance-accuracy experiment.
//!
//! Two implementations share the same microarchitecture (per-input
//! queues, per-output round-robin arbiters, single-cycle switch):
//!
//! * [`ArbitratedCrossbarRtl`] — the HLS-generated-RTL stand-in: an
//!   explicit wire-level FSM that evaluates every port every cycle.
//! * [`ArbitratedCrossbarTlm`] — the loosely-timed SystemC-process
//!   stand-in: a single transactional loop that funnels every port
//!   operation through a [`Transactor`]. With
//!   [`TimingModel::SimAccurate`] its elapsed cycles match the RTL
//!   exactly; with [`TimingModel::SignalAccurate`] each port routine
//!   costs an extra handshake-wait cycle, so elapsed cycles inflate
//!   with the number of ports — reproducing Fig. 3.

use crate::{Arbiter, Fifo};
use craft_connections::{In, Out, TimingModel, Transactor};
use craft_sim::{Component, TickCtx};

/// A message travelling through an arbitrated crossbar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XbarMsg<T> {
    /// Output lane the message is destined for.
    pub dst: usize,
    /// Payload.
    pub data: T,
}

/// Shared microarchitectural state and routing logic.
struct XbarCore<T> {
    lanes: usize,
    input_queues: Vec<Fifo<XbarMsg<T>>>,
    arbiters: Vec<Arbiter>,
    /// Messages transferred to outputs (lifetime total).
    transfers: u64,
}

impl<T> XbarCore<T> {
    fn new(lanes: usize, queue_depth: usize) -> Self {
        assert!(
            (1..=64).contains(&lanes),
            "crossbar lane count must be 1..=64"
        );
        XbarCore {
            lanes,
            input_queues: (0..lanes).map(|_| Fifo::new(queue_depth)).collect(),
            arbiters: (0..lanes).map(|_| Arbiter::new(lanes)).collect(),
            transfers: 0,
        }
    }

    /// Request mask for `output`: inputs whose queue head targets it.
    fn requests_for(&self, output: usize) -> u64 {
        let mut mask = 0u64;
        for (i, q) in self.input_queues.iter().enumerate() {
            if let Some(head) = q.peek() {
                if head.dst == output {
                    mask |= 1 << i;
                }
            }
        }
        mask
    }
}

/// Wire-level (RTL-equivalent) arbitrated crossbar component.
pub struct ArbitratedCrossbarRtl<T> {
    name: String,
    core: XbarCore<T>,
    inputs: Vec<In<XbarMsg<T>>>,
    outputs: Vec<Out<T>>,
    /// Modeled handshake wires, re-evaluated every cycle like generated
    /// RTL would (also serves as the wall-clock cost of RTL simulation).
    valid_wires: Vec<bool>,
    ready_wires: Vec<bool>,
}

impl<T: Copy + 'static> ArbitratedCrossbarRtl<T> {
    /// Builds an N-lane crossbar over the given port vectors.
    ///
    /// # Panics
    /// Panics if the port vectors disagree in length, the lane count is
    /// outside 1..=64, or `queue_depth` is zero.
    pub fn new(
        name: impl Into<String>,
        inputs: Vec<In<XbarMsg<T>>>,
        outputs: Vec<Out<T>>,
        queue_depth: usize,
    ) -> Self {
        assert_eq!(inputs.len(), outputs.len(), "crossbar must be square");
        let lanes = inputs.len();
        ArbitratedCrossbarRtl {
            name: name.into(),
            core: XbarCore::new(lanes, queue_depth),
            inputs,
            outputs,
            valid_wires: vec![false; lanes],
            ready_wires: vec![false; lanes],
        }
    }

    /// Total messages delivered to outputs.
    pub fn transfers(&self) -> u64 {
        self.core.transfers
    }
}

impl<T: Copy + 'static> Component for ArbitratedCrossbarRtl<T> {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _ctx: &mut TickCtx<'_>) {
        let lanes = self.core.lanes;
        // Input stage: model the valid/ready wires, then latch at most
        // one message per input into its queue.
        for i in 0..lanes {
            self.valid_wires[i] = self.inputs[i].can_pop();
            self.ready_wires[i] = !self.core.input_queues[i].is_full();
            if self.valid_wires[i] && self.ready_wires[i] {
                if let Some(msg) = self.inputs[i].pop_nb() {
                    self.core.input_queues[i]
                        .push(msg)
                        .ok()
                        .expect("queue had room");
                }
            }
        }
        // Switch stage: one grant per output per cycle.
        for out in 0..lanes {
            let requests = self.core.requests_for(out);
            if requests == 0 || !self.outputs[out].can_push() {
                continue;
            }
            if let Some(src) = self.core.arbiters[out].pick(requests) {
                let msg = self.core.input_queues[src]
                    .pop()
                    .expect("granted input has a head");
                self.outputs[out]
                    .push_nb(msg.data)
                    .ok()
                    .expect("output was ready");
                self.core.transfers += 1;
            }
        }
    }
}

/// Loosely-timed (single SystemC process) arbitrated crossbar.
pub struct ArbitratedCrossbarTlm<T> {
    name: String,
    core: XbarCore<T>,
    inputs: Vec<In<XbarMsg<T>>>,
    outputs: Vec<Out<T>>,
    transactor: Transactor,
}

impl<T: Copy + 'static> ArbitratedCrossbarTlm<T> {
    /// Builds the transaction-level crossbar with the given timing
    /// model.
    ///
    /// # Panics
    /// Same conditions as [`ArbitratedCrossbarRtl::new`].
    pub fn new(
        name: impl Into<String>,
        inputs: Vec<In<XbarMsg<T>>>,
        outputs: Vec<Out<T>>,
        queue_depth: usize,
        model: TimingModel,
    ) -> Self {
        assert_eq!(inputs.len(), outputs.len(), "crossbar must be square");
        let lanes = inputs.len();
        ArbitratedCrossbarTlm {
            name: name.into(),
            core: XbarCore::new(lanes, queue_depth),
            inputs,
            outputs,
            transactor: Transactor::new(model),
        }
    }

    /// Total messages delivered to outputs.
    pub fn transfers(&self) -> u64 {
        self.core.transfers
    }
}

impl<T: Copy + 'static> Component for ArbitratedCrossbarTlm<T> {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _ctx: &mut TickCtx<'_>) {
        // A pending handshake wait() consumes the whole cycle: this is
        // where the signal-accurate model loses time.
        if self.transactor.busy() {
            return;
        }
        let lanes = self.core.lanes;
        // The single process polls every input port in sequence...
        for i in 0..lanes {
            if !self.core.input_queues[i].is_full() {
                if let Some(msg) = self.transactor.pop_nb(&mut self.inputs[i]) {
                    self.core.input_queues[i]
                        .push(msg)
                        .ok()
                        .expect("queue had room");
                }
            }
        }
        // ...then arbitrates and pushes each granted output.
        for out in 0..lanes {
            let requests = self.core.requests_for(out);
            if requests == 0 || !self.outputs[out].can_push() {
                continue;
            }
            if let Some(src) = self.core.arbiters[out].pick(requests) {
                let msg = self.core.input_queues[src]
                    .pop()
                    .expect("granted input has a head");
                self.transactor
                    .push_nb(&mut self.outputs[out], msg.data)
                    .ok()
                    .expect("output was ready");
                self.core.transfers += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use craft_connections::{channel, ChannelKind};
    use craft_sim::{ClockSpec, Picoseconds, Simulator};

    /// Builds an N-lane crossbar harness; returns injection ports,
    /// drain ports and the simulator.
    struct Harness {
        sim: Simulator,
        clk: craft_sim::ClockId,
        inject: Vec<Out<XbarMsg<u32>>>,
        drain: Vec<In<u32>>,
    }

    fn harness(lanes: usize, rtl: bool, model: TimingModel) -> Harness {
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("c", Picoseconds(1000)));
        let mut inject = Vec::new();
        let mut xbar_in = Vec::new();
        let mut xbar_out = Vec::new();
        let mut drain = Vec::new();
        for i in 0..lanes {
            let (tx, rx, h) = channel::<XbarMsg<u32>>(format!("in{i}"), ChannelKind::Buffer(2));
            sim.add_sequential(clk, h.sequential());
            inject.push(tx);
            xbar_in.push(rx);
            let (tx2, rx2, h2) = channel::<u32>(format!("out{i}"), ChannelKind::Buffer(2));
            sim.add_sequential(clk, h2.sequential());
            xbar_out.push(tx2);
            drain.push(rx2);
        }
        if rtl {
            sim.add_component(
                clk,
                ArbitratedCrossbarRtl::new("xbar", xbar_in, xbar_out, 2),
            );
        } else {
            sim.add_component(
                clk,
                ArbitratedCrossbarTlm::new("xbar", xbar_in, xbar_out, 2, model),
            );
        }
        Harness {
            sim,
            clk,
            inject,
            drain,
        }
    }

    /// Latency of a single message through an otherwise idle crossbar.
    fn single_message_latency(h: &mut Harness, src: usize, dst: usize) -> u64 {
        h.inject[src]
            .push_nb(XbarMsg { dst, data: 99 })
            .expect("input empty");
        let mut cycles = 0;
        loop {
            h.sim.run_cycles(h.clk, 1);
            cycles += 1;
            if let Some(v) = h.drain[dst].pop_nb() {
                assert_eq!(v, 99);
                return cycles;
            }
            assert!(cycles < 200, "message lost in crossbar");
        }
    }

    #[test]
    fn rtl_routes_to_correct_output() {
        let mut h = harness(4, true, TimingModel::SimAccurate);
        for dst in 0..4 {
            let lat = single_message_latency(&mut h, 0, dst);
            assert!(lat <= 4, "latency {lat} too high");
        }
    }

    #[test]
    fn sim_accurate_matches_rtl_latency() {
        for lanes in [2, 4, 8, 16] {
            let mut rtl = harness(lanes, true, TimingModel::SimAccurate);
            let mut tlm = harness(lanes, false, TimingModel::SimAccurate);
            for t in 0..10 {
                let src = t % lanes;
                let dst = (t * 7 + 3) % lanes;
                let lr = single_message_latency(&mut rtl, src, dst);
                let lt = single_message_latency(&mut tlm, src, dst);
                assert_eq!(lr, lt, "lanes={lanes} txn={t}");
            }
        }
    }

    #[test]
    fn signal_accurate_latency_grows_with_ports() {
        let mut lat_by_lanes = Vec::new();
        for lanes in [2, 4, 8, 16] {
            let mut h = harness(lanes, false, TimingModel::SignalAccurate);
            let mut total = 0;
            for t in 0..10 {
                total += single_message_latency(&mut h, t % lanes, (t * 3 + 1) % lanes);
            }
            lat_by_lanes.push(total as f64 / 10.0);
        }
        // Strictly increasing and super-constant growth.
        assert!(lat_by_lanes.windows(2).all(|w| w[1] > w[0]));
        assert!(
            lat_by_lanes[3] > 2.0 * lat_by_lanes[0],
            "16-lane latency {} should far exceed 2-lane {}",
            lat_by_lanes[3],
            lat_by_lanes[0]
        );
    }

    #[test]
    fn conflicting_inputs_all_delivered() {
        let mut h = harness(4, true, TimingModel::SimAccurate);
        // All four inputs target output 2.
        for (i, port) in h.inject.iter_mut().enumerate() {
            port.push_nb(XbarMsg {
                dst: 2,
                data: i as u32,
            })
            .expect("room");
        }
        let mut got = Vec::new();
        for _ in 0..30 {
            h.sim.run_cycles(h.clk, 1);
            if let Some(v) = h.drain[2].pop_nb() {
                got.push(v);
            }
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn round_robin_is_fair_under_sustained_conflict() {
        let mut h = harness(2, true, TimingModel::SimAccurate);
        let mut delivered = [0u32; 2];
        for _ in 0..60 {
            for (i, port) in h.inject.iter_mut().enumerate() {
                let _ = port.push_nb(XbarMsg {
                    dst: 0,
                    data: i as u32,
                });
            }
            h.sim.run_cycles(h.clk, 1);
            if let Some(v) = h.drain[0].pop_nb() {
                delivered[v as usize] += 1;
            }
        }
        let (a, b) = (delivered[0] as i64, delivered[1] as i64);
        assert!((a - b).abs() <= 2, "unfair grants: {a} vs {b}");
        assert!(a + b >= 40, "throughput collapsed: {}", a + b);
    }

    #[test]
    #[should_panic(expected = "crossbar must be square")]
    fn mismatched_ports_panic() {
        let (_tx, rx, _h) = channel::<XbarMsg<u32>>("i", ChannelKind::Buffer(1));
        let xbar: ArbitratedCrossbarRtl<u32> = ArbitratedCrossbarRtl::new("x", vec![rx], vec![], 1);
        let _ = xbar;
    }
}
