//! Banked scratchpad with crossbar (Table 2, SystemC module).
//!
//! `Scratchpad` offers single-cycle vector access to `B` banks through
//! a conflict-free crossbar: each lane's address must map to a distinct
//! bank (`addr % B`). Conflicting access patterns are an error the
//! caller must resolve (that is what [`crate::ArbitratedScratchpad`]
//! with its queuing exists for).

use crate::crossbar;
use crate::MemArray;
use std::error::Error;
use std::fmt;

/// Error returned when a vector access maps two lanes onto one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankConflictError {
    /// Bank index that was targeted by more than one lane.
    pub bank: usize,
}

impl fmt::Display for BankConflictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bank conflict on bank {}", self.bank)
    }
}

impl Error for BankConflictError {}

/// Banked memory with a lane-to-bank crossbar.
///
/// ```
/// use craft_matchlib::Scratchpad;
/// let mut sp: Scratchpad<u32> = Scratchpad::new(4, 16);
/// sp.write_vec(&[0, 1, 2, 3], &[10, 11, 12, 13])?;
/// assert_eq!(sp.read_vec(&[3, 2, 1, 0])?, vec![13, 12, 11, 10]);
/// # Ok::<(), craft_matchlib::BankConflictError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Scratchpad<T> {
    banks: Vec<MemArray<T>>,
}

impl<T: Copy + Default> Scratchpad<T> {
    /// A scratchpad of `banks` banks, each `bank_depth` words deep.
    /// Flat addresses are interleaved: `addr % banks` selects the bank,
    /// `addr / banks` the row.
    ///
    /// # Panics
    /// Panics if `banks` or `bank_depth` is zero.
    pub fn new(banks: usize, bank_depth: usize) -> Self {
        assert!(banks > 0, "need at least one bank");
        Scratchpad {
            banks: (0..banks).map(|_| MemArray::new(bank_depth)).collect(),
        }
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks.len()
    }

    /// Total capacity in words.
    pub fn capacity(&self) -> usize {
        self.banks.len() * self.banks[0].depth()
    }

    fn split(&self, addr: usize) -> (usize, usize) {
        (addr % self.banks.len(), addr / self.banks.len())
    }

    /// Checks a lane->bank mapping for conflicts and returns the bank
    /// selected by each lane.
    fn bank_map(&self, addrs: &[usize]) -> Result<Vec<usize>, BankConflictError> {
        let mut used = vec![false; self.banks.len()];
        let mut map = Vec::with_capacity(addrs.len());
        for &a in addrs {
            let (bank, _) = self.split(a);
            if used[bank] {
                return Err(BankConflictError { bank });
            }
            used[bank] = true;
            map.push(bank);
        }
        Ok(map)
    }

    /// Single-word read at flat address `addr`.
    ///
    /// # Panics
    /// Panics if `addr` exceeds capacity.
    pub fn read(&self, addr: usize) -> T {
        let (bank, row) = self.split(addr);
        self.banks[bank].read(row)
    }

    /// Single-word write at flat address `addr`.
    ///
    /// # Panics
    /// Panics if `addr` exceeds capacity.
    pub fn write(&mut self, addr: usize, value: T) {
        let (bank, row) = self.split(addr);
        self.banks[bank].write(row, value);
    }

    /// Vector read: one word per lane, all in the same cycle.
    ///
    /// # Errors
    /// Returns [`BankConflictError`] if two lanes map to one bank; the
    /// scratchpad is unchanged.
    pub fn read_vec(&self, addrs: &[usize]) -> Result<Vec<T>, BankConflictError> {
        // The crossbar routes bank read data back to lane order: model
        // it explicitly with the MatchLib crossbar function.
        let lane_to_bank = self.bank_map(addrs)?;
        let bank_data: Vec<T> = addrs.iter().map(|&a| self.read(a)).collect();
        // Identity permutation here since we gathered in lane order;
        // keep the crossbar call to mirror the hardware structure.
        let idx: Vec<usize> = (0..bank_data.len()).collect();
        let _ = lane_to_bank;
        Ok(crossbar::route_dst_loop(&bank_data, &idx))
    }

    /// Vector write: one word per lane, all in the same cycle.
    ///
    /// # Errors
    /// Returns [`BankConflictError`] if two lanes map to one bank; the
    /// scratchpad is unchanged.
    ///
    /// # Panics
    /// Panics if `addrs` and `values` differ in length.
    pub fn write_vec(&mut self, addrs: &[usize], values: &[T]) -> Result<(), BankConflictError> {
        assert_eq!(addrs.len(), values.len(), "lane count mismatch");
        self.bank_map(addrs)?; // validate before mutating
        for (&a, &v) in addrs.iter().zip(values) {
            self.write(a, v);
        }
        Ok(())
    }

    /// Bulk-load `values` at consecutive flat addresses from `base`.
    ///
    /// # Panics
    /// Panics if the region exceeds capacity.
    pub fn load(&mut self, base: usize, values: &[T]) {
        for (i, &v) in values.iter().enumerate() {
            self.write(base + i, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn interleaved_addressing() {
        let mut sp: Scratchpad<u32> = Scratchpad::new(4, 4);
        for a in 0..16 {
            sp.write(a, a as u32 * 10);
        }
        for a in 0..16 {
            assert_eq!(sp.read(a), a as u32 * 10);
        }
        assert_eq!(sp.capacity(), 16);
    }

    #[test]
    fn conflict_detection() {
        let sp: Scratchpad<u32> = Scratchpad::new(4, 4);
        // Addresses 1 and 5 both map to bank 1.
        assert_eq!(
            sp.read_vec(&[0, 1, 5, 3]),
            Err(BankConflictError { bank: 1 })
        );
        // Distinct banks are fine.
        assert!(sp.read_vec(&[0, 1, 2, 3]).is_ok());
    }

    #[test]
    fn failed_write_vec_leaves_memory_unchanged() {
        let mut sp: Scratchpad<u32> = Scratchpad::new(2, 4);
        sp.write(0, 99);
        assert!(sp.write_vec(&[0, 2], &[1, 2]).is_err()); // both bank 0
        assert_eq!(sp.read(0), 99);
    }

    #[test]
    fn strided_access_hits_distinct_banks() {
        // Stride-1 vectors across `banks` lanes are always conflict-free.
        let mut sp: Scratchpad<u64> = Scratchpad::new(8, 8);
        sp.load(0, &(0..64).collect::<Vec<u64>>());
        let addrs: Vec<usize> = (8..16).collect();
        assert_eq!(
            sp.read_vec(&addrs).expect("stride 1"),
            (8..16).collect::<Vec<u64>>()
        );
    }

    proptest! {
        /// read_vec returns exactly the per-address scalar reads
        /// whenever the pattern is conflict-free.
        #[test]
        fn vector_read_matches_scalar(base in 0usize..8) {
            let mut sp: Scratchpad<u32> = Scratchpad::new(4, 8);
            for a in 0..32 { sp.write(a, (a * 7) as u32); }
            let addrs: Vec<usize> = (0..4).map(|i| base + i).collect();
            let vec = sp.read_vec(&addrs).expect("stride-1 is conflict-free");
            let scalar: Vec<u32> = addrs.iter().map(|&a| sp.read(a)).collect();
            prop_assert_eq!(vec, scalar);
        }
    }
}
