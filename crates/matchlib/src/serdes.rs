//! Serializer/Deserializer (Table 2): "N-bit packets to/from M cycles
//! of (N/M)-bit packets".
//!
//! Used in the prototype SoC's PE router interface to narrow wide
//! scratchpad words onto NoC link widths. Both the pure chunking
//! functions and clocked [`craft_sim::Component`] wrappers are
//! provided.

use craft_connections::{In, Out};
use craft_sim::{Component, TickCtx};
use std::collections::VecDeque;

/// Splits an `n_bits`-wide word into `ceil(n_bits / chunk_bits)`
/// chunks, least-significant chunk first.
///
/// # Panics
/// Panics if `chunk_bits` is 0 or > 64, or `n_bits` is 0 or > 64.
///
/// ```
/// use craft_matchlib::serdes;
/// assert_eq!(serdes::serialize_word(0xABCD, 16, 4), vec![0xD, 0xC, 0xB, 0xA]);
/// ```
pub fn serialize_word(word: u64, n_bits: u32, chunk_bits: u32) -> Vec<u64> {
    assert!((1..=64).contains(&n_bits), "word width must be 1..=64");
    assert!((1..=64).contains(&chunk_bits), "chunk width must be 1..=64");
    let mask = if chunk_bits == 64 {
        u64::MAX
    } else {
        (1 << chunk_bits) - 1
    };
    let chunks = n_bits.div_ceil(chunk_bits);
    (0..chunks)
        .map(|i| (word >> (i * chunk_bits)) & mask)
        .collect()
}

/// Reassembles chunks produced by [`serialize_word`].
///
/// # Panics
/// Panics on invalid widths or if the chunk count disagrees with
/// `n_bits / chunk_bits`.
pub fn deserialize_word(chunks: &[u64], n_bits: u32, chunk_bits: u32) -> u64 {
    assert!((1..=64).contains(&n_bits), "word width must be 1..=64");
    assert!((1..=64).contains(&chunk_bits), "chunk width must be 1..=64");
    assert_eq!(
        chunks.len() as u32,
        n_bits.div_ceil(chunk_bits),
        "chunk count mismatch"
    );
    let mut word = 0u64;
    for (i, &c) in chunks.iter().enumerate() {
        word |= c << (i as u32 * chunk_bits);
    }
    if n_bits < 64 {
        word &= (1 << n_bits) - 1;
    }
    word
}

/// Clocked serializer: pops an `n_bits` word, pushes one `chunk_bits`
/// chunk per cycle.
#[derive(Debug)]
pub struct Serializer {
    name: String,
    input: In<u64>,
    output: Out<u64>,
    n_bits: u32,
    chunk_bits: u32,
    pending: VecDeque<u64>,
}

impl Serializer {
    /// Wires a serializer converting `n_bits` words to `chunk_bits`
    /// chunks.
    ///
    /// # Panics
    /// Panics on invalid widths (see [`serialize_word`]).
    pub fn new(
        name: impl Into<String>,
        input: In<u64>,
        output: Out<u64>,
        n_bits: u32,
        chunk_bits: u32,
    ) -> Self {
        // Validate eagerly.
        let _ = serialize_word(0, n_bits, chunk_bits);
        Serializer {
            name: name.into(),
            input,
            output,
            n_bits,
            chunk_bits,
            pending: VecDeque::new(),
        }
    }
}

impl Component for Serializer {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _ctx: &mut TickCtx<'_>) {
        if self.pending.is_empty() {
            if let Some(word) = self.input.pop_nb() {
                self.pending
                    .extend(serialize_word(word, self.n_bits, self.chunk_bits));
            }
        }
        if let Some(&chunk) = self.pending.front() {
            if self.output.push_nb(chunk).is_ok() {
                self.pending.pop_front();
            }
        }
    }
}

/// Clocked deserializer: accumulates `chunk_bits` chunks and pushes the
/// reassembled `n_bits` word.
#[derive(Debug)]
pub struct Deserializer {
    name: String,
    input: In<u64>,
    output: Out<u64>,
    n_bits: u32,
    chunk_bits: u32,
    accum: Vec<u64>,
    ready_word: Option<u64>,
}

impl Deserializer {
    /// Wires a deserializer reassembling `n_bits` words from
    /// `chunk_bits` chunks.
    ///
    /// # Panics
    /// Panics on invalid widths (see [`deserialize_word`]).
    pub fn new(
        name: impl Into<String>,
        input: In<u64>,
        output: Out<u64>,
        n_bits: u32,
        chunk_bits: u32,
    ) -> Self {
        let _ = serialize_word(0, n_bits, chunk_bits);
        Deserializer {
            name: name.into(),
            input,
            output,
            n_bits,
            chunk_bits,
            accum: Vec::new(),
            ready_word: None,
        }
    }
}

impl Component for Deserializer {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _ctx: &mut TickCtx<'_>) {
        let needed = self.n_bits.div_ceil(self.chunk_bits) as usize;
        if self.ready_word.is_none() {
            if let Some(chunk) = self.input.pop_nb() {
                self.accum.push(chunk);
                if self.accum.len() == needed {
                    self.ready_word =
                        Some(deserialize_word(&self.accum, self.n_bits, self.chunk_bits));
                    self.accum.clear();
                }
            }
        }
        if let Some(word) = self.ready_word.take() {
            if self.output.push_nb(word).is_err() {
                self.ready_word = Some(word);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use craft_connections::{channel, ChannelKind};
    use craft_sim::{ClockSpec, Picoseconds, Simulator};
    use proptest::prelude::*;

    #[test]
    fn chunking_round_trip_exact_division() {
        let w = 0xDEAD_BEEF_u64;
        let chunks = serialize_word(w, 32, 8);
        assert_eq!(chunks, vec![0xEF, 0xBE, 0xAD, 0xDE]);
        assert_eq!(deserialize_word(&chunks, 32, 8), w);
    }

    #[test]
    fn chunking_with_remainder_bits() {
        // 10 bits in 4-bit chunks -> 3 chunks.
        let chunks = serialize_word(0b11_0101_1010, 10, 4);
        assert_eq!(chunks.len(), 3);
        assert_eq!(deserialize_word(&chunks, 10, 4), 0b11_0101_1010);
    }

    #[test]
    fn serializer_deserializer_pipeline() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("c", Picoseconds(1000)));
        let (mut word_tx, word_rx, h1) = channel::<u64>("words", ChannelKind::Buffer(4));
        let (chunk_tx, chunk_rx, h2) = channel::<u64>("chunks", ChannelKind::Buffer(2));
        let (out_tx, mut out_rx, h3) = channel::<u64>("out", ChannelKind::Buffer(4));
        for h in [h1.sequential(), h2.sequential(), h3.sequential()] {
            sim.add_sequential(clk, h);
        }
        sim.add_component(clk, Serializer::new("ser", word_rx, chunk_tx, 64, 16));
        sim.add_component(clk, Deserializer::new("des", chunk_rx, out_tx, 64, 16));

        let words = [0x0123_4567_89AB_CDEFu64, u64::MAX, 0, 42];
        let mut sent = 0;
        let mut got = Vec::new();
        for _ in 0..200 {
            if sent < words.len() && word_tx.push_nb(words[sent]).is_ok() {
                sent += 1;
            }
            sim.run_cycles(clk, 1);
            if let Some(w) = out_rx.pop_nb() {
                got.push(w);
            }
        }
        assert_eq!(got, words.to_vec());
    }

    #[test]
    #[should_panic(expected = "chunk count mismatch")]
    fn wrong_chunk_count_panics() {
        let _ = deserialize_word(&[1, 2, 3], 32, 8);
    }

    proptest! {
        /// serialize/deserialize round-trips for arbitrary widths.
        #[test]
        fn round_trip(word: u64, n_bits in 1u32..=64, chunk in 1u32..=64) {
            let masked = if n_bits == 64 { word } else { word & ((1 << n_bits) - 1) };
            let chunks = serialize_word(masked, n_bits, chunk);
            prop_assert_eq!(deserialize_word(&chunks, n_bits, chunk), masked);
        }
    }
}
