//! # craft-matchlib — Modular Approach To Circuits and Hardware Library
//!
//! Rust reproduction of **MatchLib** (paper §2.4, Table 2): an
//! object-oriented library of commonly used hardware components. The
//! paper's three component classes map as:
//!
//! * C++ functions → pure Rust functions ([`crossbar`], [`onehot`],
//!   [`float`], [`serdes`] chunking),
//! * C++ classes → plain structs ([`Fifo`], [`Arbiter`], [`MemArray`],
//!   [`Vector`], [`ReorderBuffer`], [`Cache`], [`Scratchpad`],
//!   [`ArbitratedScratchpad`]),
//! * SystemC modules → [`craft_sim::Component`] implementations
//!   ([`ArbitratedCrossbarRtl`]/[`ArbitratedCrossbarTlm`],
//!   [`serdes::Serializer`]/[`serdes::Deserializer`], the [`router`]s,
//!   and the [`axi`] components).
//!
//! Everything communicates over [`craft_connections`] LI channels, so
//! the same component can sit behind a combinational link inside an
//! accelerator or behind a NoC in a many-core — the paper's reuse
//! argument.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arbiter;
mod arbitrated_crossbar;
mod arbitrated_scratchpad;
pub mod axi;
mod cache;
mod cache_ctrl;
pub mod crossbar;
mod fifo;
pub mod float;
mod mem_array;
pub mod onehot;
mod reorder_buffer;
pub mod router;
mod scratchpad;
pub mod serdes;
mod vector;

pub use arbiter::Arbiter;
pub use arbitrated_crossbar::{ArbitratedCrossbarRtl, ArbitratedCrossbarTlm, XbarMsg};
pub use arbitrated_scratchpad::{ArbitratedScratchpad, SpRequest, SpResponse};
pub use cache::{Cache, CacheConfig, CacheOutcome, CacheStats};
pub use cache_ctrl::{CacheController, CacheReq, CacheResp, LineFill, LineMemory, LineOp};
pub use fifo::Fifo;
pub use float::FloatFormat;
pub use mem_array::MemArray;
pub use reorder_buffer::{ReorderBuffer, Tag};
pub use scratchpad::{BankConflictError, Scratchpad};
pub use vector::Vector;
