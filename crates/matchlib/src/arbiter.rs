//! Round-robin arbiter (Table 2, C++ class).
//!
//! "Includes state for storing priorities and a pick method for
//! selecting among its inputs and updating its state." Requests are a
//! bitmask; the arbiter grants the requesting input closest (going
//! upward, wrapping) to the rotating priority pointer, then advances
//! the pointer past the granted input so every requester is served in
//! bounded time.

/// Round-robin 1-out-of-N selector.
///
/// ```
/// use craft_matchlib::Arbiter;
/// let mut arb = Arbiter::new(4);
/// assert_eq!(arb.pick(0b1010), Some(1)); // lowest from priority 0
/// assert_eq!(arb.pick(0b1010), Some(3)); // pointer moved past 1
/// assert_eq!(arb.pick(0b1010), Some(1)); // wraps
/// assert_eq!(arb.pick(0), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arbiter {
    n: usize,
    /// Index with highest priority for the next pick.
    next: usize,
}

impl Arbiter {
    /// An arbiter over `n` requesters (1..=64).
    ///
    /// # Panics
    /// Panics if `n` is zero or greater than 64.
    pub fn new(n: usize) -> Self {
        assert!((1..=64).contains(&n), "arbiter width must be 1..=64");
        Arbiter { n, next: 0 }
    }

    /// Number of requesters.
    pub fn width(&self) -> usize {
        self.n
    }

    /// Grants one of the requesters set in `requests` (bit `i` =
    /// requester `i`), updating the rotating priority. Returns `None`
    /// when no request is pending.
    ///
    /// # Panics
    /// Panics if a bit at or above the arbiter width is set.
    pub fn pick(&mut self, requests: u64) -> Option<usize> {
        let grant = self.peek_grant(requests)?;
        self.next = (grant + 1) % self.n;
        Some(grant)
    }

    /// The input [`pick`](Self::pick) would grant, without updating
    /// priority state.
    ///
    /// # Panics
    /// Panics if a bit at or above the arbiter width is set.
    pub fn peek_grant(&self, requests: u64) -> Option<usize> {
        if self.n < 64 {
            assert!(
                requests < (1u64 << self.n),
                "request bit beyond arbiter width {}",
                self.n
            );
        }
        if requests == 0 {
            return None;
        }
        for off in 0..self.n {
            let i = (self.next + off) % self.n;
            if requests & (1 << i) != 0 {
                return Some(i);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_requester_always_granted() {
        let mut a = Arbiter::new(8);
        for _ in 0..10 {
            assert_eq!(a.pick(0b100), Some(2));
        }
    }

    #[test]
    fn fairness_all_requesting() {
        let mut a = Arbiter::new(4);
        let grants: Vec<usize> = (0..8).map(|_| a.pick(0b1111).expect("req")).collect();
        assert_eq!(grants, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut a = Arbiter::new(4);
        assert_eq!(a.peek_grant(0b1111), Some(0));
        assert_eq!(a.peek_grant(0b1111), Some(0));
        assert_eq!(a.pick(0b1111), Some(0));
        assert_eq!(a.peek_grant(0b1111), Some(1));
    }

    #[test]
    fn no_requests_no_grant_no_state_change() {
        let mut a = Arbiter::new(3);
        assert_eq!(a.pick(0), None);
        assert_eq!(a.pick(0b001), Some(0));
    }

    #[test]
    fn width_64_works() {
        let mut a = Arbiter::new(64);
        assert_eq!(a.pick(1u64 << 63), Some(63));
        assert_eq!(a.pick(u64::MAX), Some(0));
    }

    #[test]
    #[should_panic(expected = "request bit beyond arbiter width")]
    fn out_of_width_request_panics() {
        let mut a = Arbiter::new(3);
        let _ = a.pick(0b1000);
    }

    proptest! {
        /// The grant is always a requesting input.
        #[test]
        fn grant_subset_of_requests(reqs in proptest::collection::vec(0u64..16, 1..50)) {
            let mut a = Arbiter::new(4);
            for r in reqs {
                if let Some(g) = a.pick(r) {
                    prop_assert!(r & (1 << g) != 0);
                } else {
                    prop_assert_eq!(r, 0);
                }
            }
        }

        /// Starvation freedom: with requester `i` continuously
        /// requesting (among others), it is granted within `n` picks.
        #[test]
        fn bounded_wait(others in 0u64..16, i in 0usize..4) {
            let mut a = Arbiter::new(4);
            let reqs = others | (1 << i);
            let granted_within = (0..4).any(|_| a.pick(reqs) == Some(i));
            prop_assert!(granted_within);
        }
    }
}
