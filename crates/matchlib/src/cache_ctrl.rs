//! Cache controller component: the SystemC-module form of Table 2's
//! cache. Wraps the [`crate::Cache`] class with LI channel ports — a
//! request/response interface toward the core and a line-granular
//! read/write interface toward backing memory — so it can drop into
//! any Connections design.
//!
//! Timing: hits respond the cycle after the request; misses issue a
//! line fill (and a writeback when the victim is dirty) to the memory
//! side and retry once the fill returns.

use crate::cache::{Cache, CacheConfig, CacheOutcome, CacheStats};
use craft_connections::{In, Out};
use craft_sim::{Component, TickCtx};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// A core-side cache request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheReq {
    /// Read the word at `addr`.
    Read {
        /// Word address.
        addr: usize,
    },
    /// Write `data` at `addr`.
    Write {
        /// Word address.
        addr: usize,
        /// Word to store.
        data: u64,
    },
}

impl CacheReq {
    fn addr(&self) -> usize {
        match self {
            CacheReq::Read { addr } | CacheReq::Write { addr, .. } => *addr,
        }
    }
}

/// A core-side cache response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheResp {
    /// Read data.
    Data(u64),
    /// Write acknowledged.
    WriteAck,
}

/// A memory-side line operation issued by the controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineOp {
    /// Fetch the line starting at `base`.
    Fill {
        /// Line base word address.
        base: usize,
    },
    /// Write back a dirty line.
    WriteBack {
        /// Line base word address.
        base: usize,
        /// Line contents.
        data: Vec<u64>,
    },
}

/// A memory-side line reply (fills only; writebacks are posted).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineFill {
    /// Line base word address.
    pub base: usize,
    /// Line contents.
    pub data: Vec<u64>,
}

enum CtrlState {
    Ready,
    /// Waiting for a fill for the stalled request.
    MissWait {
        req: CacheReq,
    },
    /// Response computed, waiting for the output channel.
    Respond {
        resp: CacheResp,
    },
}

/// The cache controller component.
pub struct CacheController {
    name: String,
    cache: Cache<u64>,
    req_in: In<CacheReq>,
    resp_out: Out<CacheResp>,
    mem_out: Out<LineOp>,
    fill_in: In<LineFill>,
    state: CtrlState,
    /// Writebacks waiting for the memory channel.
    wb_queue: VecDeque<LineOp>,
    stats: Rc<RefCell<CacheStats>>,
}

impl CacheController {
    /// Builds a controller with the given geometry over its four
    /// channel ports.
    ///
    /// # Panics
    /// Panics if `config` is invalid (see [`CacheConfig::validate`]).
    pub fn new(
        name: impl Into<String>,
        config: CacheConfig,
        req_in: In<CacheReq>,
        resp_out: Out<CacheResp>,
        mem_out: Out<LineOp>,
        fill_in: In<LineFill>,
    ) -> Self {
        CacheController {
            name: name.into(),
            cache: Cache::new(config),
            req_in,
            resp_out,
            mem_out,
            fill_in,
            state: CtrlState::Ready,
            wb_queue: VecDeque::new(),
            stats: Rc::new(RefCell::new(CacheStats::default())),
        }
    }

    /// Shared hit/miss statistics handle.
    pub fn stats_handle(&self) -> Rc<RefCell<CacheStats>> {
        Rc::clone(&self.stats)
    }

    fn attempt(&mut self, req: CacheReq) -> CtrlState {
        let write = match req {
            CacheReq::Read { .. } => None,
            CacheReq::Write { data, .. } => Some(data),
        };
        match self.cache.access(req.addr(), write) {
            CacheOutcome::Hit { data } => CtrlState::Respond {
                resp: match data {
                    Some(v) => CacheResp::Data(v),
                    None => CacheResp::WriteAck,
                },
            },
            CacheOutcome::Miss {
                fill_base,
                writeback,
            } => {
                if let Some((base, data)) = writeback {
                    self.wb_queue.push_back(LineOp::WriteBack { base, data });
                }
                self.wb_queue.push_back(LineOp::Fill { base: fill_base });
                CtrlState::MissWait { req }
            }
        }
    }
}

impl Component for CacheController {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _ctx: &mut TickCtx<'_>) {
        // Drain memory-side operations, one per cycle.
        if let Some(op) = self.wb_queue.front() {
            if self.mem_out.push_nb(op.clone()).is_ok() {
                self.wb_queue.pop_front();
            }
        }

        let state = std::mem::replace(&mut self.state, CtrlState::Ready);
        self.state = match state {
            CtrlState::Ready => match self.req_in.pop_nb() {
                Some(req) => self.attempt(req),
                None => CtrlState::Ready,
            },
            CtrlState::MissWait { req } => match self.fill_in.pop_nb() {
                Some(fill) => {
                    self.cache.fill(fill.base, fill.data);
                    // Retry: must hit now.
                    match self.attempt(req) {
                        CtrlState::MissWait { .. } => {
                            panic!("fill for {} did not satisfy the miss", fill.base)
                        }
                        next => next,
                    }
                }
                None => CtrlState::MissWait { req },
            },
            CtrlState::Respond { resp } => {
                if self.resp_out.push_nb(resp).is_ok() {
                    CtrlState::Ready
                } else {
                    CtrlState::Respond { resp }
                }
            }
        };
        *self.stats.borrow_mut() = self.cache.stats();
    }
}

/// A simple line-granular memory servicing [`LineOp`]s — the backing
/// store a [`CacheController`] talks to in tests and examples.
pub struct LineMemory {
    name: String,
    mem: crate::MemArray<u64>,
    line_words: usize,
    ops_in: In<LineOp>,
    fills_out: Out<LineFill>,
    /// Fixed service latency in cycles per fill.
    latency: u32,
    pending: VecDeque<(u32, LineFill)>,
    cycle: u32,
}

impl LineMemory {
    /// Builds a backing memory of `words` words serving `line_words`
    /// lines with `latency` cycles per fill.
    ///
    /// # Panics
    /// Panics if geometry is zero-sized.
    pub fn new(
        name: impl Into<String>,
        words: usize,
        line_words: usize,
        latency: u32,
        ops_in: In<LineOp>,
        fills_out: Out<LineFill>,
    ) -> Self {
        assert!(line_words > 0, "line must be nonzero");
        LineMemory {
            name: name.into(),
            mem: crate::MemArray::new(words),
            line_words,
            ops_in,
            fills_out,
            latency,
            pending: VecDeque::new(),
            cycle: 0,
        }
    }

    /// Backdoor load for testbenches.
    pub fn debug_load(&mut self, base: usize, values: &[u64]) {
        self.mem.load(base, values);
    }

    /// Backdoor read for testbenches.
    pub fn debug_read(&self, addr: usize) -> u64 {
        self.mem.read(addr)
    }
}

impl Component for LineMemory {
    fn name(&self) -> &str {
        &self.name
    }

    fn tick(&mut self, _ctx: &mut TickCtx<'_>) {
        self.cycle += 1;
        if let Some(op) = self.ops_in.pop_nb() {
            match op {
                LineOp::Fill { base } => {
                    let data: Vec<u64> = (0..self.line_words)
                        .map(|i| self.mem.read(base + i))
                        .collect();
                    self.pending
                        .push_back((self.cycle + self.latency, LineFill { base, data }));
                }
                LineOp::WriteBack { base, data } => {
                    for (i, &v) in data.iter().enumerate() {
                        self.mem.write(base + i, v);
                    }
                }
            }
        }
        if let Some(&(ready, _)) = self.pending.front() {
            if self.cycle >= ready {
                let (_, fill) = self.pending.front().expect("peeked").clone();
                if self.fills_out.push_nb(fill).is_ok() {
                    self.pending.pop_front();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use craft_connections::{channel, ChannelKind};
    use craft_sim::{ClockSpec, Picoseconds, Simulator};

    struct Harness {
        sim: Simulator,
        clk: craft_sim::ClockId,
        req: Out<CacheReq>,
        resp: In<CacheResp>,
        stats: Rc<RefCell<CacheStats>>,
    }

    fn harness(latency: u32) -> Harness {
        let mut sim = Simulator::new();
        let clk = sim.add_clock(ClockSpec::new("c", Picoseconds::new(909)));
        let (req_tx, req_rx, h1) = channel::<CacheReq>("req", ChannelKind::Buffer(2));
        let (resp_tx, resp_rx, h2) = channel::<CacheResp>("resp", ChannelKind::Buffer(2));
        let (mem_tx, mem_rx, h3) = channel::<LineOp>("memop", ChannelKind::Buffer(2));
        let (fill_tx, fill_rx, h4) = channel::<LineFill>("fill", ChannelKind::Buffer(2));
        for h in [
            h1.sequential(),
            h2.sequential(),
            h3.sequential(),
            h4.sequential(),
        ] {
            sim.add_sequential(clk, h);
        }
        let ctrl = CacheController::new(
            "l1",
            CacheConfig {
                line_words: 4,
                capacity_words: 32,
                associativity: 2,
            },
            req_rx,
            resp_tx,
            mem_tx,
            fill_rx,
        );
        let stats = ctrl.stats_handle();
        let mut mem = LineMemory::new("dram", 256, 4, latency, mem_rx, fill_tx);
        mem.debug_load(0, &(0..256).map(|i| i * 3).collect::<Vec<u64>>());
        sim.add_component(clk, ctrl);
        sim.add_component(clk, mem);
        Harness {
            sim,
            clk,
            req: req_tx,
            resp: resp_rx,
            stats,
        }
    }

    fn transact(h: &mut Harness, req: CacheReq) -> (CacheResp, u64) {
        h.req.push_nb(req).expect("request port idle");
        let mut cycles = 0;
        loop {
            h.sim.run_cycles(h.clk, 1);
            cycles += 1;
            if let Some(r) = h.resp.pop_nb() {
                return (r, cycles);
            }
            assert!(cycles < 500, "cache transaction lost");
        }
    }

    #[test]
    fn miss_fetches_line_then_hits() {
        let mut h = harness(4);
        let (r, miss_cycles) = transact(&mut h, CacheReq::Read { addr: 10 });
        assert_eq!(r, CacheResp::Data(30));
        let (r2, hit_cycles) = transact(&mut h, CacheReq::Read { addr: 11 });
        assert_eq!(r2, CacheResp::Data(33));
        assert!(
            hit_cycles < miss_cycles,
            "hit ({hit_cycles}) must be faster than miss ({miss_cycles})"
        );
        let s = *h.stats.borrow();
        assert_eq!(s.misses, 1);
        assert!(s.hits >= 2); // retry-hit + second access
    }

    #[test]
    fn dirty_victim_written_back_to_memory() {
        let mut h = harness(2);
        // Write into set 0 (addr 0), then touch the two other lines
        // that map there in a 2-way 4-set cache to evict it.
        let (r, _) = transact(&mut h, CacheReq::Write { addr: 0, data: 999 });
        assert_eq!(r, CacheResp::WriteAck);
        let _ = transact(&mut h, CacheReq::Read { addr: 16 });
        let _ = transact(&mut h, CacheReq::Read { addr: 32 });
        // Read addr 0 back: it must round-trip through memory intact.
        let (r, _) = transact(&mut h, CacheReq::Read { addr: 0 });
        assert_eq!(r, CacheResp::Data(999));
    }

    #[test]
    fn memory_latency_shows_in_miss_time() {
        let mut slow = harness(20);
        let (_, slow_cycles) = transact(&mut slow, CacheReq::Read { addr: 40 });
        let mut fast = harness(1);
        let (_, fast_cycles) = transact(&mut fast, CacheReq::Read { addr: 40 });
        assert!(
            slow_cycles >= fast_cycles + 15,
            "fill latency must dominate: {slow_cycles} vs {fast_cycles}"
        );
    }

    #[test]
    fn sequential_stream_mostly_hits() {
        let mut h = harness(2);
        for addr in 0..32 {
            let (r, _) = transact(&mut h, CacheReq::Read { addr });
            assert_eq!(r, CacheResp::Data(addr as u64 * 3));
        }
        let s = *h.stats.borrow();
        assert_eq!(s.misses, 8, "one miss per 4-word line");
    }
}
