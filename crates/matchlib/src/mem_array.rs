//! Abstract memory class (Table 2): "an array of data as internal
//! state with read and write methods".
//!
//! Used directly for global-memory banks in the prototype SoC and as
//! the storage behind scratchpads and caches.

/// Word-addressed memory array.
///
/// ```
/// use craft_matchlib::MemArray;
/// let mut m: MemArray<u32> = MemArray::new(16);
/// m.write(3, 77);
/// assert_eq!(m.read(3), 77);
/// assert_eq!(m.read(4), 0); // default-initialized
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemArray<T> {
    data: Vec<T>,
}

impl<T: Copy + Default> MemArray<T> {
    /// A memory of `depth` words, default-initialized.
    ///
    /// # Panics
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> Self {
        assert!(depth > 0, "memory depth must be nonzero");
        MemArray {
            data: vec![T::default(); depth],
        }
    }

    /// Builds a memory from initial contents.
    pub fn from_contents(data: Vec<T>) -> Self {
        assert!(!data.is_empty(), "memory depth must be nonzero");
        MemArray { data }
    }

    /// Number of words.
    pub fn depth(&self) -> usize {
        self.data.len()
    }

    /// Reads the word at `addr`.
    ///
    /// # Panics
    /// Panics if `addr` is out of range.
    pub fn read(&self, addr: usize) -> T {
        assert!(addr < self.data.len(), "mem_array read out of range");
        self.data[addr]
    }

    /// Writes `value` at `addr`, returning the previous word
    /// ([C-INTERMEDIATE]).
    ///
    /// # Panics
    /// Panics if `addr` is out of range.
    pub fn write(&mut self, addr: usize, value: T) -> T {
        assert!(addr < self.data.len(), "mem_array write out of range");
        std::mem::replace(&mut self.data[addr], value)
    }

    /// Bulk-loads `values` starting at `base`.
    ///
    /// # Panics
    /// Panics if the region exceeds the memory.
    pub fn load(&mut self, base: usize, values: &[T]) {
        assert!(
            base + values.len() <= self.data.len(),
            "mem_array load out of range"
        );
        self.data[base..base + values.len()].copy_from_slice(values);
    }

    /// Read-only view of the backing storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_returns_previous() {
        let mut m: MemArray<u8> = MemArray::new(4);
        assert_eq!(m.write(0, 5), 0);
        assert_eq!(m.write(0, 9), 5);
    }

    #[test]
    fn load_and_slice() {
        let mut m: MemArray<u16> = MemArray::new(8);
        m.load(2, &[10, 11, 12]);
        assert_eq!(&m.as_slice()[2..5], &[10, 11, 12]);
        assert_eq!(m.read(1), 0);
    }

    #[test]
    fn from_contents_round_trip() {
        let m = MemArray::from_contents(vec![1u32, 2, 3]);
        assert_eq!(m.depth(), 3);
        assert_eq!(m.read(2), 3);
    }

    #[test]
    #[should_panic(expected = "mem_array read out of range")]
    fn read_out_of_range_panics() {
        let m: MemArray<u8> = MemArray::new(2);
        let _ = m.read(2);
    }

    #[test]
    #[should_panic(expected = "mem_array load out of range")]
    fn load_out_of_range_panics() {
        let mut m: MemArray<u8> = MemArray::new(2);
        m.load(1, &[1, 2]);
    }
}
