//! Global clock-tree cost model — the synchronous baseline that
//! fine-grained GALS eliminates (§3.1).
//!
//! A balanced H-tree-ish distribution: fanout-4 buffer levels down to
//! the flop sinks, wire RC per level proportional to the span, and a
//! skew margin that grows with insertion delay through on-chip
//! variation (OCV). The skew margin is the quantity GALS removes from
//! inter-partition timing.

use crate::cells::{CellKind, TechLibrary};

/// Result of "synthesizing" a clock tree over a region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockTreeReport {
    /// Buffer levels (fanout 4).
    pub levels: u32,
    /// Total clock buffers inserted.
    pub buffers: u64,
    /// Source-to-sink insertion delay in ps.
    pub insertion_delay_ps: f64,
    /// Worst-case sink-to-sink skew in ps (OCV margin).
    pub skew_ps: f64,
    /// Buffer area in µm².
    pub area_um2: f64,
    /// Clock-network switching energy per cycle in fJ.
    pub energy_per_cycle_fj: f64,
}

/// Fraction of a path's delay assumed lost to on-chip variation across
/// corners. 16nm signoff flows commonly derate 8–15%.
pub const OCV_FRACTION: f64 = 0.12;

/// Models clock distribution to `sinks` flops spread over a square
/// region of `span_um` on a side.
///
/// # Panics
/// Panics if `sinks` is zero or `span_um` is not positive.
///
/// ```
/// use craft_tech::{clock_tree, TechLibrary};
/// let lib = TechLibrary::n16();
/// let chip = clock_tree(&lib, 2_000_000, 3000.0); // SoC-scale
/// let part = clock_tree(&lib, 60_000, 450.0);      // partition-scale
/// assert!(chip.skew_ps > 4.0 * part.skew_ps);
/// ```
pub fn clock_tree(lib: &TechLibrary, sinks: u64, span_um: f64) -> ClockTreeReport {
    assert!(sinks > 0, "clock tree needs at least one sink");
    assert!(span_um > 0.0, "span must be positive");
    let buf = lib.cell(CellKind::ClkBuf);

    // Fanout-4 levels to reach all sinks (each leaf buffer drives ~16
    // flops locally).
    let leaf_groups = sinks.div_ceil(16);
    let mut levels = 1u32;
    while 4u64.saturating_pow(levels) < leaf_groups {
        levels += 1;
    }
    let buffers: u64 = (0..=levels).map(|l| 4u64.saturating_pow(l)).sum();

    // Per-level wire: the tree halves the remaining span each level.
    let mut wire_delay = 0.0;
    let mut remaining = span_um;
    for _ in 0..=levels {
        let seg = remaining / 2.0;
        // Elmore-ish RC for a buffered segment.
        wire_delay += 0.5 * lib.wire_res_ohm_per_um * seg * lib.wire_cap_ff_per_um * seg / 1000.0;
        remaining = seg;
    }
    let insertion = f64::from(levels + 1) * buf.delay_ps + wire_delay;
    let skew = OCV_FRACTION * insertion + 0.002 * span_um;

    ClockTreeReport {
        levels,
        buffers,
        insertion_delay_ps: insertion,
        skew_ps: skew,
        area_um2: buffers as f64 * buf.area_um2,
        energy_per_cycle_fj: buffers as f64 * buf.energy_fj
            + span_um * lib.wire_cap_ff_per_um * 0.9, // V²·C scaling folded in
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_regions_cost_more_skew() {
        let lib = TechLibrary::n16();
        let small = clock_tree(&lib, 50_000, 400.0);
        let large = clock_tree(&lib, 2_000_000, 4000.0);
        assert!(large.skew_ps > small.skew_ps * 3.0);
        assert!(large.insertion_delay_ps > small.insertion_delay_ps);
        assert!(large.buffers > small.buffers);
    }

    #[test]
    fn levels_cover_all_sinks() {
        let lib = TechLibrary::n16();
        for sinks in [1u64, 17, 1_000, 100_000, 5_000_000] {
            let r = clock_tree(&lib, sinks, 1000.0);
            assert!(
                4u64.saturating_pow(r.levels) * 16 >= sinks,
                "{sinks} sinks uncovered at {} levels",
                r.levels
            );
        }
    }

    #[test]
    fn skew_is_fraction_of_insertion_plus_span() {
        let lib = TechLibrary::n16();
        let r = clock_tree(&lib, 100_000, 1000.0);
        assert!(r.skew_ps > OCV_FRACTION * r.insertion_delay_ps * 0.99);
        assert!(r.skew_ps < r.insertion_delay_ps, "skew below insertion");
    }

    #[test]
    #[should_panic(expected = "clock tree needs at least one sink")]
    fn zero_sinks_panics() {
        let lib = TechLibrary::n16();
        let _ = clock_tree(&lib, 0, 100.0);
    }
}
