//! Power analysis (the "Power Analysis" output of Fig. 1): dynamic +
//! leakage power for netlists and SRAM macros under an activity
//! assumption, and energy-per-operation helpers for system-level
//! accounting.

use crate::cells::TechLibrary;
use crate::netlist::Netlist;
use crate::sram::SramMacro;
use std::fmt;

/// A power rollup in milliwatts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PowerReport {
    /// Switching power.
    pub dynamic_mw: f64,
    /// Subthreshold/gate leakage.
    pub leakage_mw: f64,
    /// Clock-network power (flop clock pins + distribution).
    pub clock_mw: f64,
}

impl PowerReport {
    /// Total power.
    pub fn total_mw(&self) -> f64 {
        self.dynamic_mw + self.leakage_mw + self.clock_mw
    }

    /// Component-wise sum.
    pub fn merged(&self, other: &PowerReport) -> PowerReport {
        PowerReport {
            dynamic_mw: self.dynamic_mw + other.dynamic_mw,
            leakage_mw: self.leakage_mw + other.leakage_mw,
            clock_mw: self.clock_mw + other.clock_mw,
        }
    }
}

impl fmt::Display for PowerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3} mW (dyn {:.3}, leak {:.3}, clk {:.3})",
            self.total_mw(),
            self.dynamic_mw,
            self.leakage_mw,
            self.clock_mw
        )
    }
}

/// Power of a standard-cell netlist clocked at `freq_ghz` with datapath
/// activity `alpha` (fraction of cells toggling per cycle). Flop clock
/// pins toggle every cycle regardless of `alpha`.
///
/// # Panics
/// Panics if `freq_ghz` is not positive or `alpha` outside [0, 1].
pub fn netlist_power(
    lib: &TechLibrary,
    netlist: &Netlist,
    freq_ghz: f64,
    alpha: f64,
) -> PowerReport {
    assert!(freq_ghz > 0.0, "frequency must be positive");
    assert!((0.0..=1.0).contains(&alpha), "activity must be in [0,1]");
    // fJ * GHz = µW; /1000 -> mW.
    let dynamic_mw = netlist.dynamic_energy_fj(lib, alpha) * freq_ghz / 1_000.0;
    let leakage_mw = netlist.leakage_nw(lib) / 1_000_000.0;
    let dff_clk_fj = 0.8; // clock-pin energy per flop toggle
    let clock_mw = netlist.count(crate::CellKind::Dff) as f64 * dff_clk_fj * freq_ghz / 1_000.0;
    PowerReport {
        dynamic_mw,
        leakage_mw,
        clock_mw,
    }
}

/// Power of an SRAM macro performing `accesses_per_cycle` (0..=1)
/// accesses at `freq_ghz`.
///
/// # Panics
/// Panics if `freq_ghz` is not positive or `accesses_per_cycle` is
/// outside [0, 1].
pub fn sram_power(macro_: &SramMacro, freq_ghz: f64, accesses_per_cycle: f64) -> PowerReport {
    assert!(freq_ghz > 0.0, "frequency must be positive");
    assert!(
        (0.0..=1.0).contains(&accesses_per_cycle),
        "access rate must be in [0,1]"
    );
    let dynamic_mw = macro_.access_energy_fj() * accesses_per_cycle * freq_ghz / 1_000.0;
    // Retention leakage ~ 2 pW/bit at 16nm-class.
    let leakage_mw = macro_.bits() as f64 * 2e-6 / 1_000.0;
    PowerReport {
        dynamic_mw,
        leakage_mw,
        clock_mw: 0.0,
    }
}

/// Energy of one `width`-bit multiply-accumulate in fJ (system-level
/// accounting for the SoC workloads).
pub fn mac_energy_fj(lib: &TechLibrary, width: u32) -> f64 {
    let n = crate::ops::multiplier(width) + crate::ops::adder(width);
    // One full evaluation toggles roughly half the cells.
    n.dynamic_energy_fj(lib, 0.5)
}

/// Energy of moving one 64-bit flit across one NoC hop (router + link)
/// in fJ.
pub fn noc_hop_energy_fj(lib: &TechLibrary, link_um: f64) -> f64 {
    // Router datapath: register + mux per hop.
    let router = (crate::ops::register(64) + crate::ops::mux(64, 5)).dynamic_energy_fj(lib, 1.0);
    // Wire: C*V^2 with V=0.8V nominal folded into a per-fF constant.
    let wire = lib.wire_cap_ff_per_um * link_um * 0.64;
    router + wire
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ops, CellKind, TechLibrary};

    fn lib() -> TechLibrary {
        TechLibrary::n16()
    }

    #[test]
    fn power_scales_with_frequency_and_activity() {
        let l = lib();
        let n = ops::multiplier(32) + ops::register(64);
        let base = netlist_power(&l, &n, 1.0, 0.2);
        let fast = netlist_power(&l, &n, 2.0, 0.2);
        let busy = netlist_power(&l, &n, 1.0, 0.4);
        assert!((fast.dynamic_mw - 2.0 * base.dynamic_mw).abs() < 1e-12);
        assert!((busy.dynamic_mw - 2.0 * base.dynamic_mw).abs() < 1e-12);
        // Leakage is frequency-independent.
        assert!((fast.leakage_mw - base.leakage_mw).abs() < 1e-15);
    }

    #[test]
    fn clock_power_tracks_flop_count() {
        let l = lib();
        let small = netlist_power(&l, &ops::register(32), 1.1, 0.0);
        let big = netlist_power(&l, &ops::register(64), 1.1, 0.0);
        assert!((big.clock_mw / small.clock_mw - 2.0).abs() < 1e-9);
        assert_eq!(small.dynamic_mw, 0.0, "alpha 0 means no datapath power");
    }

    #[test]
    fn sram_idle_power_is_leakage_only() {
        let m = crate::SramMacro::new(4096, 64);
        let idle = sram_power(&m, 1.1, 0.0);
        assert_eq!(idle.dynamic_mw, 0.0);
        assert!(idle.leakage_mw > 0.0);
        let busy = sram_power(&m, 1.1, 1.0);
        assert!(busy.total_mw() > idle.total_mw());
    }

    #[test]
    fn report_arithmetic_and_display() {
        let a = PowerReport {
            dynamic_mw: 1.0,
            leakage_mw: 0.5,
            clock_mw: 0.25,
        };
        let b = a.merged(&a);
        assert!((b.total_mw() - 3.5).abs() < 1e-12);
        assert!(format!("{a}").contains("mW"));
    }

    #[test]
    fn energy_helpers_plausible() {
        let l = lib();
        let mac = mac_energy_fj(&l, 32);
        assert!((100.0..10_000.0).contains(&mac), "32-bit MAC {mac} fJ");
        let hop = noc_hop_energy_fj(&l, 500.0);
        assert!(hop > 0.0 && hop < mac * 10.0, "hop {hop} fJ");
    }

    #[test]
    #[should_panic(expected = "activity must be in [0,1]")]
    fn bad_activity_panics() {
        let l = lib();
        let mut n = Netlist::new();
        n.add_cells(CellKind::Inv, 1);
        let _ = netlist_power(&l, &n, 1.0, 2.0);
    }
}
