//! Netlist lowering for compiled RTL evaluation.
//!
//! An interpreted RTL simulator re-evaluates every gate of a module's
//! signal set every cycle; a *compiled* simulator (Verilator-style)
//! lowers the netlist once into a levelized, word-packed evaluation
//! plan and then executes that plan at native machine-word speed. A
//! [`Netlist`] here is a cell *bag* (no connectivity), so the lowering
//! models the two quantities the compiled evaluator needs — how many
//! word-level operations one full evaluation costs and how deep the
//! levelized schedule is — without inventing a wire graph: gate
//! equivalents are packed [`GATES_PER_WORD`] to a word op, and depth is
//! modeled as the log-depth of a balanced network over the cells.
//!
//! The gate-equivalent count is the *preserved* quantity: whatever a
//! component charges its [`craft_soc::bitrtl::RtlCost`] ledger per
//! cycle must be identical whether the interpreted or the compiled
//! evaluator runs (the cost model is the contract; only wall clock
//! changes).
//!
//! [`craft_soc::bitrtl::RtlCost`]: ../craft_soc/bitrtl/struct.RtlCost.html

use crate::cells::CellKind;
use crate::netlist::Netlist;

/// Gate equivalents evaluated per machine-word operation by a compiled
/// plan. An interpreted simulator touches ~8 gates per word op (one
/// boolean function at a time over packed state); a compiled plan
/// folds levelized gate cones into straight-line word arithmetic, so a
/// single native op retires a 64-bit operator slice across the ~4-deep
/// cone the levelizer collapses into it.
pub const GATES_PER_WORD: u64 = 256;

/// Gate-equivalent weight of one cell: roughly its NAND2-equivalent
/// boolean complexity, used when flattening a cell bag into the
/// single "gates" unit the RTL cost model charges.
pub fn gate_equiv(kind: CellKind) -> u64 {
    match kind {
        CellKind::Inv | CellKind::ClkBuf | CellKind::RoStage => 1,
        CellKind::Nand2 | CellKind::Nor2 => 1,
        CellKind::Xor2 | CellKind::Mux2 | CellKind::Aoi21 => 2,
        CellKind::FullAdder => 5,
        CellKind::Dff | CellKind::ClkGate | CellKind::Mutex => 4,
    }
}

/// One netlist lowered to a compiled evaluation plan's cost summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoweredNetlist {
    /// Total gate equivalents (the amount charged to the RTL cost
    /// ledger per evaluation, identical to the interpreted path).
    pub gate_equiv: u64,
    /// Machine-word operations one full evaluation executes.
    pub word_ops: u64,
    /// Levelized schedule depth (balanced-network model).
    pub levels: u32,
}

impl LoweredNetlist {
    /// Lowers a plain gate-equivalent count (components modeled only
    /// by a gate budget, e.g. router control logic).
    pub fn from_gate_count(gates: u64) -> LoweredNetlist {
        LoweredNetlist {
            gate_equiv: gates,
            word_ops: gates.div_ceil(GATES_PER_WORD),
            levels: log2_ceil(gates),
        }
    }
}

/// Lowers `netlist` into its compiled-evaluation cost summary.
///
/// ```
/// use craft_tech::{lower, ops, GATES_PER_WORD};
/// let plan = lower(&ops::multiplier(32));
/// assert!(plan.gate_equiv > 0);
/// assert_eq!(plan.word_ops, plan.gate_equiv.div_ceil(GATES_PER_WORD));
/// assert!(plan.levels >= 1);
/// ```
pub fn lower(netlist: &Netlist) -> LoweredNetlist {
    let gates: u64 = netlist.iter().map(|(k, n)| gate_equiv(k) * n).sum();
    LoweredNetlist::from_gate_count(gates)
}

fn log2_ceil(n: u64) -> u32 {
    if n <= 1 {
        1
    } else {
        64 - (n - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn lowering_packs_gates_into_words() {
        let l = lower(&ops::adder(64));
        // 64 full adders at weight 5 = 320 gate equivalents.
        assert_eq!(l.gate_equiv, 320);
        assert_eq!(l.word_ops, 320u64.div_ceil(GATES_PER_WORD));
        assert_eq!(l.levels, 9); // ceil(log2(320))
    }

    #[test]
    fn word_ops_scale_sublinearly_vs_interpretation() {
        // The compiled plan's word-op count must be far below the
        // interpreted model's gates/8 word iterations.
        for netlist in [ops::multiplier(64), ops::adder(32), ops::comparator(64)] {
            let l = lower(&netlist);
            assert!(l.word_ops * 8 <= l.gate_equiv || l.gate_equiv < GATES_PER_WORD);
        }
    }

    #[test]
    fn from_gate_count_edge_cases() {
        let zero = LoweredNetlist::from_gate_count(0);
        assert_eq!(zero.word_ops, 0);
        assert_eq!(zero.levels, 1);
        let one_word = LoweredNetlist::from_gate_count(GATES_PER_WORD);
        assert_eq!(one_word.word_ops, 1);
        let spill = LoweredNetlist::from_gate_count(GATES_PER_WORD + 1);
        assert_eq!(spill.word_ops, 2);
    }

    #[test]
    fn empty_netlist_lowers_to_nothing() {
        let l = lower(&Netlist::new());
        assert_eq!(l.gate_equiv, 0);
        assert_eq!(l.word_ops, 0);
    }
}
