//! Synthetic 16nm-class standard-cell library.
//!
//! The paper's flow signs off against a TSMC 16nm FinFET library
//! (Table 3); this module provides a *synthetic* stand-in with
//! plausible relative area/delay/leakage so that every area and QoR
//! result in the reproduction is a **relative** statement (25% penalty,
//! ±10% QoR, <3% overhead) rather than an absolute one.

use std::collections::BTreeMap;
use std::fmt;

/// Standard-cell kinds known to the library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CellKind {
    /// Inverter.
    Inv,
    /// 2-input NAND (the area-accounting unit).
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input XOR.
    Xor2,
    /// 2:1 mux.
    Mux2,
    /// AND-OR-invert 2-1 (priority logic).
    Aoi21,
    /// Full adder.
    FullAdder,
    /// D flip-flop.
    Dff,
    /// Clock buffer.
    ClkBuf,
    /// Integrated clock gate.
    ClkGate,
    /// Mutual-exclusion element (pausible clocking).
    Mutex,
    /// Ring-oscillator delay stage (local clock generators).
    RoStage,
}

impl CellKind {
    /// Every kind, in a stable order.
    pub const ALL: [CellKind; 12] = [
        CellKind::Inv,
        CellKind::Nand2,
        CellKind::Nor2,
        CellKind::Xor2,
        CellKind::Mux2,
        CellKind::Aoi21,
        CellKind::FullAdder,
        CellKind::Dff,
        CellKind::ClkBuf,
        CellKind::ClkGate,
        CellKind::Mutex,
        CellKind::RoStage,
    ];
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CellKind::Inv => "INV",
            CellKind::Nand2 => "NAND2",
            CellKind::Nor2 => "NOR2",
            CellKind::Xor2 => "XOR2",
            CellKind::Mux2 => "MUX2",
            CellKind::Aoi21 => "AOI21",
            CellKind::FullAdder => "FA",
            CellKind::Dff => "DFF",
            CellKind::ClkBuf => "CLKBUF",
            CellKind::ClkGate => "CLKGATE",
            CellKind::Mutex => "MUTEX",
            CellKind::RoStage => "ROSTAGE",
        };
        f.write_str(s)
    }
}

/// Per-cell characterization data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSpec {
    /// Placed area in µm².
    pub area_um2: f64,
    /// Typical-corner propagation delay in ps.
    pub delay_ps: f64,
    /// Leakage power in nW.
    pub leakage_nw: f64,
    /// Switching energy per output toggle in fJ.
    pub energy_fj: f64,
}

impl CellSpec {
    /// Area of this cell in NAND2 equivalents, given the library's
    /// NAND2 area.
    pub fn nand2_equiv(&self, nand2_area: f64) -> f64 {
        self.area_um2 / nand2_area
    }
}

/// A characterized cell library.
#[derive(Debug, Clone)]
pub struct TechLibrary {
    name: String,
    cells: BTreeMap<CellKind, CellSpec>,
    /// SRAM bitcell area in µm² (single-port 6T).
    pub sram_bitcell_um2: f64,
    /// Routed-wire capacitance per µm in fF.
    pub wire_cap_ff_per_um: f64,
    /// Routed-wire resistance per µm in Ω.
    pub wire_res_ohm_per_um: f64,
}

impl TechLibrary {
    /// The synthetic 16nm-class library used throughout the
    /// reproduction.
    ///
    /// ```
    /// use craft_tech::{CellKind, TechLibrary};
    /// let lib = TechLibrary::n16();
    /// assert!(lib.cell(CellKind::Dff).area_um2 > lib.cell(CellKind::Nand2).area_um2);
    /// ```
    pub fn n16() -> Self {
        let mut cells = BTreeMap::new();
        let mut put = |k: CellKind, area, delay, leak, energy| {
            cells.insert(
                k,
                CellSpec {
                    area_um2: area,
                    delay_ps: delay,
                    leakage_nw: leak,
                    energy_fj: energy,
                },
            );
        };
        // Synthetic but internally consistent 16nm-class numbers.
        put(CellKind::Inv, 0.098, 6.0, 1.2, 0.25);
        put(CellKind::Nand2, 0.196, 9.0, 2.0, 0.45);
        put(CellKind::Nor2, 0.196, 11.0, 2.0, 0.45);
        put(CellKind::Xor2, 0.392, 16.0, 3.6, 0.90);
        put(CellKind::Mux2, 0.294, 14.0, 2.8, 0.70);
        put(CellKind::Aoi21, 0.245, 12.0, 2.4, 0.55);
        put(CellKind::FullAdder, 0.784, 22.0, 7.0, 1.80);
        put(CellKind::Dff, 0.882, 35.0, 8.0, 2.20);
        put(CellKind::ClkBuf, 0.294, 12.0, 4.0, 1.10);
        put(CellKind::ClkGate, 0.490, 18.0, 4.5, 1.30);
        put(CellKind::Mutex, 0.588, 30.0, 4.0, 1.00);
        put(CellKind::RoStage, 0.147, 8.0, 2.0, 0.50);
        TechLibrary {
            name: "synthetic-n16".into(),
            cells,
            sram_bitcell_um2: 0.074,
            wire_cap_ff_per_um: 0.20,
            wire_res_ohm_per_um: 3.0,
        }
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Characterization of `kind`.
    ///
    /// # Panics
    /// Never panics for kinds in [`CellKind::ALL`]; the library is
    /// total over the enum.
    pub fn cell(&self, kind: CellKind) -> CellSpec {
        *self
            .cells
            .get(&kind)
            .expect("library is total over CellKind")
    }

    /// Area of the NAND2 cell — the gate-equivalence unit used in the
    /// paper's productivity metric (§4).
    pub fn nand2_area(&self) -> f64 {
        self.cell(CellKind::Nand2).area_um2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_is_total() {
        let lib = TechLibrary::n16();
        for k in CellKind::ALL {
            let spec = lib.cell(k);
            assert!(spec.area_um2 > 0.0, "{k} has zero area");
            assert!(spec.delay_ps > 0.0, "{k} has zero delay");
        }
    }

    #[test]
    fn relative_sizes_are_sane() {
        let lib = TechLibrary::n16();
        let inv = lib.cell(CellKind::Inv).area_um2;
        let nand = lib.cell(CellKind::Nand2).area_um2;
        let dff = lib.cell(CellKind::Dff).area_um2;
        let fa = lib.cell(CellKind::FullAdder).area_um2;
        assert!(inv < nand && nand < fa && fa < dff + 0.2);
        // A DFF is roughly 4-5 NAND2 equivalents in real libraries.
        let dff_ge = lib.cell(CellKind::Dff).nand2_equiv(lib.nand2_area());
        assert!((3.0..6.0).contains(&dff_ge), "DFF = {dff_ge} GE");
    }

    #[test]
    fn nand2_equiv_unit() {
        let lib = TechLibrary::n16();
        let ge = lib.cell(CellKind::Nand2).nand2_equiv(lib.nand2_area());
        assert!((ge - 1.0).abs() < 1e-12);
    }
}
