//! SRAM macro model: area/energy/timing for the compiled memories
//! ("islands of macro blocks such as SRAM" in the paper's §3) used by
//! scratchpads, caches and the SoC global memory.

use crate::cells::TechLibrary;

/// A compiled single-port SRAM macro.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SramMacro {
    /// Words.
    pub depth: usize,
    /// Bits per word.
    pub width: u32,
}

impl SramMacro {
    /// Describes a macro of `depth` words by `width` bits.
    ///
    /// # Panics
    /// Panics if `depth` is 0 or `width` is outside 1..=256.
    pub fn new(depth: usize, width: u32) -> Self {
        assert!(depth > 0, "sram depth must be nonzero");
        assert!((1..=256).contains(&width), "sram width must be 1..=256");
        SramMacro { depth, width }
    }

    /// Storage bits.
    pub fn bits(&self) -> u64 {
        self.depth as u64 * u64::from(self.width)
    }

    /// Placed macro area in µm² under `lib`: bitcell array plus
    /// periphery (decoders, sense amps) whose relative share shrinks
    /// with depth — small memories are dominated by periphery, which is
    /// why very small buffers synthesize to flops instead.
    pub fn area_um2(&self, lib: &TechLibrary) -> f64 {
        let array = self.bits() as f64 * lib.sram_bitcell_um2;
        // Periphery: per-column sense/write circuitry + row decode.
        let per_column = 1.9 * f64::from(self.width);
        let row_decode = 0.35 * (self.depth as f64).log2().max(1.0) * f64::from(self.width).sqrt();
        let fixed = 25.0;
        array * 1.15 + per_column + row_decode + fixed
    }

    /// Energy per access in fJ.
    pub fn access_energy_fj(&self) -> f64 {
        // Bitline + wordline switching grows with both dimensions.
        0.15 * f64::from(self.width) * (self.depth as f64).log2().max(1.0) + 5.0
    }

    /// Access time in ps.
    pub fn access_time_ps(&self) -> f64 {
        120.0 + 18.0 * (self.depth as f64).log2().max(1.0)
    }

    /// Whether a flop-based implementation would be smaller than this
    /// macro (the synthesis-time RAM-mapping decision in Fig. 1's
    /// "automatic RAM mapping" box).
    pub fn prefer_flops(&self, lib: &TechLibrary) -> bool {
        let flop_area = self.bits() as f64 * lib.cell(crate::CellKind::Dff).area_um2;
        flop_area < self.area_um2(lib)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn area_grows_with_bits() {
        let lib = TechLibrary::n16();
        let small = SramMacro::new(256, 32).area_um2(&lib);
        let big = SramMacro::new(4096, 32).area_um2(&lib);
        assert!(big > 10.0 * small / 2.0, "{small} vs {big}");
    }

    #[test]
    fn tiny_memories_prefer_flops() {
        let lib = TechLibrary::n16();
        assert!(SramMacro::new(4, 8).prefer_flops(&lib));
        assert!(!SramMacro::new(4096, 64).prefer_flops(&lib));
    }

    #[test]
    fn bit_efficiency_improves_with_depth() {
        // µm² per bit should fall as the array amortizes periphery.
        let lib = TechLibrary::n16();
        let per_bit = |d: usize| {
            let m = SramMacro::new(d, 64);
            m.area_um2(&lib) / m.bits() as f64
        };
        assert!(per_bit(64) > per_bit(1024));
        assert!(per_bit(1024) > per_bit(16384));
    }

    #[test]
    fn timing_and_energy_monotone_in_depth() {
        let a = SramMacro::new(256, 32);
        let b = SramMacro::new(8192, 32);
        assert!(b.access_time_ps() > a.access_time_ps());
        assert!(b.access_energy_fj() > a.access_energy_fj());
    }

    #[test]
    #[should_panic(expected = "sram depth must be nonzero")]
    fn zero_depth_panics() {
        let _ = SramMacro::new(0, 8);
    }

    proptest! {
        /// Area is strictly positive and at least the raw bitcell array.
        #[test]
        fn area_lower_bound(depth in 1usize..65536, width in 1u32..=256) {
            let lib = TechLibrary::n16();
            let m = SramMacro::new(depth, width);
            prop_assert!(m.area_um2(&lib) > m.bits() as f64 * lib.sram_bitcell_um2);
        }
    }
}
