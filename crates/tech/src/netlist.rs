//! Gate-level netlist accounting: cell counts plus derived area,
//! leakage, energy and NAND2-equivalent metrics. This is the "logic
//! synthesis area estimate" stage of Fig. 1.

use crate::cells::{CellKind, TechLibrary};
use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, AddAssign};

/// A bag of standard cells (the cost-model view of a synthesized
/// module).
///
/// ```
/// use craft_tech::{CellKind, Netlist, TechLibrary};
/// let lib = TechLibrary::n16();
/// let mut n = Netlist::new();
/// n.add_cells(CellKind::Nand2, 100);
/// n.add_cells(CellKind::Dff, 32);
/// assert!(n.area_um2(&lib) > 0.0);
/// assert!(n.nand2_equiv(&lib) > 100.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Netlist {
    counts: BTreeMap<CellKind, u64>,
}

impl Netlist {
    /// An empty netlist.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` cells of `kind`.
    pub fn add_cells(&mut self, kind: CellKind, n: u64) {
        if n > 0 {
            *self.counts.entry(kind).or_insert(0) += n;
        }
    }

    /// Count of `kind` cells.
    pub fn count(&self, kind: CellKind) -> u64 {
        self.counts.get(&kind).copied().unwrap_or(0)
    }

    /// Total cell instances.
    pub fn total_cells(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Merges another netlist into this one.
    pub fn merge(&mut self, other: &Netlist) {
        for (&k, &n) in &other.counts {
            self.add_cells(k, n);
        }
    }

    /// Returns this netlist replicated `n` times.
    pub fn replicated(&self, n: u64) -> Netlist {
        let mut out = Netlist::new();
        for (&k, &c) in &self.counts {
            out.add_cells(k, c * n);
        }
        out
    }

    /// Placed standard-cell area in µm² under `lib` (excludes SRAM
    /// macros — see [`crate::SramMacro`]).
    pub fn area_um2(&self, lib: &TechLibrary) -> f64 {
        self.counts
            .iter()
            .map(|(&k, &n)| lib.cell(k).area_um2 * n as f64)
            .sum()
    }

    /// Total leakage power in nW.
    pub fn leakage_nw(&self, lib: &TechLibrary) -> f64 {
        self.counts
            .iter()
            .map(|(&k, &n)| lib.cell(k).leakage_nw * n as f64)
            .sum()
    }

    /// Dynamic energy per cycle in fJ assuming activity factor
    /// `alpha` (fraction of cells toggling per cycle).
    ///
    /// # Panics
    /// Panics unless `0.0 <= alpha <= 1.0`.
    pub fn dynamic_energy_fj(&self, lib: &TechLibrary, alpha: f64) -> f64 {
        assert!((0.0..=1.0).contains(&alpha), "activity must be in [0,1]");
        alpha
            * self
                .counts
                .iter()
                .map(|(&k, &n)| lib.cell(k).energy_fj * n as f64)
                .sum::<f64>()
    }

    /// Area expressed in NAND2-equivalent gates (the paper's §4
    /// productivity unit).
    pub fn nand2_equiv(&self, lib: &TechLibrary) -> f64 {
        self.area_um2(lib) / lib.nand2_area()
    }

    /// Iterates `(kind, count)` pairs in stable order.
    pub fn iter(&self) -> impl Iterator<Item = (CellKind, u64)> + '_ {
        self.counts.iter().map(|(&k, &n)| (k, n))
    }
}

impl Add for Netlist {
    type Output = Netlist;
    fn add(mut self, rhs: Netlist) -> Netlist {
        self.merge(&rhs);
        self
    }
}

impl AddAssign for Netlist {
    fn add_assign(&mut self, rhs: Netlist) {
        self.merge(&rhs);
    }
}

impl FromIterator<(CellKind, u64)> for Netlist {
    fn from_iter<I: IntoIterator<Item = (CellKind, u64)>>(iter: I) -> Self {
        let mut n = Netlist::new();
        for (k, c) in iter {
            n.add_cells(k, c);
        }
        n
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (k, n) in self.iter() {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{k}x{n}")?;
            first = false;
        }
        if first {
            write!(f, "(empty)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counting_and_merge() {
        let mut a = Netlist::new();
        a.add_cells(CellKind::Inv, 10);
        a.add_cells(CellKind::Inv, 5);
        let mut b = Netlist::new();
        b.add_cells(CellKind::Inv, 1);
        b.add_cells(CellKind::Dff, 2);
        a.merge(&b);
        assert_eq!(a.count(CellKind::Inv), 16);
        assert_eq!(a.count(CellKind::Dff), 2);
        assert_eq!(a.total_cells(), 18);
    }

    #[test]
    fn replication_scales_linearly() {
        let lib = TechLibrary::n16();
        let mut unit = Netlist::new();
        unit.add_cells(CellKind::Nand2, 7);
        unit.add_cells(CellKind::Dff, 3);
        let x4 = unit.replicated(4);
        assert!((x4.area_um2(&lib) - 4.0 * unit.area_um2(&lib)).abs() < 1e-9);
    }

    #[test]
    fn zero_add_is_noop() {
        let mut n = Netlist::new();
        n.add_cells(CellKind::Inv, 0);
        assert_eq!(n.total_cells(), 0);
        assert_eq!(format!("{n}"), "(empty)");
    }

    #[test]
    #[should_panic(expected = "activity must be in [0,1]")]
    fn bad_activity_panics() {
        let lib = TechLibrary::n16();
        let _ = Netlist::new().dynamic_energy_fj(&lib, 1.5);
    }

    proptest! {
        /// Area is additive over merge for any pair of netlists.
        #[test]
        fn area_additive(
            a in proptest::collection::vec(0u64..50, CellKind::ALL.len()),
            b in proptest::collection::vec(0u64..50, CellKind::ALL.len()),
        ) {
            let lib = TechLibrary::n16();
            let na: Netlist = CellKind::ALL.iter().copied().zip(a.iter().copied()).collect();
            let nb: Netlist = CellKind::ALL.iter().copied().zip(b.iter().copied()).collect();
            let merged = na.clone() + nb.clone();
            let diff = (merged.area_um2(&lib) - na.area_um2(&lib) - nb.area_um2(&lib)).abs();
            prop_assert!(diff < 1e-9);
        }
    }
}
