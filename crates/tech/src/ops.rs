//! Datapath-operator cost models: the mapping from RTL operators to
//! gate netlists that HLS binding ([`craft_hls`]) prices designs with.
//!
//! Structures are deliberately simple (ripple adders, array
//! multipliers, mux trees, priority chains) — what matters for the
//! reproduced experiments is the *relative* cost, in particular that a
//! priority-decoded multiplexer network (src-loop crossbar) costs
//! meaningfully more than a select-driven one (dst-loop).
//!
//! [`craft_hls`]: ../craft_hls/index.html

use crate::cells::CellKind;
use crate::netlist::Netlist;

fn check_width(width: u32) {
    assert!((1..=128).contains(&width), "operator width must be 1..=128");
}

/// Ripple-carry adder of `width` bits.
pub fn adder(width: u32) -> Netlist {
    check_width(width);
    let mut n = Netlist::new();
    n.add_cells(CellKind::FullAdder, u64::from(width));
    n
}

/// Subtractor: adder plus an inverting row.
pub fn subtractor(width: u32) -> Netlist {
    check_width(width);
    let mut n = adder(width);
    n.add_cells(CellKind::Inv, u64::from(width));
    n
}

/// Array multiplier of `width` x `width` bits.
pub fn multiplier(width: u32) -> Netlist {
    check_width(width);
    let w = u64::from(width);
    let mut n = Netlist::new();
    // Partial-product generation: one AND (NAND2+INV) per bit pair.
    n.add_cells(CellKind::Nand2, w * w);
    n.add_cells(CellKind::Inv, w * w);
    // Reduction: an array of full adders.
    n.add_cells(CellKind::FullAdder, w * (w - 1));
    n
}

/// Bitwise logic unit of `width` bits (AND/OR/XOR class ops).
pub fn logic_unit(width: u32) -> Netlist {
    check_width(width);
    let mut n = Netlist::new();
    n.add_cells(CellKind::Nand2, u64::from(width));
    n
}

/// Equality/magnitude comparator of `width` bits.
pub fn comparator(width: u32) -> Netlist {
    check_width(width);
    let w = u64::from(width);
    let mut n = Netlist::new();
    n.add_cells(CellKind::Xor2, w);
    n.add_cells(CellKind::Nand2, w.max(2) - 1); // AND-reduce tree
    n
}

/// Logarithmic barrel shifter of `width` bits.
pub fn shifter(width: u32) -> Netlist {
    check_width(width);
    let stages = u64::from(32 - (width - 1).leading_zeros()).max(1);
    let mut n = Netlist::new();
    n.add_cells(CellKind::Mux2, u64::from(width) * stages);
    n
}

/// `ways`-to-1 select-driven multiplexer of `width` bits: a balanced
/// tree of 2:1 muxes controlled by an encoded select — the structure a
/// *dst-loop* crossbar output infers.
pub fn mux(width: u32, ways: u32) -> Netlist {
    check_width(width);
    assert!(ways >= 1, "mux needs at least one way");
    let mut n = Netlist::new();
    n.add_cells(
        CellKind::Mux2,
        u64::from(width) * u64::from(ways.max(1) - 1),
    );
    n
}

/// `ways`-to-1 **priority** multiplexer of `width` bits: a linear
/// chain of muxes plus per-way priority-resolution logic — the
/// structure a *src-loop* crossbar output infers (§2.4). Costs roughly
/// 25–30% more than [`mux`] for the same width/ways because each way
/// additionally carries match+priority gating.
pub fn priority_mux(width: u32, ways: u32) -> Netlist {
    check_width(width);
    assert!(ways >= 1, "mux needs at least one way");
    let w = u64::from(width);
    let k = u64::from(ways);
    let mut n = Netlist::new();
    // Same data muxes as the select-driven form...
    n.add_cells(CellKind::Mux2, w * (k - 1));
    // ...plus per-way destination comparators and the priority chain.
    n.add_cells(CellKind::Aoi21, k * (w / 4).max(1));
    n.add_cells(CellKind::Nand2, k * 2);
    n.add_cells(CellKind::Inv, k);
    n
}

/// `sel_bits`-to-one-hot decoder.
pub fn decoder(sel_bits: u32) -> Netlist {
    assert!((1..=8).contains(&sel_bits), "decoder select must be 1..=8");
    let outs = 1u64 << sel_bits;
    let mut n = Netlist::new();
    n.add_cells(CellKind::Nand2, outs);
    n.add_cells(CellKind::Inv, outs + u64::from(sel_bits));
    n
}

/// `ways`-input priority encoder (lowest index wins).
pub fn priority_encoder(ways: u32) -> Netlist {
    assert!(ways >= 1, "encoder needs at least one way");
    let k = u64::from(ways);
    let mut n = Netlist::new();
    n.add_cells(CellKind::Aoi21, k);
    n.add_cells(CellKind::Inv, k);
    n
}

/// `width`-bit register bank (one DFF per bit).
pub fn register(width: u32) -> Netlist {
    check_width(width);
    let mut n = Netlist::new();
    n.add_cells(CellKind::Dff, u64::from(width));
    n
}

/// Round-robin arbiter over `ways` requesters: priority chain, state
/// register and grant logic.
pub fn arbiter(ways: u32) -> Netlist {
    assert!((1..=64).contains(&ways), "arbiter ways must be 1..=64");
    let k = u64::from(ways);
    let sel_bits = u64::from(32 - (ways.max(2) - 1).leading_zeros());
    let mut n = Netlist::new();
    n.add_cells(CellKind::Aoi21, 2 * k); // rotating priority chain
    n.add_cells(CellKind::Nand2, 2 * k);
    n.add_cells(CellKind::Dff, sel_bits); // pointer state
    n
}

/// Worst-case combinational delay in ps through a `width`-bit ripple
/// adder under `lib`.
pub fn adder_delay_ps(lib: &crate::TechLibrary, width: u32) -> f64 {
    check_width(width);
    lib.cell(CellKind::FullAdder).delay_ps * f64::from(width) * 0.5 + 20.0
}

/// Worst-case combinational delay in ps through a `width`-bit array
/// multiplier under `lib`.
pub fn multiplier_delay_ps(lib: &crate::TechLibrary, width: u32) -> f64 {
    check_width(width);
    lib.cell(CellKind::FullAdder).delay_ps * f64::from(width) * 1.2 + 40.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TechLibrary;

    #[test]
    fn operator_areas_ordered_sanely() {
        let lib = TechLibrary::n16();
        let add32 = adder(32).area_um2(&lib);
        let mul32 = multiplier(32).area_um2(&lib);
        let logic32 = logic_unit(32).area_um2(&lib);
        assert!(logic32 < add32, "logic should be cheaper than add");
        assert!(
            mul32 > 10.0 * add32,
            "32x32 multiply should dwarf a 32-bit add: {mul32} vs {add32}"
        );
    }

    #[test]
    fn priority_mux_costs_more_than_mux() {
        let lib = TechLibrary::n16();
        for ways in [4, 8, 16, 32] {
            let plain = mux(32, ways).area_um2(&lib);
            let prio = priority_mux(32, ways).area_um2(&lib);
            let penalty = prio / plain - 1.0;
            assert!(
                penalty > 0.10 && penalty < 0.60,
                "ways={ways}: priority penalty {penalty:.2} out of plausible band"
            );
        }
    }

    #[test]
    fn mux_scales_with_ways_and_width() {
        let lib = TechLibrary::n16();
        let base = mux(8, 4).area_um2(&lib);
        assert!(mux(16, 4).area_um2(&lib) > base);
        assert!(mux(8, 8).area_um2(&lib) > base);
        assert_eq!(mux(8, 1).total_cells(), 0, "1-way mux is free");
    }

    #[test]
    fn delays_grow_with_width() {
        let lib = TechLibrary::n16();
        assert!(adder_delay_ps(&lib, 64) > adder_delay_ps(&lib, 8));
        assert!(multiplier_delay_ps(&lib, 32) > adder_delay_ps(&lib, 32));
    }

    #[test]
    fn register_is_pure_dffs() {
        let r = register(17);
        assert_eq!(r.count(CellKind::Dff), 17);
        assert_eq!(r.total_cells(), 17);
    }

    #[test]
    #[should_panic(expected = "operator width must be 1..=128")]
    fn oversized_operator_panics() {
        let _ = adder(512);
    }
}
