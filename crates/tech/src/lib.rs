//! # craft-tech — synthetic 16nm-class technology library
//!
//! The paper's flow signs off in TSMC 16nm FinFET with commercial
//! synthesis (Table 3). This crate is the reproduction's stand-in for
//! that back end: a self-consistent synthetic cell library
//! ([`TechLibrary::n16`]), gate-level cost accounting ([`Netlist`],
//! NAND2-equivalents for the §4 productivity metric), datapath
//! operator models ([`ops`]) used by `craft-hls` binding, SRAM macro
//! models ([`SramMacro`]) and the global clock-tree baseline
//! ([`clock_tree`]) that fine-grained GALS eliminates.
//!
//! All downstream results are *relative* (area ratios, overhead
//! percentages), so a synthetic but internally consistent library
//! preserves the paper's conclusions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cells;
mod clocktree;
mod lower;
mod netlist;
pub mod ops;
pub mod power;
mod sram;

pub use cells::{CellKind, CellSpec, TechLibrary};
pub use clocktree::{clock_tree, ClockTreeReport, OCV_FRACTION};
pub use lower::{gate_equiv, lower, LoweredNetlist, GATES_PER_WORD};
pub use netlist::Netlist;
pub use power::{mac_energy_fj, netlist_power, noc_hop_energy_fj, sram_power, PowerReport};
pub use sram::SramMacro;
