//! Batched lockstep co-simulation: word-parallel fault campaigns.
//!
//! A fault campaign runs N seeded variants of the *same* workload —
//! same program, same memory image, same SoC build — differing only in
//! the fault decisions a seeded injector draws. Until a lane's fault
//! first perturbs the token stream, its trajectory is bit-identical to
//! the fault-free golden run. [`BatchSoc`] exploits that: it advances
//! **one** golden simulation (which may keep the compiled instant plan
//! of [`crate::schedplan`] armed, since no real injector is attached)
//! and replays every lane's fault *decisions* against the golden token
//! stream through shadow [`craft_connections::FaultLaneBank`]s laid
//! out as lane-indexed arrays on each matched channel:
//!
//! ```text
//!                 ┌───────────── golden Soc ─────────────┐
//!                 │  channel "l11p3->15"                 │
//!                 │    ├─ FaultLaneBank                  │
//!  lane 0 ──────▶ │    │   injector[0]  (seed_0 ^ salt)  │ ─▶ Converged:
//!  lane 1 ──────▶ │    │   injector[1]  (seed_1 ^ salt)  │    golden result
//!   ...           │    │     ...                         │    + shadow stats
//!  lane N-1 ────▶ │    │   injector[N-1]                 │
//!                 │    └─ shared LaneSet (live list)     │ ─▶ Diverged:
//!                 └──────────────────────────────────────┘    de-opt → solo
//!                                                             interpreted Soc
//! ```
//!
//! The moment a lane's drawn decision would perturb the stream (bit
//! flip, drop, or a duplicate the FIFO had room for) the lane **de-ops
//! to a solo interpreted [`Soc`]** — a fresh build with a real
//! injector, replayed from t=0. The interpreted path stays the golden
//! reference; batching never invents a third semantics. Lanes whose
//! injectors never fire finish bit-identical to the golden run for
//! free, with exact [`FaultStats`] accumulated by the shadows.
//!
//! Divergence is conservative (see [`craft_connections::LaneSet`]): a
//! false positive costs one replay, a false negative would corrupt
//! results, so the bank never risks one. Stuck-wire faults gate
//! handshakes from their onset — no convergent prefix — so those lanes
//! are pre-diverged at build (divergence token 0).
//!
//! When batching wins: low per-token fault probability and many lanes,
//! so most lanes ride the golden run. With D diverged lanes out of N
//! the cost is ~(1 + D) runs instead of N. When most lanes fire early,
//! [`crate::parallel::ParallelSoc`] or a `par_map` over solo runs is
//! the better backend — the campaign driver picks per mode.

use crate::checkpoint::BatchSnapshot;
use crate::engine::SegmentStatus;
use crate::soc::{
    lane_fault_seed, merge_fault_stats, ChannelRole, FaultPatternError, FaultReport, RunResult,
    Soc, SocConfig, SocReport,
};
use craft_connections::{FaultConfig, FaultLaneBank, FaultStats, LaneSet, LaneStatus};
use craft_sim::checkpoint::{fnv64, CheckpointError};
use craft_sim::{SimError, TelLaneCounters, Telemetry};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::time::Instant;

/// One lane of a batch: a fault scenario to co-simulate against the
/// shared golden run. Identical to the `(pat, cfg, seed)` triple a
/// solo campaign would pass to [`Soc::inject_fault`].
#[derive(Debug, Clone, PartialEq)]
pub struct LaneSpec {
    /// Channel-name pattern (substring over the NoC registry).
    pub pattern: String,
    /// Fault class and rates.
    pub cfg: FaultConfig,
    /// Campaign seed; per-channel injector seeds derive from it
    /// exactly as [`Soc::inject_fault`] derives them.
    pub seed: u64,
}

impl LaneSpec {
    /// Convenience constructor.
    pub fn new(pattern: &str, cfg: FaultConfig, seed: u64) -> LaneSpec {
        LaneSpec {
            pattern: pattern.to_string(),
            cfg,
            seed,
        }
    }
}

/// Everything needed to rebuild a lane's simulation from t=0 — handed
/// to de-opt replays, which may run on worker threads (the contained
/// data is plain owned values, `Send`).
#[derive(Debug, Clone)]
pub struct ReplayInputs {
    /// SoC build parameters of the golden run.
    pub cfg: SocConfig,
    /// Controller program image.
    pub program: Vec<u32>,
    /// Staging (controller table) memory image.
    pub staging: Vec<u32>,
    /// Global-memory init regions.
    pub gmem_init: Vec<(usize, Vec<u64>)>,
}

/// Runs one diverged lane solo: a fresh interpreted [`Soc`] with a
/// real injector, replayed from t=0 under the same run limits the
/// batch used. This *is* the golden reference path — [`BatchSoc::run`]
/// calls it for every de-opted lane, and campaign drivers can call it
/// on worker threads via [`BatchSoc::replay_inputs`].
pub fn replay_lane_solo(
    inputs: &ReplayInputs,
    spec: &LaneSpec,
    max_cycles: u64,
    no_progress_limit: u64,
) -> (Result<RunResult, SimError>, SocReport, FaultStats, Soc) {
    let mut soc = Soc::build(
        inputs.cfg,
        &inputs.program,
        &inputs.staging,
        &inputs.gmem_init,
    );
    soc.inject_fault(&spec.pattern, spec.cfg, spec.seed)
        .expect("pattern matched the golden registry at batch build");
    let res = soc.run_checked(max_cycles, no_progress_limit);
    let report = soc.report();
    let stats = soc
        .fault_stats(&spec.pattern)
        .expect("pattern matched the golden registry at batch build");
    (res, report, stats, soc)
}

/// Outcome of one lane after [`BatchSoc::run`].
#[derive(Debug, Clone)]
pub struct LaneRun {
    /// Lane index (position in the spec list).
    pub lane: usize,
    /// Whether the lane left lockstep and was finished solo.
    pub deopted: bool,
    /// Channel token ordinal at which the lane diverged (0 = pre-
    /// diverged at build, e.g. a stuck-wire config). `None` while
    /// converged.
    pub diverged_at_token: Option<u64>,
    /// The solo replay panicked (fail-stop propagated as a panic);
    /// `result`/`report`/`fault_stats` are `None`.
    pub panicked: bool,
    /// Run result — the golden result for converged lanes, the solo
    /// replay's for de-opted lanes.
    pub result: Option<Result<RunResult, SimError>>,
    /// Full run report, bit-identical to what a solo run of this
    /// lane's `(pattern, cfg, seed)` would report.
    pub report: Option<SocReport>,
    /// Injector counters over the matched channels (shadow-exact for
    /// converged lanes, the solo injector's for de-opted ones).
    pub fault_stats: Option<FaultStats>,
}

/// Batch-level outcome of [`BatchSoc::run`].
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// The golden (fault-free) run's result.
    pub golden: Result<RunResult, SimError>,
    /// Per-lane outcomes, in spec order.
    pub lanes: Vec<LaneRun>,
    /// Lanes that de-opted to a solo replay.
    pub deopt_lanes: usize,
    /// Lanes that finished bit-identical to the golden run.
    pub converged_lanes: usize,
}

/// N sibling fault simulations advanced through one pass of the shared
/// golden run per instant — see the [module docs](crate::batch).
///
/// Build with [`BatchSoc::build`], run once with [`BatchSoc::run`],
/// then read per-lane outcomes from the returned [`BatchReport`] and
/// verify memory with [`BatchSoc::gmem_read_lane`].
pub struct BatchSoc {
    cfg: SocConfig,
    program: Vec<u32>,
    staging: Vec<u32>,
    gmem_init: Vec<(usize, Vec<u64>)>,
    specs: Vec<LaneSpec>,
    /// Per-lane matched-channel count (the solo `armed_channels`).
    matched: Vec<usize>,
    /// Registry indices carrying a shadow bank.
    banked: Vec<usize>,
    set: Rc<RefCell<LaneSet>>,
    golden: Soc,
    /// De-opted lanes' solo simulations, kept for memory verification.
    solos: Vec<Option<Soc>>,
    tel_tokens: Option<TelLaneCounters>,
    tel_injected: Option<TelLaneCounters>,
    ran: bool,
    /// `(max_cycles, no_progress_limit)` of the in-flight batch run —
    /// the settle phase replays de-opted lanes under the same limits.
    limits: Option<(u64, u64)>,
    last_ckpt: Option<BatchSnapshot>,
    /// The settled report of a finished run ([`BatchSoc::last_report`]).
    last_report: Option<BatchReport>,
}

impl BatchSoc {
    /// Builds the golden SoC and arms one shadow injector per
    /// `(lane, matched channel)` pair, seeded exactly as
    /// [`Soc::inject_fault`] would seed a real injector there. Lanes
    /// with stuck-wire configs are pre-diverged (no convergent
    /// prefix). Errors if any lane's pattern matches no channel.
    pub fn build(
        cfg: SocConfig,
        program: &[u32],
        staging_init: &[u32],
        gmem_init: &[(usize, Vec<u64>)],
        specs: Vec<LaneSpec>,
    ) -> Result<BatchSoc, FaultPatternError> {
        Self::build_with_telemetry(cfg, program, staging_init, gmem_init, specs, None)
    }

    /// Like [`BatchSoc::build`], but publishes batch observability
    /// into `tel`: the golden SoC's full probe set plus lane-indexed
    /// counter rows `batch.tokens.lane<i>` / `batch.injected.lane<i>`
    /// (with `.merged` sums) filled in at the end of the run.
    pub fn build_with_telemetry(
        cfg: SocConfig,
        program: &[u32],
        staging_init: &[u32],
        gmem_init: &[(usize, Vec<u64>)],
        specs: Vec<LaneSpec>,
        telemetry: Option<Telemetry>,
    ) -> Result<BatchSoc, FaultPatternError> {
        let tel_tokens = telemetry
            .as_ref()
            .map(|t| t.lane_counters("batch.tokens", specs.len()));
        let tel_injected = telemetry
            .as_ref()
            .map(|t| t.lane_counters("batch.injected", specs.len()));
        let golden = Soc::build_with_telemetry(cfg, program, staging_init, gmem_init, telemetry);
        let set = LaneSet::new(specs.len());
        let mut banks: BTreeMap<usize, FaultLaneBank> = BTreeMap::new();
        let mut matched = Vec::with_capacity(specs.len());
        for (lane, spec) in specs.iter().enumerate() {
            let mut m = 0;
            for (i, (name, _)) in golden.noc_registry().iter().enumerate() {
                if !name.contains(&spec.pattern) {
                    continue;
                }
                m += 1;
                // Mirror inject_fault's arming rule; a sequential
                // golden build is all-Local, so every matched channel
                // gets this lane's shadow.
                if FaultLaneBank::supports(&spec.cfg)
                    && matches!(golden.noc_role(i), ChannelRole::Local | ChannelRole::TxHalf)
                {
                    banks
                        .entry(i)
                        .or_insert_with(|| FaultLaneBank::new(Rc::clone(&set)))
                        .arm_lane(lane, spec.cfg, lane_fault_seed(spec.seed, i));
                }
            }
            if m == 0 {
                return Err(FaultPatternError::NoMatch {
                    pattern: spec.pattern.clone(),
                });
            }
            if !FaultLaneBank::supports(&spec.cfg) {
                set.borrow_mut().mark_diverged(lane, 0);
            }
            matched.push(m);
        }
        let banked: Vec<usize> = banks.keys().copied().collect();
        for (i, bank) in banks {
            golden.noc_registry()[i].1.attach_lane_bank(bank);
        }
        let solos = (0..specs.len()).map(|_| None).collect();
        Ok(BatchSoc {
            cfg,
            program: program.to_vec(),
            staging: staging_init.to_vec(),
            gmem_init: gmem_init.to_vec(),
            specs,
            matched,
            banked,
            set,
            golden,
            solos,
            tel_tokens,
            tel_injected,
            ran: false,
            limits: None,
            last_ckpt: None,
            last_report: None,
        })
    }

    /// Number of lanes in the batch.
    pub fn lanes(&self) -> usize {
        self.specs.len()
    }

    /// Lanes still in lockstep with the golden run.
    pub fn live_count(&self) -> usize {
        self.set.borrow().live_count()
    }

    /// This lane's current convergence status.
    pub fn lane_status(&self, lane: usize) -> LaneStatus {
        self.set.borrow().status(lane)
    }

    /// The shared golden simulation (fault-free reference).
    pub fn golden(&self) -> &Soc {
        &self.golden
    }

    /// Owned copies of the build inputs, for replaying de-opted lanes
    /// on worker threads (see [`replay_lane_solo`]).
    pub fn replay_inputs(&self) -> ReplayInputs {
        ReplayInputs {
            cfg: self.cfg,
            program: self.program.clone(),
            staging: self.staging.clone(),
            gmem_init: self.gmem_init.clone(),
        }
    }

    /// Shadow-exact fault counters for a converged lane, merged over
    /// every banked channel this lane is armed on.
    fn shadow_stats(&self, lane: usize) -> FaultStats {
        let mut total = FaultStats::default();
        let reg = self.golden.noc_registry();
        for &i in &self.banked {
            if let Some(s) = reg[i].1.lane_bank_stats(lane) {
                merge_fault_stats(&mut total, &s);
            }
        }
        total
    }

    /// Advances the golden run to completion under the watchdog, then
    /// settles every lane: converged lanes inherit the golden result
    /// with their shadow fault stats patched in; diverged lanes are
    /// replayed solo (interpreted, real injector, from t=0) under the
    /// same limits, with panics contained per lane.
    ///
    /// With [`SocConfig::checkpoint_every`] set, the golden run is
    /// segmented at that interval with a [`BatchSnapshot`] captured at
    /// each boundary (see [`BatchSoc::last_checkpoint`]) — the
    /// segmentation is observation-only, exactly as for
    /// [`Soc::run_checked`].
    ///
    /// # Panics
    /// Panics if called twice — the golden simulation is consumed by
    /// the first run.
    pub fn run(&mut self, max_cycles: u64, no_progress_limit: u64) -> BatchReport {
        self.begin(max_cycles, no_progress_limit);
        self.resume()
    }

    /// Opens the golden supervised session without driving it — the
    /// segmented entry point for schedulers that step the batch with
    /// [`BatchSoc::step_segment`] and preempt between segments.
    ///
    /// # Panics
    /// Panics if called twice — the golden simulation is consumed by
    /// the first run.
    pub fn begin(&mut self, max_cycles: u64, no_progress_limit: u64) {
        assert!(!self.ran, "BatchSoc::run may only be called once");
        self.ran = true;
        self.limits = Some((max_cycles, no_progress_limit));
        self.golden.begin_checked(max_cycles, no_progress_limit);
    }

    /// Drives the open golden session to completion (capturing
    /// automatic [`BatchSnapshot`]s between segments), then settles
    /// the lanes — the entry point for a batch restored mid-run by
    /// [`BatchSoc::restore`].
    ///
    /// # Panics
    /// Panics if no golden session is open.
    pub fn resume(&mut self) -> BatchReport {
        assert!(self.golden.session_open(), "no batch run to resume");
        let t0 = Instant::now();
        loop {
            match self.step_segment() {
                Ok(SegmentStatus::Boundary) => {}
                Ok(SegmentStatus::Done(_)) | Err(_) => {
                    let mut rep = self
                        .last_report
                        .clone()
                        .expect("final segment settles the batch");
                    if let Ok(r) = rep.golden.as_mut() {
                        r.wall = t0.elapsed();
                    }
                    return rep;
                }
            }
        }
    }

    /// Runs one segment of the open golden session — at most
    /// [`SocConfig::checkpoint_every`] cycles (the whole budget when
    /// unset). [`SegmentStatus::Boundary`] means budget remains and
    /// the automatic [`BatchSnapshot`] was captured: a scheduler may
    /// preempt here and revive the batch from the serialized
    /// snapshot. When the golden run ends — [`SegmentStatus::Done`]
    /// or a watchdog error — the lanes settle immediately and the
    /// full [`BatchReport`] is stored in [`BatchSoc::last_report`].
    ///
    /// # Panics
    /// Panics if no golden session is open.
    pub fn step_segment(&mut self) -> Result<SegmentStatus, SimError> {
        let (max_cycles, no_progress_limit) = self.limits.expect("no batch run to resume");
        assert!(self.golden.session_open(), "no batch run to resume");
        let t0 = Instant::now();
        let auto = self.cfg.checkpoint_every;
        match self.golden.advance_checked(auto.unwrap_or(u64::MAX)) {
            Err(e) => {
                let rep = self.settle(Err(e.clone()), max_cycles, no_progress_limit);
                self.last_report = Some(rep);
                Err(e)
            }
            Ok(Some(completed)) => {
                let consumed = self.golden.close_session().expect("session open").consumed;
                let res = RunResult {
                    cycles: consumed,
                    wall: t0.elapsed(),
                    ctrl: *self.golden.ctrl_handle().borrow(),
                    completed,
                };
                let rep = self.settle(Ok(res), max_cycles, no_progress_limit);
                self.last_report = Some(rep);
                Ok(SegmentStatus::Done(res))
            }
            Ok(None) => {
                if auto.is_some() {
                    self.last_ckpt = Some(self.checkpoint());
                }
                Ok(SegmentStatus::Boundary)
            }
        }
    }

    /// The settled [`BatchReport`] of a finished batch run, if the
    /// golden session has ended (also populated when the golden run
    /// erred — the lanes still settle).
    pub fn last_report(&self) -> Option<&BatchReport> {
        self.last_report.as_ref()
    }

    /// The configuration the golden SoC (and every lane replay) was
    /// built from.
    pub fn config(&self) -> &SocConfig {
        &self.cfg
    }

    /// Finishes every lane once the golden run has ended.
    fn settle(
        &mut self,
        golden_res: Result<RunResult, SimError>,
        max_cycles: u64,
        no_progress_limit: u64,
    ) -> BatchReport {
        let golden_report = self.golden.report();
        let inputs = self.replay_inputs();
        let mut lanes = Vec::with_capacity(self.specs.len());
        let mut deopt_lanes = 0;
        for lane in 0..self.specs.len() {
            let status = self.set.borrow().status(lane);
            match status {
                LaneStatus::Converged => {
                    let stats = self.shadow_stats(lane);
                    let mut report = golden_report.clone();
                    // A solo run of this lane arms a real injector on
                    // every matched channel and otherwise matches the
                    // golden trajectory bit for bit — only the fault
                    // section differs from the golden report.
                    report.faults = FaultReport {
                        armed_channels: self.matched[lane],
                        stats: stats.clone(),
                    };
                    lanes.push(LaneRun {
                        lane,
                        deopted: false,
                        diverged_at_token: None,
                        panicked: false,
                        result: Some(golden_res.clone()),
                        report: Some(report),
                        fault_stats: Some(stats),
                    });
                }
                LaneStatus::Diverged { token } => {
                    deopt_lanes += 1;
                    let spec = self.specs[lane].clone();
                    let out = catch_unwind(AssertUnwindSafe(|| {
                        replay_lane_solo(&inputs, &spec, max_cycles, no_progress_limit)
                    }));
                    match out {
                        Ok((res, report, stats, soc)) => {
                            self.solos[lane] = Some(soc);
                            lanes.push(LaneRun {
                                lane,
                                deopted: true,
                                diverged_at_token: Some(token),
                                panicked: false,
                                result: Some(res),
                                report: Some(report),
                                fault_stats: Some(stats),
                            });
                        }
                        Err(_) => lanes.push(LaneRun {
                            lane,
                            deopted: true,
                            diverged_at_token: Some(token),
                            panicked: true,
                            result: None,
                            report: None,
                            fault_stats: None,
                        }),
                    }
                }
            }
        }
        if let Some(tc) = &self.tel_tokens {
            for r in &lanes {
                tc.set(r.lane, r.fault_stats.as_ref().map_or(0, |s| s.tokens));
            }
        }
        if let Some(tc) = &self.tel_injected {
            for r in &lanes {
                tc.set(r.lane, r.fault_stats.as_ref().map_or(0, |s| s.injected()));
            }
        }
        BatchReport {
            golden: golden_res,
            lanes,
            deopt_lanes,
            converged_lanes: self.specs.len() - deopt_lanes,
        }
    }

    /// Reads `len` words of a lane's global memory after the run: the
    /// golden memory for converged lanes, the solo replay's for
    /// de-opted ones. `None` when the lane has no simulation to read
    /// (its replay panicked, or the batch has not run).
    pub fn gmem_read_lane(&self, lane: usize, base: usize, len: usize) -> Option<Vec<u64>> {
        if let Some(solo) = &self.solos[lane] {
            return Some(solo.gmem_read(base, len));
        }
        if self.ran && matches!(self.set.borrow().status(lane), LaneStatus::Converged) {
            return Some(self.golden.gmem_read(base, len));
        }
        None
    }

    /// Captures a [`BatchSnapshot`] at the current golden-run
    /// boundary: the golden [`crate::SimSnapshot`] (with its open
    /// session), every lane's spec, and each lane's divergence status
    /// and shadow fault counters. Meaningful before the lanes settle —
    /// a mid-golden-run capture restores to the exact same campaign
    /// state.
    pub fn checkpoint(&self) -> BatchSnapshot {
        let set = self.set.borrow();
        BatchSnapshot {
            golden: self.golden.checkpoint(),
            specs: self.specs.clone(),
            lane_status: (0..self.specs.len()).map(|l| set.status(l)).collect(),
            lane_stats: (0..self.specs.len())
                .map(|l| self.shadow_stats(l))
                .collect(),
        }
    }

    /// The most recent automatic checkpoint taken by a segmented
    /// golden run ([`SocConfig::checkpoint_every`]), if any.
    pub fn last_checkpoint(&self) -> Option<&BatchSnapshot> {
        self.last_ckpt.as_ref()
    }

    /// Rebuilds a batch from `snap`: re-arms every lane's shadow bank
    /// with the same derived seeds, replays the golden run to the
    /// capture boundary (the shadow decisions re-derive along the
    /// regenerated token stream), and verifies each lane's divergence
    /// status and shadow counters against the recorded ones — any
    /// mismatch is a typed [`CheckpointError::ReplayDivergence`]. A
    /// snapshot captured mid-golden-run reinstates the session, ready
    /// for [`BatchSoc::resume`].
    pub fn restore(snap: &BatchSnapshot) -> Result<BatchSoc, CheckpointError> {
        let mut batch = BatchSoc::build(
            snap.golden.cfg,
            &snap.golden.program,
            &snap.golden.staging,
            &snap.golden.gmem_init,
            snap.specs.clone(),
        )
        .map_err(|e| CheckpointError::Malformed(format!("lane spec failed to re-arm: {e}")))?;
        batch.golden.replay_to(&snap.golden)?;
        // The divergence token ordinal doubles as the status word:
        // `u64::MAX` is unreachable as a token count and encodes
        // `Converged`.
        let status_word = |s: &LaneStatus| match s {
            LaneStatus::Converged => u64::MAX,
            LaneStatus::Diverged { token } => *token,
        };
        for (lane, (want_status, want_stats)) in snap
            .lane_status
            .iter()
            .zip(snap.lane_stats.iter())
            .enumerate()
        {
            let got_status = batch.set.borrow().status(lane);
            if got_status != *want_status {
                return Err(CheckpointError::ReplayDivergence {
                    field: format!("lane{lane}.status"),
                    expected: status_word(want_status),
                    found: status_word(&got_status),
                });
            }
            let got_stats = batch.shadow_stats(lane);
            if got_stats != *want_stats {
                return Err(CheckpointError::ReplayDivergence {
                    field: format!("lane{lane}.stats"),
                    expected: fnv64(format!("{want_stats:?}").as_bytes()),
                    found: fnv64(format!("{got_stats:?}").as_bytes()),
                });
            }
        }
        if let Some(s) = &snap.golden.session {
            batch.ran = true;
            batch.limits = Some((s.remaining + s.consumed, s.no_progress_limit));
        }
        Ok(batch)
    }
}

impl std::fmt::Debug for BatchSoc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchSoc")
            .field("lanes", &self.specs.len())
            .field("live", &self.live_count())
            .field("banked_channels", &self.banked.len())
            .field("ran", &self.ran)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{orchestrator_program, table_words, vec_mul};

    const HOT_LINK: &str = "l11p3->15";
    const MAX_CYCLES: u64 = 4_000_000;
    const NO_PROGRESS: u64 = 100_000;

    fn solo_run(spec: &LaneSpec) -> (Result<RunResult, SimError>, SocReport, FaultStats) {
        let wl = vec_mul();
        let program = orchestrator_program();
        let table = table_words(&wl.entries);
        let mut soc = Soc::build(SocConfig::default(), &program, &table, &wl.gmem_init);
        soc.inject_fault(&spec.pattern, spec.cfg, spec.seed)
            .expect("pattern matches");
        let res = soc.run_checked(MAX_CYCLES, NO_PROGRESS);
        let report = soc.report();
        let stats = soc.fault_stats(&spec.pattern).expect("pattern matches");
        (res, report, stats)
    }

    fn build_batch(specs: Vec<LaneSpec>) -> BatchSoc {
        let wl = vec_mul();
        let program = orchestrator_program();
        let table = table_words(&wl.entries);
        BatchSoc::build(SocConfig::default(), &program, &table, &wl.gmem_init, specs)
            .expect("patterns match")
    }

    #[test]
    fn converged_lanes_match_solo_runs_bit_for_bit() {
        // Zero-rate faults never fire: every lane must ride the golden
        // run and still report exactly what a solo run would.
        let specs = vec![
            LaneSpec::new(HOT_LINK, FaultConfig::bit_flip(0.0), 11),
            LaneSpec::new(HOT_LINK, FaultConfig::drop(0.0), 22),
        ];
        let mut batch = build_batch(specs.clone());
        let rep = batch.run(MAX_CYCLES, NO_PROGRESS);
        assert_eq!((rep.converged_lanes, rep.deopt_lanes), (2, 0));
        for (spec, lane) in specs.iter().zip(&rep.lanes) {
            assert!(!lane.deopted);
            let (s_res, s_report, s_stats) = solo_run(spec);
            let b_res = lane.result.clone().unwrap();
            let (b, s) = (b_res.unwrap(), s_res.unwrap());
            assert_eq!((b.cycles, b.completed), (s.cycles, s.completed));
            assert_eq!(lane.report.as_ref().unwrap(), &s_report);
            assert_eq!(lane.fault_stats.clone().unwrap(), s_stats);
        }
    }

    #[test]
    fn firing_lane_deopts_and_matches_solo_run() {
        // A certain-drop lane diverges on its first token and must be
        // finished solo; a zero-rate sibling shares the golden run.
        let hot = LaneSpec::new(HOT_LINK, FaultConfig::drop(1.0), 5);
        let cold = LaneSpec::new(HOT_LINK, FaultConfig::bit_flip(0.0), 6);
        let mut batch = build_batch(vec![hot.clone(), cold]);
        let rep = batch.run(MAX_CYCLES, NO_PROGRESS);
        assert_eq!((rep.converged_lanes, rep.deopt_lanes), (1, 1));
        let lane = &rep.lanes[0];
        assert!(lane.deopted && !lane.panicked);
        assert!(lane.diverged_at_token.unwrap() >= 1);
        let (s_res, s_report, s_stats) = solo_run(&hot);
        match (lane.result.clone().unwrap(), s_res) {
            (Ok(b), Ok(s)) => assert_eq!((b.cycles, b.completed), (s.cycles, s.completed)),
            (Err(b), Err(s)) => assert_eq!(format!("{b:?}"), format!("{s:?}")),
            (b, s) => panic!("batch {b:?} vs solo {s:?}"),
        }
        assert_eq!(lane.report.as_ref().unwrap(), &s_report);
        assert_eq!(lane.fault_stats.clone().unwrap(), s_stats);
    }

    #[test]
    fn stuck_wire_lane_is_prediverged_at_build() {
        let spec = LaneSpec::new(HOT_LINK, FaultConfig::stuck_valid(100), 3);
        let batch = build_batch(vec![spec]);
        assert_eq!(batch.live_count(), 0);
        assert!(matches!(
            batch.lane_status(0),
            LaneStatus::Diverged { token: 0 }
        ));
    }

    #[test]
    fn bad_pattern_is_a_typed_error() {
        let wl = vec_mul();
        let program = orchestrator_program();
        let table = table_words(&wl.entries);
        let err = BatchSoc::build(
            SocConfig::default(),
            &program,
            &table,
            &wl.gmem_init,
            vec![LaneSpec::new("no-such-channel", FaultConfig::drop(0.5), 1)],
        )
        .unwrap_err();
        assert!(matches!(err, FaultPatternError::NoMatch { .. }));
    }

    #[test]
    fn segmented_batch_checkpoint_restore_matches_uninterrupted() {
        // One firing lane (de-opts), one cold lane (rides the golden
        // run): the uninterrupted batch and the checkpoint-restored
        // batch must settle every lane identically.
        let specs = vec![
            LaneSpec::new(HOT_LINK, FaultConfig::drop(1.0), 5),
            LaneSpec::new(HOT_LINK, FaultConfig::bit_flip(0.0), 6),
        ];
        let mut base = build_batch(specs.clone());
        let base_rep = base.run(MAX_CYCLES, NO_PROGRESS);

        let wl = vec_mul();
        let program = orchestrator_program();
        let table = table_words(&wl.entries);
        let cfg = SocConfig::builder()
            .checkpoint_every(Some(300))
            .build()
            .expect("valid config");
        let mut seg =
            BatchSoc::build(cfg, &program, &table, &wl.gmem_init, specs).expect("patterns match");
        let seg_rep = seg.run(MAX_CYCLES, NO_PROGRESS);
        let snap = seg
            .last_checkpoint()
            .expect("auto checkpoint taken")
            .clone();
        assert!(snap.golden.session.is_some(), "mid-run capture");

        // Bytes round-trip, then restore and resume to completion.
        let snap = BatchSnapshot::from_bytes(&snap.to_bytes()).expect("parses");
        let mut back = BatchSoc::restore(&snap).expect("restores");
        let back_rep = back.resume();

        for (a, b, tag) in [
            (&base_rep, &seg_rep, "segmented"),
            (&base_rep, &back_rep, "restored"),
        ] {
            let (ga, gb) = (a.golden.as_ref().unwrap(), b.golden.as_ref().unwrap());
            assert_eq!(
                (ga.cycles, ga.ctrl, ga.completed),
                (gb.cycles, gb.ctrl, gb.completed),
                "{tag} golden result diverged"
            );
            assert_eq!(a.deopt_lanes, b.deopt_lanes, "{tag} de-opt count");
            for (la, lb) in a.lanes.iter().zip(&b.lanes) {
                assert_eq!(la.deopted, lb.deopted, "{tag} lane {}", la.lane);
                assert_eq!(la.diverged_at_token, lb.diverged_at_token);
                assert_eq!(la.report, lb.report, "{tag} lane {} report", la.lane);
                assert_eq!(la.fault_stats, lb.fault_stats);
            }
        }
        for (base_addr, expect) in &wl.expected {
            assert_eq!(
                back.gmem_read_lane(1, *base_addr, expect.len()).as_ref(),
                Some(expect),
                "cold lane memory diverged after restore"
            );
        }
    }

    #[test]
    fn tampered_batch_lane_state_is_a_typed_divergence() {
        let wl = vec_mul();
        let program = orchestrator_program();
        let table = table_words(&wl.entries);
        let cfg = SocConfig::builder()
            .checkpoint_every(Some(300))
            .build()
            .expect("valid config");
        let specs = vec![LaneSpec::new(HOT_LINK, FaultConfig::bit_flip(0.0), 6)];
        let mut seg =
            BatchSoc::build(cfg, &program, &table, &wl.gmem_init, specs).expect("patterns match");
        let _ = seg.run(MAX_CYCLES, NO_PROGRESS);
        let mut snap = seg
            .last_checkpoint()
            .expect("auto checkpoint taken")
            .clone();
        snap.lane_stats[0].tokens += 1;
        match BatchSoc::restore(&snap) {
            Err(CheckpointError::ReplayDivergence { field, .. }) => {
                assert_eq!(field, "lane0.stats");
            }
            other => panic!("expected ReplayDivergence, got {other:?}"),
        }
    }

    #[test]
    fn gmem_reads_route_to_the_owning_simulation() {
        let wl = vec_mul();
        let program = orchestrator_program();
        let table = table_words(&wl.entries);
        let mut batch = BatchSoc::build(
            SocConfig::default(),
            &program,
            &table,
            &wl.gmem_init,
            vec![LaneSpec::new(HOT_LINK, FaultConfig::bit_flip(0.0), 9)],
        )
        .expect("pattern matches");
        assert!(batch.gmem_read_lane(0, 0, 1).is_none(), "not run yet");
        let rep = batch.run(MAX_CYCLES, NO_PROGRESS);
        assert!(rep.golden.as_ref().unwrap().completed);
        for (base, expect) in &wl.expected {
            assert_eq!(
                batch.gmem_read_lane(0, *base, expect.len()).as_ref(),
                Some(expect)
            );
        }
    }
}
