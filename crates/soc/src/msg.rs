//! NoC message formats for the prototype SoC: PE commands, global
//! memory reads/writes, data returns and completion notifications —
//! encoded into 64-bit flit payloads and carried as
//! [`craft_matchlib::router::NocFlit`] packets.

use craft_matchlib::router::{make_packet, NocFlit};

/// The hub (global memory + controller interface) lives at this node
/// of the 4x4 mesh; nodes 0..15 excluding it are PEs.
pub const HUB_NODE: u16 = 15;
/// Mesh width.
pub const MESH_WIDTH: u16 = 4;
/// Total mesh nodes.
pub const N_NODES: u16 = 16;
/// Number of processing elements (Fig. 5: 15 replicated PEs).
pub const N_PES: u16 = N_NODES - 1;

/// Compute operation a PE can execute (the paper's kernels: vector
/// multiply, dot-product, reduction, plus the workload kernels the
/// accelerator targets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeOp {
    /// `out[i] = a[i] + b[i]`.
    VecAdd = 0,
    /// `out[i] = a[i] * b[i]`.
    VecMul = 1,
    /// `out[0] = sum(a[i] * b[i])`.
    Dot = 2,
    /// `out[0] = sum(a[i])`.
    Reduce = 3,
    /// `out[i] = scalar * a[i]`.
    Scale = 4,
    /// `out[i] = sum_t a[i+t] * taps[t]`, taps at `b`, `scalar` taps.
    Conv1d = 5,
    /// `out[i] = argmin_c |a[i] - centroid[c]|`, centroids at `b`,
    /// `scalar` centroids (the K-means assignment step).
    ArgMinDist = 6,
}

impl PeOp {
    fn from_u8(v: u8) -> Option<PeOp> {
        Some(match v {
            0 => PeOp::VecAdd,
            1 => PeOp::VecMul,
            2 => PeOp::Dot,
            3 => PeOp::Reduce,
            4 => PeOp::Scale,
            5 => PeOp::Conv1d,
            6 => PeOp::ArgMinDist,
            _ => return None,
        })
    }

    /// True for ops that read a second operand region at `b`.
    pub fn uses_b(self) -> bool {
        matches!(
            self,
            PeOp::VecAdd | PeOp::VecMul | PeOp::Dot | PeOp::Conv1d | PeOp::ArgMinDist
        )
    }

    /// Output length in words for an input of `len`.
    pub fn out_len(self, len: u16) -> u16 {
        match self {
            PeOp::Dot | PeOp::Reduce => 1,
            _ => len,
        }
    }
}

/// One command for a PE: operands and results live in global memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeCommand {
    /// Operation.
    pub op: PeOp,
    /// First operand base (gmem word address).
    pub a: u16,
    /// Second operand base (gmem word address, ops with `uses_b`).
    pub b: u16,
    /// Result base (gmem word address).
    pub out: u16,
    /// Input length in words.
    pub len: u16,
    /// Scalar argument (Scale factor / tap count / centroid count).
    pub scalar: u16,
}

impl PeCommand {
    /// Packs into one 64-bit word: op(4) a(12) b(12) out(12) len(12)
    /// scalar(12).
    ///
    /// # Panics
    /// Panics if any field exceeds 12 bits.
    pub fn pack(&self) -> u64 {
        for (name, v) in [
            ("a", self.a),
            ("b", self.b),
            ("out", self.out),
            ("len", self.len),
            ("scalar", self.scalar),
        ] {
            assert!(v < (1 << 12), "PeCommand field {name}={v} exceeds 12 bits");
        }
        (self.op as u64)
            | (u64::from(self.a) << 4)
            | (u64::from(self.b) << 16)
            | (u64::from(self.out) << 28)
            | (u64::from(self.len) << 40)
            | (u64::from(self.scalar) << 52)
    }

    /// Unpacks a word produced by [`pack`](Self::pack).
    ///
    /// # Panics
    /// Panics on an unknown opcode.
    pub fn unpack(word: u64) -> PeCommand {
        PeCommand {
            op: PeOp::from_u8((word & 0xF) as u8).expect("unknown PE opcode"),
            a: ((word >> 4) & 0xFFF) as u16,
            b: ((word >> 16) & 0xFFF) as u16,
            out: ((word >> 28) & 0xFFF) as u16,
            len: ((word >> 40) & 0xFFF) as u16,
            scalar: ((word >> 52) & 0xFFF) as u16,
        }
    }
}

/// A decoded NoC message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NocMsg {
    /// Hub -> PE: execute a command.
    PeCmd(PeCommand),
    /// PE -> hub: read `len` gmem words at `base`, reply to `reply_to`.
    MemRead {
        /// First word address.
        base: u16,
        /// Word count.
        len: u16,
        /// Node to send the data to.
        reply_to: u16,
    },
    /// PE -> hub: write the payload at `base`.
    MemWrite {
        /// First word address.
        base: u16,
        /// Data words.
        data: Vec<u64>,
    },
    /// Hub -> PE: data returned for a MemRead.
    MemData {
        /// First word address.
        base: u16,
        /// Data words.
        data: Vec<u64>,
    },
    /// PE -> hub: command finished.
    Done {
        /// Reporting PE node.
        pe: u16,
    },
}

const TY_PECMD: u64 = 1;
const TY_MEMREAD: u64 = 2;
const TY_MEMWRITE: u64 = 3;
const TY_MEMDATA: u64 = 4;
const TY_DONE: u64 = 5;

fn header(ty: u64, base: u16, len: u16, aux: u16) -> u64 {
    ty | (u64::from(base) << 8) | (u64::from(len) << 24) | (u64::from(aux) << 40)
}

impl NocMsg {
    /// Serializes to 64-bit payload words (header first).
    pub fn to_words(&self) -> Vec<u64> {
        match self {
            NocMsg::PeCmd(cmd) => vec![header(TY_PECMD, 0, 0, 0), cmd.pack()],
            NocMsg::MemRead {
                base,
                len,
                reply_to,
            } => vec![header(TY_MEMREAD, *base, *len, *reply_to)],
            NocMsg::MemWrite { base, data } => {
                let mut w = vec![header(TY_MEMWRITE, *base, data.len() as u16, 0)];
                w.extend(data);
                w
            }
            NocMsg::MemData { base, data } => {
                let mut w = vec![header(TY_MEMDATA, *base, data.len() as u16, 0)];
                w.extend(data);
                w
            }
            NocMsg::Done { pe } => vec![header(TY_DONE, 0, 0, *pe)],
        }
    }

    /// Decodes from payload words.
    ///
    /// # Panics
    /// Panics on a malformed message (unknown type or truncated
    /// payload) — corrupted packets indicate a router bug.
    pub fn from_words(words: &[u64]) -> NocMsg {
        assert!(!words.is_empty(), "empty message");
        let h = words[0];
        let ty = h & 0xFF;
        let base = ((h >> 8) & 0xFFFF) as u16;
        let len = ((h >> 24) & 0xFFFF) as u16;
        let aux = ((h >> 40) & 0xFFFF) as u16;
        match ty {
            TY_PECMD => {
                assert_eq!(words.len(), 2, "PeCmd needs 2 words");
                NocMsg::PeCmd(PeCommand::unpack(words[1]))
            }
            TY_MEMREAD => NocMsg::MemRead {
                base,
                len,
                reply_to: aux,
            },
            TY_MEMWRITE => {
                assert_eq!(words.len(), 1 + len as usize, "MemWrite truncated");
                NocMsg::MemWrite {
                    base,
                    data: words[1..].to_vec(),
                }
            }
            TY_MEMDATA => {
                assert_eq!(words.len(), 1 + len as usize, "MemData truncated");
                NocMsg::MemData {
                    base,
                    data: words[1..].to_vec(),
                }
            }
            TY_DONE => NocMsg::Done { pe: aux },
            other => panic!("unknown NoC message type {other}"),
        }
    }

    /// Builds the flit packet carrying this message from `src` to
    /// `dst` on virtual channel `vc`.
    pub fn to_packet(&self, dst: u16, src: u16, vc: u8) -> Vec<NocFlit> {
        make_packet(dst, src, vc, &self.to_words())
    }
}

/// Incremental packet reassembler for one (node, vc) stream.
#[derive(Debug, Default)]
pub struct PacketAssembler {
    words: Vec<u64>,
    src: u16,
}

impl PacketAssembler {
    /// Empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one flit; returns the decoded message (and its source
    /// node) when the packet completes.
    pub fn push(&mut self, flit: NocFlit) -> Option<(NocMsg, u16)> {
        if flit.kind.is_head() {
            self.words.clear();
            self.src = flit.src;
        }
        self.words.push(flit.data);
        if flit.kind.is_tail() {
            let msg = NocMsg::from_words(&self.words);
            self.words.clear();
            return Some((msg, self.src));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_pack_round_trip() {
        let cmd = PeCommand {
            op: PeOp::Conv1d,
            a: 100,
            b: 2000,
            out: 300,
            len: 512,
            scalar: 5,
        };
        assert_eq!(PeCommand::unpack(cmd.pack()), cmd);
    }

    #[test]
    fn all_messages_round_trip() {
        let msgs = vec![
            NocMsg::PeCmd(PeCommand {
                op: PeOp::Dot,
                a: 1,
                b: 2,
                out: 3,
                len: 4,
                scalar: 0,
            }),
            NocMsg::MemRead {
                base: 77,
                len: 12,
                reply_to: 3,
            },
            NocMsg::MemWrite {
                base: 5,
                data: vec![10, 20, 30],
            },
            NocMsg::MemData {
                base: 5,
                data: vec![1],
            },
            NocMsg::Done { pe: 9 },
        ];
        for m in msgs {
            assert_eq!(NocMsg::from_words(&m.to_words()), m, "{m:?}");
        }
    }

    #[test]
    fn packet_assembly_from_flits() {
        let msg = NocMsg::MemWrite {
            base: 64,
            data: (0..10).collect(),
        };
        let pkt = msg.to_packet(HUB_NODE, 3, 0);
        assert_eq!(pkt.len(), 11);
        let mut asm = PacketAssembler::new();
        for (i, f) in pkt.iter().enumerate() {
            match asm.push(*f) {
                Some((decoded, src)) => {
                    assert_eq!(i, pkt.len() - 1, "completes on the tail flit");
                    assert_eq!(decoded, msg);
                    assert_eq!(src, 3);
                }
                None => assert!(i < pkt.len() - 1),
            }
        }
    }

    #[test]
    fn out_len_semantics() {
        assert_eq!(PeOp::Dot.out_len(100), 1);
        assert_eq!(PeOp::Reduce.out_len(100), 1);
        assert_eq!(PeOp::VecMul.out_len(100), 100);
        assert_eq!(PeOp::ArgMinDist.out_len(64), 64);
    }

    #[test]
    #[should_panic(expected = "exceeds 12 bits")]
    fn oversized_field_panics() {
        let _ = PeCommand {
            op: PeOp::VecAdd,
            a: 5000,
            b: 0,
            out: 0,
            len: 0,
            scalar: 0,
        }
        .pack();
    }

    #[test]
    #[should_panic(expected = "MemWrite truncated")]
    fn truncated_message_panics() {
        let mut words = NocMsg::MemWrite {
            base: 0,
            data: vec![1, 2, 3],
        }
        .to_words();
        words.pop();
        let _ = NocMsg::from_words(&words);
    }
}
