//! First-class mesh partitions for the sharded simulator.
//!
//! [`ParallelSoc`](crate::parallel::ParallelSoc) historically cut the
//! 4x4 mesh into fixed vertical strips. This module generalizes the
//! cut to **any** node→shard map at latency-insensitive channel
//! boundaries: a [`PartitionSpec`] names each node's owning shard, and
//! validation walks the same mesh-link topology `Soc::build_internal`
//! wires, confirming every cut edge crosses only LI (buffered,
//! capacity ≥ 1) channels — the property that makes one-instant epochs
//! conservative-safe. Because every worker always builds the full
//! clock table and channel registry in identical order, clock indices
//! and fault-injection seeds agree with the sequential build for *any*
//! valid map, so every valid cut is bit- and cycle-identical to the
//! sequential `Soc` (pinned by `tests/partition_proptest.rs`).
//!
//! The second half is the profile-guided partitioner: [`NodeCosts`]
//! turns a calibration run's [`SocReport`] (or per-component tick
//! profile) into a deterministic per-node cost vector, and
//! [`partition_search`] looks for a min-makespan cut — greedy LPT over
//! the cost vector with a cut-edge mailbox penalty, refined by
//! single-node moves and pairwise boundary swaps. The modeled makespan
//! ([`NodeCosts::makespan`]) is what the kernel-baseline bench reports
//! as predicted-vs-measured per cut.

use crate::msg::{HUB_NODE, MESH_WIDTH, N_NODES};
use crate::soc::{SocConfig, SocReport};
use craft_sim::TickProfile;
use std::fmt;

/// Mesh node count as a usize (the length of every owner map).
const NODES: usize = N_NODES as usize;

/// The largest shard count a partition may name: one shard per node.
pub const MAX_SHARDS: usize = NODES;

/// Typed rejection from [`PartitionSpec`] construction/validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// The owner map does not cover exactly [`N_NODES`] nodes.
    WrongLength {
        /// Entries supplied.
        got: usize,
    },
    /// A textual spec contained a non-hex-digit character.
    BadDigit {
        /// Zero-based position in the spec string.
        pos: usize,
        /// The offending character.
        ch: char,
    },
    /// A node names a shard outside `0..MAX_SHARDS`.
    ShardOutOfRange {
        /// The node.
        node: usize,
        /// The out-of-range shard index.
        shard: usize,
    },
    /// Shard numbering is not dense: `shard` is below the maximum
    /// named shard but owns no node, so the worker set would contain
    /// an idle worker with no kernel content.
    EmptyShard {
        /// The unowned shard index.
        shard: usize,
    },
    /// A cut edge crosses a channel that is not latency-insensitive
    /// (buffer capacity zero), so the one-instant epoch lookahead
    /// would be unsound across that boundary.
    NotLiBoundary {
        /// Producer-side node of the offending mesh edge.
        a: usize,
        /// Consumer-side node of the offending mesh edge.
        b: usize,
    },
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::WrongLength { got } => {
                write!(f, "partition must map {NODES} nodes, got {got}")
            }
            PartitionError::BadDigit { pos, ch } => {
                write!(f, "partition digit {pos} is {ch:?}, want a hex shard index")
            }
            PartitionError::ShardOutOfRange { node, shard } => {
                write!(
                    f,
                    "node {node} names shard {shard}, outside 0..{MAX_SHARDS}"
                )
            }
            PartitionError::EmptyShard { shard } => {
                write!(f, "shard {shard} owns no node (numbering must be dense)")
            }
            PartitionError::NotLiBoundary { a, b } => {
                write!(
                    f,
                    "cut edge {a}<->{b} crosses a non-latency-insensitive channel"
                )
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// A validated node→shard map over the 4x4 mesh: `owner[n]` is the
/// worker shard simulating node `n`'s components. Stored as one byte
/// per node so the spec stays `Copy` and can ride inside
/// [`EngineKind`](crate::engine::EngineKind) and wire names.
///
/// Construction (via [`from_owner`](Self::from_owner),
/// [`parse`](Self::parse) or [`vertical_strips`](Self::vertical_strips))
/// guarantees structural validity: full coverage, in-range shard
/// indices and dense shard numbering. The LI-boundary property of a
/// cut against a concrete config is checked by
/// [`validate_for`](Self::validate_for).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PartitionSpec {
    owner: [u8; NODES],
}

impl PartitionSpec {
    /// The historical fixed cut: vertical strips of the mesh (plus a
    /// row split at 8 shards), exactly the shapes the pre-partition
    /// `ParallelSoc` hardwired. The hub (node 15, column 3) lands on
    /// the last shard.
    ///
    /// # Panics
    /// Panics unless `threads` is 1, 2, 4 or 8 — the only strip
    /// shapes; arbitrary shard counts need an explicit owner map.
    pub fn vertical_strips(threads: usize) -> PartitionSpec {
        Self::vertical_strips_checked(threads)
            .unwrap_or_else(|| panic!("threads must be 1, 2, 4 or 8 (got {threads})"))
    }

    /// [`vertical_strips`](Self::vertical_strips) without the panic:
    /// `None` for shard counts with no strip shape.
    pub fn vertical_strips_checked(threads: usize) -> Option<PartitionSpec> {
        if !matches!(threads, 1 | 2 | 4 | 8) {
            return None;
        }
        let mut owner = [0u8; NODES];
        for (n, o) in owner.iter_mut().enumerate() {
            let (x, y) = (n % 4, n / 4);
            *o = match threads {
                1 => 0,
                2 => (x / 2) as u8,
                4 => x as u8,
                _ => (x * 2 + y / 2) as u8,
            };
        }
        Some(PartitionSpec { owner })
    }

    /// A load-agnostic seed cut for **any** shard count in
    /// `1..=MAX_SHARDS`: the historical vertical strips when the count
    /// has a strip shape, otherwise a uniform-cost
    /// [`partition_search`] (balanced node counts, minimal cut). This
    /// is what `parallel:N:auto` engines start on before their first
    /// profile-guided repartition.
    ///
    /// # Panics
    /// Panics when `shards` is outside `1..=MAX_SHARDS`.
    pub fn balanced(shards: usize) -> PartitionSpec {
        Self::vertical_strips_checked(shards)
            .unwrap_or_else(|| partition_search(&NodeCosts { cost: [1; NODES] }, shards, 0))
    }

    /// Builds a spec from an explicit owner map, checking coverage,
    /// range and dense shard numbering.
    pub fn from_owner(owner: &[usize]) -> Result<PartitionSpec, PartitionError> {
        if owner.len() != NODES {
            return Err(PartitionError::WrongLength { got: owner.len() });
        }
        let mut map = [0u8; NODES];
        for (node, &shard) in owner.iter().enumerate() {
            if shard >= MAX_SHARDS {
                return Err(PartitionError::ShardOutOfRange { node, shard });
            }
            map[node] = shard as u8;
        }
        let spec = PartitionSpec { owner: map };
        spec.check_dense()?;
        Ok(spec)
    }

    /// Parses the wire spelling: exactly 16 hex digits, one shard
    /// index per node in node order (`0000111122223333` is the
    /// 4-shard row partition).
    pub fn parse(s: &str) -> Result<PartitionSpec, PartitionError> {
        let chars: Vec<char> = s.chars().collect();
        if chars.len() != NODES {
            return Err(PartitionError::WrongLength { got: chars.len() });
        }
        let mut owner = [0u8; NODES];
        for (pos, &ch) in chars.iter().enumerate() {
            let digit = ch
                .to_digit(16)
                .ok_or(PartitionError::BadDigit { pos, ch })?;
            owner[pos] = digit as u8;
        }
        let spec = PartitionSpec { owner };
        spec.check_dense()?;
        Ok(spec)
    }

    /// Dense-numbering check backing every constructor.
    fn check_dense(&self) -> Result<(), PartitionError> {
        let shards = self.shards();
        for s in 0..shards {
            if !self.owner.iter().any(|&o| usize::from(o) == s) {
                return Err(PartitionError::EmptyShard { shard: s });
            }
        }
        Ok(())
    }

    /// The worker-shard count: one past the largest named shard.
    pub fn shards(&self) -> usize {
        usize::from(*self.owner.iter().max().expect("non-empty map")) + 1
    }

    /// The shard owning node `n`.
    pub fn owner_of(&self, n: usize) -> usize {
        usize::from(self.owner[n])
    }

    /// The owner map as the `Vec<usize>` shape the shard builder
    /// consumes.
    pub fn owner_vec(&self) -> Vec<usize> {
        self.owner.iter().map(|&o| usize::from(o)).collect()
    }

    /// The shard owning the hub node — the decider worker of the
    /// epoch protocol.
    pub fn hub_shard(&self) -> usize {
        self.owner_of(HUB_NODE as usize)
    }

    /// The undirected mesh edges this partition cuts (each listed once
    /// as `(low, high)` node pair, in scan order). Every cut edge is a
    /// pair of directed mailbox-split channels at run time.
    pub fn cut_edges(&self) -> Vec<(usize, usize)> {
        mesh_edges()
            .filter(|&(a, b)| self.owner[a] != self.owner[b])
            .collect()
    }

    /// Number of cut edges incident to `shard`.
    pub fn incident_cuts(&self, shard: usize) -> usize {
        mesh_edges()
            .filter(|&(a, b)| {
                self.owner[a] != self.owner[b]
                    && (usize::from(self.owner[a]) == shard || usize::from(self.owner[b]) == shard)
            })
            .count()
    }

    /// Validates the cut against a concrete config: every cut edge
    /// must cross only latency-insensitive channels. The build wires
    /// each mesh link (and each half of a GALS crossing) as
    /// `ChannelKind::Buffer(cfg.link_depth)`, so the LI property holds
    /// per edge exactly when the link buffer has capacity ≥ 1 — a
    /// zero-depth link would registerlessly expose same-instant writes
    /// across the epoch boundary.
    pub fn validate_for(&self, cfg: &SocConfig) -> Result<(), PartitionError> {
        for (a, b) in self.cut_edges() {
            if cfg.link_depth == 0 {
                return Err(PartitionError::NotLiBoundary { a, b });
            }
        }
        Ok(())
    }
}

impl fmt::Display for PartitionSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &o in &self.owner {
            write!(f, "{:x}", o)?;
        }
        Ok(())
    }
}

/// All undirected mesh edges of the 4x4 grid, each once as
/// `(low, high)`, in the same scan order `Soc::build_internal` wires
/// the directed link channels.
fn mesh_edges() -> impl Iterator<Item = (usize, usize)> {
    let w = MESH_WIDTH as usize;
    (0..NODES).flat_map(move |n| {
        let (x, y) = (n % w, n / w);
        let east = (x + 1 < w).then_some((n, n + 1));
        let south = (y + 1 < w).then_some((n, n + w));
        east.into_iter().chain(south)
    })
}

/// A deterministic per-node simulation-cost vector — the partitioner's
/// input. Costs are *model units*, not nanoseconds: what matters is
/// the relative load a node places on its worker's event wheel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeCosts {
    /// Modeled cost of simulating each node's components.
    pub cost: [u64; NODES],
}

impl NodeCosts {
    /// Derives costs from a calibration run's merged [`SocReport`]:
    /// each PE node weighs its busy cycles plus datapath work units;
    /// the hub node weighs its command flow, memory traffic and local
    /// NoC flits (the hub bundle also simulates the controller, bus
    /// and memories, which scale with the same counters). Every node
    /// gets a +1 floor so idle nodes still spread deterministically.
    pub fn from_report(report: &SocReport) -> NodeCosts {
        let mut cost = [1u64; NODES];
        for pe in &report.pes {
            let n = usize::from(pe.node);
            if n < NODES {
                cost[n] += pe.busy_cycles + pe.work_units;
            }
        }
        let h = &report.hub;
        cost[HUB_NODE as usize] += h.dispatched + h.retired + h.gmem_ops + h.noc_flits + h.jobs;
        NodeCosts { cost }
    }

    /// Derives costs from the kernel's per-component tick profile
    /// (wall nanoseconds per component): component names are mapped
    /// back to their mesh node — `pe<n>`, `r<n>`, `r<n>.rtl`,
    /// `clkgen<n>` to node `n`, `x<a>-><b>` crossings to their
    /// consumer `b`, and everything else (hub, controller, bus,
    /// memories) to the hub node.
    pub fn from_tick_profile(profile: &[TickProfile]) -> NodeCosts {
        let mut cost = [1u64; NODES];
        for p in profile {
            let n = node_of_component(&p.name).unwrap_or(HUB_NODE as usize);
            cost[n] += p.nanos;
        }
        NodeCosts { cost }
    }

    /// Total modeled cost over all nodes.
    pub fn total(&self) -> u64 {
        self.cost.iter().sum()
    }

    /// The default per-cut-edge mailbox penalty: a small fraction of
    /// the total cost, so the search prefers fewer cut edges among
    /// cuts of equal load balance without letting boundary traffic
    /// dominate placement.
    pub fn default_cut_penalty(&self) -> u64 {
        self.total() / 256
    }

    /// The cut's modeled makespan: the maximum over shards of (sum of
    /// owned node costs + `cut_penalty` per incident cut edge). This
    /// is the quantity [`partition_search`] minimizes and the bench
    /// compares against the measured critical path.
    pub fn makespan(&self, spec: &PartitionSpec, cut_penalty: u64) -> u64 {
        let shards = spec.shards();
        let mut load = vec![0u64; shards];
        for (n, &c) in self.cost.iter().enumerate() {
            load[spec.owner_of(n)] += c;
        }
        for (s, l) in load.iter_mut().enumerate() {
            *l += cut_penalty * spec.incident_cuts(s) as u64;
        }
        load.into_iter().max().unwrap_or(0)
    }
}

/// Maps a tick-profile component name back to its mesh node; `None`
/// for hub-bundle components (controller, bus, memories, hub itself).
fn node_of_component(name: &str) -> Option<usize> {
    let digits = |s: &str| -> Option<usize> {
        let end = s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len());
        (end > 0)
            .then(|| s[..end].parse().ok())?
            .filter(|&n| n < NODES)
    };
    if let Some(rest) = name.strip_prefix("pe") {
        return digits(rest);
    }
    if let Some(rest) = name.strip_prefix("clkgen") {
        return digits(rest);
    }
    if let Some(rest) = name.strip_prefix("x") {
        // Pausible crossing "x<a>-><b>" lives wholly in the consumer's
        // worker — charge node b.
        if let Some((_, b)) = rest.split_once("->") {
            return digits(b);
        }
    }
    if let Some(rest) = name.strip_prefix("r") {
        // "r<n>" router and "r<n>.rtl" activity — but not "riscv".
        if rest.starts_with(|c: char| c.is_ascii_digit()) {
            return digits(rest);
        }
    }
    None
}

/// Searches for a min-makespan cut over `shards` worker shards:
/// greedy LPT seeding (nodes in descending cost order onto the
/// least-loaded shard) refined by first-improvement single-node moves
/// and pairwise swaps under the full penalized makespan model. When a
/// vertical-strip shape exists for `shards` the strip is refined as a
/// second seed and the better of the two local optima wins — LPT is
/// topology-blind, so its optimum can pay more cut edges than the
/// contiguous strip; the second seed guarantees the searched cut
/// never models worse than the fixed strip. Fully deterministic —
/// ties break on node then shard index, and on an exact makespan tie
/// between seeds the strip-seeded cut wins — and bounded (each
/// refinement pass must strictly improve the makespan, which is a
/// non-negative integer).
///
/// # Panics
/// Panics unless `1 <= shards <= MAX_SHARDS`.
pub fn partition_search(costs: &NodeCosts, shards: usize, cut_penalty: u64) -> PartitionSpec {
    assert!(
        (1..=MAX_SHARDS).contains(&shards),
        "shards must be in 1..={MAX_SHARDS} (got {shards})"
    );
    // LPT seed: heaviest nodes first, each onto the least-loaded shard
    // (preferring emptier shards on load ties so every shard is
    // seeded even under all-equal costs).
    let mut order: Vec<usize> = (0..NODES).collect();
    order.sort_by_key(|&n| (std::cmp::Reverse(costs.cost[n]), n));
    let mut owner = [0usize; NODES];
    let mut load = vec![0u64; shards];
    let mut count = vec![0usize; shards];
    for &n in &order {
        let s = (0..shards)
            .min_by_key(|&s| (load[s], count[s], s))
            .expect("at least one shard");
        owner[n] = s;
        load[s] += costs.cost[n];
        count[s] += 1;
    }
    let lpt = refine_cut(costs, shards, cut_penalty, owner, count);

    if let Some(strip) = PartitionSpec::vertical_strips_checked(shards) {
        let mut owner = [0usize; NODES];
        let mut count = vec![0usize; shards];
        for (n, o) in strip.owner_vec().into_iter().enumerate() {
            owner[n] = o;
            count[o] += 1;
        }
        let refined_strip = refine_cut(costs, shards, cut_penalty, owner, count);
        if costs.makespan(&refined_strip, cut_penalty) <= costs.makespan(&lpt, cut_penalty) {
            return refined_strip;
        }
    }
    lpt
}

/// Refines one seeded owner map to a local optimum of the penalized
/// makespan model via first-improvement single-node moves and
/// pairwise swaps.
fn refine_cut(
    costs: &NodeCosts,
    shards: usize,
    cut_penalty: u64,
    mut owner: [usize; NODES],
    mut count: Vec<usize>,
) -> PartitionSpec {
    let spec_of = |owner: &[usize; NODES]| {
        PartitionSpec::from_owner(owner).expect("search keeps owner maps structurally valid")
    };
    // Renumbering note: moves keep every shard non-empty, so density
    // is preserved and from_owner never rejects.
    let mut best = spec_of(&owner);
    let mut best_span = costs.makespan(&best, cut_penalty);
    loop {
        let mut improved = false;
        // Single-node moves.
        'moves: for n in 0..NODES {
            let from = owner[n];
            if count[from] == 1 {
                continue; // would empty the shard
            }
            for to in 0..shards {
                if to == from {
                    continue;
                }
                owner[n] = to;
                let cand = spec_of(&owner);
                let span = costs.makespan(&cand, cut_penalty);
                if span < best_span {
                    count[from] -= 1;
                    count[to] += 1;
                    best = cand;
                    best_span = span;
                    improved = true;
                    break 'moves;
                }
                owner[n] = from;
            }
        }
        if improved {
            continue;
        }
        // Pairwise boundary swaps (counts unchanged).
        'swaps: for a in 0..NODES {
            for b in (a + 1)..NODES {
                if owner[a] == owner[b] {
                    continue;
                }
                (owner[a], owner[b]) = (owner[b], owner[a]);
                let cand = spec_of(&owner);
                let span = costs.makespan(&cand, cut_penalty);
                if span < best_span {
                    best = cand;
                    best_span = span;
                    improved = true;
                    break 'swaps;
                }
                (owner[a], owner[b]) = (owner[b], owner[a]);
            }
        }
        if !improved {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertical_strips_match_the_historical_shapes() {
        assert_eq!(
            PartitionSpec::vertical_strips(1).owner_vec(),
            vec![0usize; 16]
        );
        let two = PartitionSpec::vertical_strips(2);
        assert_eq!(two.owner_of(0), 0);
        assert_eq!(two.owner_of(3), 1);
        assert_eq!(two.shards(), 2);
        let four = PartitionSpec::vertical_strips(4);
        assert_eq!(four.hub_shard(), 3);
        let eight = PartitionSpec::vertical_strips(8);
        assert_eq!(eight.hub_shard(), 7);
        assert!(PartitionSpec::vertical_strips_checked(3).is_none());
        assert!(PartitionSpec::vertical_strips_checked(16).is_none());
    }

    #[test]
    fn parse_and_display_round_trip() {
        for spec in [
            PartitionSpec::vertical_strips(1),
            PartitionSpec::vertical_strips(2),
            PartitionSpec::vertical_strips(4),
            PartitionSpec::vertical_strips(8),
            PartitionSpec::parse("0000111122223333").unwrap(),
        ] {
            assert_eq!(PartitionSpec::parse(&spec.to_string()).unwrap(), spec);
        }
    }

    #[test]
    fn malformed_specs_are_typed_rejections() {
        assert_eq!(
            PartitionSpec::parse("0000"),
            Err(PartitionError::WrongLength { got: 4 })
        );
        assert_eq!(
            PartitionSpec::parse("000011112222333z"),
            Err(PartitionError::BadDigit { pos: 15, ch: 'z' })
        );
        // Shard 2 named while shard 1 owns nothing: not dense.
        assert_eq!(
            PartitionSpec::parse("0000000000000002"),
            Err(PartitionError::EmptyShard { shard: 1 })
        );
        assert_eq!(
            PartitionSpec::from_owner(&[0; 15]),
            Err(PartitionError::WrongLength { got: 15 })
        );
        let mut o = vec![0usize; 16];
        o[3] = 16;
        assert_eq!(
            PartitionSpec::from_owner(&o),
            Err(PartitionError::ShardOutOfRange { node: 3, shard: 16 })
        );
    }

    #[test]
    fn cut_edges_and_li_validation() {
        let one = PartitionSpec::vertical_strips(1);
        assert!(one.cut_edges().is_empty());
        let two = PartitionSpec::vertical_strips(2);
        // Columns 1|2 boundary: 4 horizontal edges cut.
        assert_eq!(two.cut_edges().len(), 4);
        assert_eq!(two.incident_cuts(0), 4);
        assert_eq!(two.incident_cuts(1), 4);
        let cfg = SocConfig::default();
        two.validate_for(&cfg).expect("default links are LI");
        let mut zero_depth = cfg;
        zero_depth.link_depth = 0;
        assert_eq!(
            two.validate_for(&zero_depth),
            Err(PartitionError::NotLiBoundary { a: 1, b: 2 })
        );
        // The degenerate single-shard spec has no cut to validate.
        one.validate_for(&zero_depth).expect("no cut edges");
    }

    #[test]
    fn search_balances_a_skewed_cost_vector() {
        // One hot node per column pair; strips would stack both hot
        // nodes of a column pair onto one shard.
        let mut costs = NodeCosts { cost: [1; 16] };
        costs.cost[0] = 1000;
        costs.cost[1] = 1000;
        costs.cost[15] = 500;
        let spec = partition_search(&costs, 2, costs.default_cut_penalty());
        assert_eq!(spec.shards(), 2);
        assert_ne!(
            spec.owner_of(0),
            spec.owner_of(1),
            "the two hot nodes must split"
        );
        let strips = PartitionSpec::vertical_strips(2);
        let pen = costs.default_cut_penalty();
        assert!(
            costs.makespan(&spec, pen) <= costs.makespan(&strips, pen),
            "search must not be worse than the fixed strip"
        );
        // Every shard non-empty for every requested count.
        for shards in 1..=MAX_SHARDS {
            let s = partition_search(&costs, shards, 0);
            assert_eq!(s.shards(), shards, "{shards}-shard search");
        }
    }

    #[test]
    fn search_is_deterministic() {
        let mut costs = NodeCosts::default();
        for (i, c) in costs.cost.iter_mut().enumerate() {
            *c = (i as u64 * 37) % 11 + 1;
        }
        let a = partition_search(&costs, 4, costs.default_cut_penalty());
        let b = partition_search(&costs, 4, costs.default_cut_penalty());
        assert_eq!(a, b);
    }

    #[test]
    fn tick_profile_names_map_to_nodes() {
        assert_eq!(node_of_component("pe7"), Some(7));
        assert_eq!(node_of_component("r12.rtl"), Some(12));
        assert_eq!(node_of_component("r3"), Some(3));
        assert_eq!(node_of_component("clkgen9"), Some(9));
        assert_eq!(node_of_component("x2->6"), Some(6));
        assert_eq!(node_of_component("riscv"), None);
        assert_eq!(node_of_component("hub15"), None);
        assert_eq!(node_of_component("ctl.axim"), None);
        assert_eq!(node_of_component("staging"), None);
    }

    #[test]
    fn report_costs_weigh_pes_and_hub() {
        let mut report = SocReport::default();
        report.pes.push(crate::soc::PeReport {
            node: 5,
            commands: 2,
            busy_cycles: 100,
            work_units: 50,
            gates_charged: 0,
        });
        report.hub.dispatched = 10;
        report.hub.gmem_ops = 30;
        let costs = NodeCosts::from_report(&report);
        assert_eq!(costs.cost[5], 151);
        assert_eq!(costs.cost[HUB_NODE as usize], 41);
        assert_eq!(costs.cost[0], 1, "idle nodes keep the floor");
    }
}
